"""Radio link models for the discrete-event simulator.

Sensor radios are slow (the paper cites 19.2 kbps Mica2 motes, roughly 50
packets per second), so per-hop delay is dominated by serialization.  The
model here is intentionally simple: a fixed per-hop latency plus a
size-proportional serialization term, and an independent per-hop loss
probability.  This is enough to exercise timing- and loss-sensitive code
paths (probabilistic mark collection, duplicate suppression) without
modelling MAC-layer contention.

Uniform links are the common case, but fault injection
(:mod:`repro.faults`) needs to degrade *one* link -- ramp its delay or
loss -- without touching the rest of the deployment.  :class:`LinkTable`
layers per-directed-edge overrides over a single default model; the
single-model constructor path everywhere stays backward compatible.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

__all__ = ["LinkModel", "LinkTable"]

#: Paper-cited Mica2 radio rate in bits per second (Section 4.2).
MICA2_BITRATE_BPS = 19_200


@dataclass(frozen=True)
class LinkModel:
    """Per-hop transmission behavior.

    Attributes:
        base_delay: fixed per-hop latency in seconds (processing + MAC
            access), independent of packet size.
        bitrate_bps: radio serialization rate; ``0`` disables the
            size-proportional term.
        loss_prob: independent probability that a transmission is lost.
    """

    base_delay: float = 0.005
    bitrate_bps: float = MICA2_BITRATE_BPS
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.bitrate_bps < 0:
            raise ValueError(f"bitrate_bps must be >= 0, got {self.bitrate_bps}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0, 1), got {self.loss_prob}")

    def transmission_delay(self, packet_len: int) -> float:
        """Time in seconds to push ``packet_len`` bytes over one hop."""
        if packet_len < 0:
            raise ValueError(f"packet_len must be >= 0, got {packet_len}")
        serialization = (
            (8 * packet_len) / self.bitrate_bps if self.bitrate_bps else 0.0
        )
        return self.base_delay + serialization

    def is_delivered(self, rng: random.Random) -> bool:
        """Draw whether a single transmission survives the link."""
        if self.loss_prob == 0.0:
            return True
        return rng.random() >= self.loss_prob


class LinkTable:
    """Per-hop link models: one default plus per-directed-edge overrides.

    A transmission from ``u`` to ``v`` uses the override registered for
    the directed edge ``(u, v)`` when one exists, the default model
    otherwise.  Overrides are directed on purpose: a degraded radio often
    fails asymmetrically, and the fault injector reverts exactly the
    edges it degraded.

    Args:
        default: model used by every edge without an override; a fresh
            :class:`LinkModel` when omitted.
        overrides: initial ``(from_node, to_node) -> LinkModel`` mapping.
    """

    def __init__(
        self,
        default: LinkModel | None = None,
        overrides: Mapping[tuple[int, int], LinkModel] | None = None,
    ):
        self.default = default if default is not None else LinkModel()
        self._overrides: dict[tuple[int, int], LinkModel] = (
            dict(overrides) if overrides else {}
        )
        #: Monotone edit counter.  Consumers that cache anything derived
        #: from this table (e.g. :class:`repro.net.overhear.OverhearModel`)
        #: compare it to detect override churn instead of subscribing.
        self.version = 0

    def model_for(self, from_node: int, to_node: int) -> LinkModel:
        """The model governing a transmission from ``from_node`` to ``to_node``."""
        return self._overrides.get((from_node, to_node), self.default)

    def set_override(
        self, from_node: int, to_node: int, model: LinkModel
    ) -> None:
        """Install (or replace) the model for one directed edge."""
        if from_node == to_node:
            raise ValueError(f"self-loop override on node {from_node}")
        self._overrides[(from_node, to_node)] = model
        self.version += 1

    def clear_override(self, from_node: int, to_node: int) -> bool:
        """Remove one directed edge's override; returns whether it existed."""
        existed = self._overrides.pop((from_node, to_node), None) is not None
        if existed:
            self.version += 1
        return existed

    def overridden_edges(self) -> list[tuple[int, int]]:
        """Directed edges carrying an override, in sorted order."""
        return sorted(self._overrides)

    def __len__(self) -> int:
        return len(self._overrides)

    def __repr__(self) -> str:
        return (
            f"LinkTable(default={self.default!r}, "
            f"overrides={len(self._overrides)})"
        )
