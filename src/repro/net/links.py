"""Radio link model for the discrete-event simulator.

Sensor radios are slow (the paper cites 19.2 kbps Mica2 motes, roughly 50
packets per second), so per-hop delay is dominated by serialization.  The
model here is intentionally simple: a fixed per-hop latency plus a
size-proportional serialization term, and an independent per-hop loss
probability.  This is enough to exercise timing- and loss-sensitive code
paths (probabilistic mark collection, duplicate suppression) without
modelling MAC-layer contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["LinkModel"]

#: Paper-cited Mica2 radio rate in bits per second (Section 4.2).
MICA2_BITRATE_BPS = 19_200


@dataclass(frozen=True)
class LinkModel:
    """Per-hop transmission behavior.

    Attributes:
        base_delay: fixed per-hop latency in seconds (processing + MAC
            access), independent of packet size.
        bitrate_bps: radio serialization rate; ``0`` disables the
            size-proportional term.
        loss_prob: independent probability that a transmission is lost.
    """

    base_delay: float = 0.005
    bitrate_bps: float = MICA2_BITRATE_BPS
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.bitrate_bps < 0:
            raise ValueError(f"bitrate_bps must be >= 0, got {self.bitrate_bps}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0, 1), got {self.loss_prob}")

    def transmission_delay(self, packet_len: int) -> float:
        """Time in seconds to push ``packet_len`` bytes over one hop."""
        if packet_len < 0:
            raise ValueError(f"packet_len must be >= 0, got {packet_len}")
        serialization = (
            (8 * packet_len) / self.bitrate_bps if self.bitrate_bps else 0.0
        )
        return self.base_delay + serialization

    def is_delivered(self, rng: random.Random) -> bool:
        """Draw whether a single transmission survives the link."""
        if self.loss_prob == 0.0:
            return True
        return rng.random() >= self.loss_prob
