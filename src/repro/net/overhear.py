"""Radio overhearing: what a watcher hears of its neighbors' traffic.

Sensor radios are broadcast media: when ``u`` transmits to its next hop
``v``, every other radio neighbor ``w`` of ``u`` receives the same frame
with some probability.  The Algebraic Watchdog line of work
(arXiv:1011.3879, arXiv:1007.2088) builds in-network misbehavior
detection on exactly this promiscuous channel; :mod:`repro.watchdog`
consumes this model.

The overhear probability is *derived* from the deployment's
:class:`~repro.net.links.LinkTable` rather than being a free parameter:
a watcher hears a neighbor's transmission through the same radio channel
packets travel on, attenuated by a fixed promiscuous-mode ``gain``
(overhearing lacks retransmissions and link-layer acks, so it is never
better than the directed link).  Degrading the ``(sender, watcher)``
edge -- as the fault injector does -- therefore attenuates what the
watcher sees, with no extra bookkeeping.
"""

from __future__ import annotations

import random

from repro.net.links import LinkTable
from repro.net.topology import Topology

__all__ = ["OverhearModel"]


class OverhearModel:
    """Per-(sender, watcher) overhear probabilities from topology + links.

    Args:
        topology: the deployment graph; only radio neighbors of a sender
            can overhear it.
        links: the deployment's link table.  The overhear probability for
            watcher ``w`` of sender ``u`` is ``gain * (1 - loss_prob)``
            of the directed edge ``(u, w)``, so per-edge degradations
            (:mod:`repro.faults`) attenuate overhearing too.
        gain: promiscuous-mode attenuation factor in ``[0, 1]``; a frame
            overheard without acks or retries is at best as reliable as
            the directed link carrying it.
    """

    def __init__(
        self,
        topology: Topology,
        links: LinkTable | None = None,
        gain: float = 0.9,
    ):
        if not 0.0 <= gain <= 1.0:
            raise ValueError(f"gain must be in [0, 1], got {gain}")
        self.topology = topology
        self.links = links if links is not None else LinkTable()
        self.gain = gain
        # Topology is static for a deployment's lifetime, and this is on
        # the per-transmission hot path -- cache the sorted watcher lists
        # and the per-edge probabilities.  The probability cache is keyed
        # to the link table's edit counter so fault-injected overrides
        # (set_override / clear_override) invalidate it immediately.
        self._watchers: dict[int, list[int]] = {}
        self._neighbor_sets: dict[int, frozenset[int]] = {}
        self._probs: dict[tuple[int, int], float] = {}
        self._probs_version = self.links.version

    def neighbor_set(self, node: int) -> frozenset[int]:
        """Cached radio neighborhood of ``node`` for membership tests.

        :meth:`Topology.neighbors` copies its adjacency set on every
        call; watchers test membership once per transmission, so the
        layer wants a stable frozen view instead.
        """
        cached = self._neighbor_sets.get(node)
        if cached is None:
            cached = frozenset(self.topology.neighbors(node))
            self._neighbor_sets[node] = cached
        return cached

    def watchers_of(self, sender: int) -> list[int]:
        """Radio neighbors that can overhear ``sender``, sorted ascending.

        The sink never participates as a watcher: it already sees every
        delivered packet first-hand and fuses accusations instead
        (:mod:`repro.faults.attribution`).
        """
        watchers = self._watchers.get(sender)
        if watchers is None:
            watchers = sorted(
                node
                for node in self.topology.neighbors(sender)
                if node != self.topology.sink
            )
            self._watchers[sender] = watchers
        return watchers

    def overhear_prob(self, sender: int, watcher: int) -> float:
        """Probability that ``watcher`` hears one transmission by ``sender``."""
        if self.links.version != self._probs_version:
            self._probs.clear()
            self._probs_version = self.links.version
        edge = (sender, watcher)
        prob = self._probs.get(edge)
        if prob is None:
            if watcher == sender or watcher not in self.topology.neighbors(sender):
                prob = 0.0
            else:
                model = self.links.model_for(sender, watcher)
                prob = self.gain * (1.0 - model.loss_prob)
            self._probs[edge] = prob
        return prob

    def overhears(self, sender: int, watcher: int, rng: random.Random) -> bool:
        """Draw whether one transmission by ``sender`` reaches ``watcher``."""
        prob = self.overhear_prob(sender, watcher)
        if prob >= 1.0:
            return True
        if prob <= 0.0:
            return False
        return rng.random() < prob

    def __repr__(self) -> str:
        return f"OverhearModel(gain={self.gain}, links={self.links!r})"
