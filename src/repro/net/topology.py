"""Static sensor-network topologies.

A :class:`Topology` is an undirected connectivity graph over positioned
nodes, with one distinguished sink.  Connectivity follows the unit-disk
model: two nodes are neighbors iff their distance is at most the radio
range.  Deployments are static (Section 2.1), so the topology is immutable
after construction; routing layers build forwarding state on top of it.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Mapping

__all__ = [
    "Topology",
    "linear_path_topology",
    "grid_topology",
    "random_topology",
    "poisson_disk_topology",
    "DisconnectedTopologyError",
]

#: Conventional node ID of the sink in generated topologies.
SINK_ID = 0


class DisconnectedTopologyError(ValueError):
    """Raised when a generated deployment cannot reach the sink."""


class Topology:
    """An immutable positioned connectivity graph with a sink.

    Args:
        positions: mapping of node ID to ``(x, y)`` position.  Must include
            the sink.
        edges: undirected neighbor pairs.  Self-loops are rejected.
        sink: the sink's node ID.
    """

    def __init__(
        self,
        positions: Mapping[int, tuple[float, float]],
        edges: Iterable[tuple[int, int]],
        sink: int = SINK_ID,
    ):
        if sink not in positions:
            raise ValueError(f"sink {sink} has no position")
        self._positions: dict[int, tuple[float, float]] = {
            nid: (float(x), float(y)) for nid, (x, y) in positions.items()
        }
        self._adj: dict[int, set[int]] = {nid: set() for nid in self._positions}
        self.sink = sink
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on node {u}")
            if u not in self._positions or v not in self._positions:
                raise ValueError(f"edge ({u}, {v}) references unknown node")
            self._adj[u].add(v)
            self._adj[v].add(u)

    # Introspection ---------------------------------------------------------

    def nodes(self) -> list[int]:
        """All node IDs (including the sink), sorted ascending."""
        return sorted(self._positions)

    def sensor_nodes(self) -> list[int]:
        """All node IDs except the sink, sorted ascending."""
        return [nid for nid in self.nodes() if nid != self.sink]

    def position(self, node_id: int) -> tuple[float, float]:
        """The node's deployed ``(x, y)`` position."""
        return self._positions[node_id]

    def neighbors(self, node_id: int) -> set[int]:
        """One-hop radio neighbors of ``node_id``."""
        return set(self._adj[node_id])

    def closed_neighborhood(self, node_id: int) -> set[int]:
        """The node itself plus its one-hop neighbors.

        This is the paper's traceback precision unit: PNM localizes a mole
        to "one node and its one-hop neighbors" (Section 4).
        """
        return self._adj[node_id] | {node_id}

    def degree(self, node_id: int) -> int:
        """Number of one-hop radio neighbors."""
        return len(self._adj[node_id])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are radio neighbors."""
        return v in self._adj.get(u, ())

    def edges(self) -> list[tuple[int, int]]:
        """All undirected edges, each reported once as ``(min, max)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                seen.add((min(u, v), max(u, v)))
        return sorted(seen)

    def num_nodes(self) -> int:
        """Total node count, sink included."""
        return len(self._positions)

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between two nodes."""
        (x1, y1), (x2, y2) = self._positions[u], self._positions[v]
        return math.hypot(x1 - x2, y1 - y2)

    def is_connected(self) -> bool:
        """Whether every node can reach the sink."""
        return len(self._reachable_from_sink()) == len(self._positions)

    def _reachable_from_sink(self) -> set[int]:
        seen = {self.sink}
        frontier = [self.sink]
        while frontier:
            node = frontier.pop()
            for nbr in self._adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen

    def hop_distances(self) -> dict[int, int]:
        """BFS hop count from every reachable node to the sink."""
        dist = {self.sink: 0}
        frontier = [self.sink]
        while frontier:
            next_frontier = []
            for node in frontier:
                for nbr in self._adj[node]:
                    if nbr not in dist:
                        dist[nbr] = dist[node] + 1
                        next_frontier.append(nbr)
            frontier = next_frontier
        return dist

    def __repr__(self) -> str:
        return (
            f"Topology({self.num_nodes()} nodes, {len(self.edges())} edges, "
            f"sink={self.sink})"
        )


def linear_path_topology(n_forwarders: int) -> tuple[Topology, int]:
    """The paper's evaluation deployment: a chain ``S - V1 - ... - Vn - sink``.

    Node IDs: sink is 0 at ``x = 0``; forwarder ``V_i`` (i-th hop after the
    source) has ID ``i`` at ``x = n_forwarders + 1 - i``; the source sits at
    the far end with ID ``n_forwarders + 1``.

    Args:
        n_forwarders: number of intermediate forwarding nodes ``n``.

    Returns:
        ``(topology, source_id)``.
    """
    if n_forwarders < 1:
        raise ValueError(f"need at least one forwarder, got {n_forwarders}")
    source_id = n_forwarders + 1
    total_span = n_forwarders + 1
    positions: dict[int, tuple[float, float]] = {SINK_ID: (0.0, 0.0)}
    for i in range(1, n_forwarders + 1):
        positions[i] = (float(total_span - i), 0.0)
    positions[source_id] = (float(total_span), 0.0)
    # Chain order by x-coordinate: sink(0) - Vn(n) - ... - V1(1) - S.
    chain = [SINK_ID] + list(range(n_forwarders, 0, -1)) + [source_id]
    edges = list(zip(chain, chain[1:], strict=False))
    return Topology(positions, edges, sink=SINK_ID), source_id


def grid_topology(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    radio_range: float | None = None,
    sink_at: str = "corner",
) -> Topology:
    """A regular grid deployment.

    Args:
        rows: grid rows.
        cols: grid columns.
        spacing: distance between adjacent grid points.
        radio_range: unit-disk radius; defaults to ``1.5 * spacing`` which
            connects the 8-neighborhood.
        sink_at: ``"corner"`` (node at (0, 0)) or ``"center"``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    if radio_range is None:
        radio_range = 1.5 * spacing
    positions = {
        r * cols + c: (c * spacing, r * spacing)
        for r in range(rows)
        for c in range(cols)
    }
    if sink_at == "corner":
        sink = 0
    elif sink_at == "center":
        sink = (rows // 2) * cols + (cols // 2)
    else:
        raise ValueError(f"sink_at must be 'corner' or 'center', got {sink_at!r}")
    edges = _unit_disk_edges(positions, radio_range)
    return Topology(positions, edges, sink=sink)


def random_topology(
    num_nodes: int,
    width: float,
    height: float,
    radio_range: float,
    seed: int = 0,
    sink_at: str = "corner",
    max_attempts: int = 50,
) -> Topology:
    """A uniform-random deployment, retried until connected.

    Args:
        num_nodes: number of sensor nodes (the sink is placed additionally).
        width: field width.
        height: field height.
        radio_range: unit-disk radius.
        seed: base RNG seed; each retry perturbs it deterministically.
        sink_at: ``"corner"`` or ``"center"`` placement of the sink.
        max_attempts: how many deployments to try before giving up.

    Raises:
        DisconnectedTopologyError: if no connected deployment is found.
    """
    if num_nodes < 1:
        raise ValueError(f"need at least one sensor node, got {num_nodes}")
    if sink_at == "corner":
        sink_pos = (0.0, 0.0)
    elif sink_at == "center":
        sink_pos = (width / 2, height / 2)
    else:
        raise ValueError(f"sink_at must be 'corner' or 'center', got {sink_at!r}")

    for attempt in range(max_attempts):
        rng = random.Random(f"{seed}:attempt:{attempt}")
        positions = {SINK_ID: sink_pos}
        for nid in range(1, num_nodes + 1):
            positions[nid] = (rng.uniform(0, width), rng.uniform(0, height))
        topo = Topology(positions, _unit_disk_edges(positions, radio_range))
        if topo.is_connected():
            return topo
    raise DisconnectedTopologyError(
        f"no connected deployment of {num_nodes} nodes in {width}x{height} "
        f"with range {radio_range} after {max_attempts} attempts; "
        f"increase density or radio range"
    )


def poisson_disk_topology(
    width: float,
    height: float,
    min_spacing: float,
    radio_range: float,
    seed: int = 0,
    sink_at: str = "corner",
    max_attempts: int = 50,
) -> Topology:
    """A blue-noise deployment via Bridson's Poisson-disk sampling.

    Real deployments avoid piling sensors on top of each other; Poisson
    disk sampling gives uniform coverage with a guaranteed minimum
    pairwise spacing -- denser-looking and better connected than uniform
    random at the same node count.

    Args:
        width: field width.
        height: field height.
        min_spacing: minimum distance between any two sensors.
        radio_range: unit-disk radius; must exceed ``min_spacing`` or the
            deployment cannot be connected.
        seed: base RNG seed; retries perturb it deterministically.
        sink_at: ``"corner"`` or ``"center"``.
        max_attempts: deployments to try before giving up on connectivity.

    Raises:
        DisconnectedTopologyError: if no connected deployment emerges.
    """
    if min_spacing <= 0:
        raise ValueError(f"min_spacing must be positive, got {min_spacing}")
    if radio_range <= min_spacing:
        raise ValueError(
            f"radio_range {radio_range} must exceed min_spacing "
            f"{min_spacing} for connectivity"
        )
    if sink_at == "corner":
        sink_pos = (0.0, 0.0)
    elif sink_at == "center":
        sink_pos = (width / 2, height / 2)
    else:
        raise ValueError(f"sink_at must be 'corner' or 'center', got {sink_at!r}")

    for attempt in range(max_attempts):
        rng = random.Random(f"poisson:{seed}:{attempt}")
        points = _bridson_sample(width, height, min_spacing, rng, start=sink_pos)
        positions = {SINK_ID: sink_pos}
        for idx, pos in enumerate(points[1:], start=1):
            positions[idx] = pos
        topo = Topology(positions, _unit_disk_edges(positions, radio_range))
        if topo.num_nodes() > 1 and topo.is_connected():
            return topo
    raise DisconnectedTopologyError(
        f"no connected Poisson-disk deployment in {width}x{height} with "
        f"spacing {min_spacing} / range {radio_range} after "
        f"{max_attempts} attempts"
    )


def _bridson_sample(
    width: float,
    height: float,
    r: float,
    rng: random.Random,
    start: tuple[float, float],
    candidates_per_point: int = 30,
) -> list[tuple[float, float]]:
    """Bridson (2007) fast Poisson-disk sampling on a grid."""
    cell = r / math.sqrt(2)
    cols = max(1, int(width / cell) + 1)
    rows = max(1, int(height / cell) + 1)
    grid: list[int | None] = [None] * (cols * rows)

    def cell_index(p: tuple[float, float]) -> int:
        cx = min(cols - 1, int(p[0] / cell))
        cy = min(rows - 1, int(p[1] / cell))
        return cy * cols + cx

    def fits(p: tuple[float, float]) -> bool:
        cx = min(cols - 1, int(p[0] / cell))
        cy = min(rows - 1, int(p[1] / cell))
        for dy in range(-2, 3):
            for dx in range(-2, 3):
                nx, ny = cx + dx, cy + dy
                if not (0 <= nx < cols and 0 <= ny < rows):
                    continue
                occupant = grid[ny * cols + nx]
                if occupant is not None:
                    q = points[occupant]
                    if math.hypot(p[0] - q[0], p[1] - q[1]) < r:
                        return False
        return True

    points = [start]
    grid[cell_index(start)] = 0
    active = [0]
    while active:
        pick = rng.randrange(len(active))
        origin = points[active[pick]]
        for _ in range(candidates_per_point):
            angle = rng.uniform(0, 2 * math.pi)
            radius = rng.uniform(r, 2 * r)
            candidate = (
                origin[0] + radius * math.cos(angle),
                origin[1] + radius * math.sin(angle),
            )
            if not (0 <= candidate[0] <= width and 0 <= candidate[1] <= height):
                continue
            if fits(candidate):
                points.append(candidate)
                grid[cell_index(candidate)] = len(points) - 1
                active.append(len(points) - 1)
                break
        else:
            active.pop(pick)
    return points


def _unit_disk_edges(
    positions: Mapping[int, tuple[float, float]], radio_range: float
) -> list[tuple[int, int]]:
    """All node pairs within ``radio_range`` of each other.

    Uses a coarse spatial hash so dense deployments stay near-linear instead
    of quadratic in the node count.
    """
    if radio_range <= 0:
        raise ValueError(f"radio_range must be positive, got {radio_range}")
    cell = radio_range
    buckets: dict[tuple[int, int], list[int]] = {}
    for nid, (x, y) in positions.items():
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(nid)

    edges = []
    for (bx, by), members in buckets.items():
        candidates = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                candidates.extend(buckets.get((bx + dx, by + dy), ()))
        for u in members:
            ux, uy = positions[u]
            for v in candidates:
                if v <= u:
                    continue
                vx, vy = positions[v]
                if math.hypot(ux - vx, uy - vy) <= radio_range:
                    edges.append((u, v))
    return edges
