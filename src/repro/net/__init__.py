"""Network substrate: nodes, topologies and radio links.

The paper assumes a static sensor network (nodes do not move once deployed)
whose reports travel over multi-hop wireless channels to a single sink
(Section 2.1).  This package provides deployment generators (linear chains
as used in the paper's evaluation, grids, and uniform-random fields), a
unit-disk connectivity model, and a simple lossy/delayed link model for the
discrete-event simulator.
"""

from repro.net.links import LinkModel, LinkTable
from repro.net.overhear import OverhearModel
from repro.net.topology import (
    Topology,
    grid_topology,
    linear_path_topology,
    poisson_disk_topology,
    random_topology,
)

__all__ = [
    "Topology",
    "linear_path_topology",
    "grid_topology",
    "random_topology",
    "poisson_disk_topology",
    "LinkModel",
    "LinkTable",
    "OverhearModel",
]
