"""The cluster coordinator: N shard summaries -> one global verdict.

Why a merge can be exact: the sink's verdict
(:func:`repro.traceback.sink.compute_verdict`) is a pure function of
order-insensitive evidence -- the *union* of precedence edges, the
*multiset* of tamper-stop nodes, and additive counters.  Shards
therefore never exchange partial verdicts; they export raw evidence
(:class:`~repro.traceback.sink.SinkEvidence`, over SUMMARY frames) and
the coordinator unions/sums it, then runs the *same* verdict function a
single sink would.  Equality with the single-sink answer is structural,
not statistical -- the equivalence tests in ``tests/test_cluster``
compare canonical bytes.

Determinism contract (lint RL004): every merge iterates shard IDs,
nodes, edges and stop nodes in explicitly sorted order, so the merged
evidence -- and the JSON forms below -- are byte-stable across runs,
shard counts, and routing histories.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

from repro.algebraic.sink import algebraic_precedence
from repro.faults.attribution import (
    AccusationReport,
    DropAttribution,
    build_accusation_report,
)
from repro.net.topology import Topology
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanContext
from repro.obs.telemetry import FederatedTelemetry
from repro.traceback.sink import (
    SinkEvidence,
    TracebackVerdict,
    compute_verdict,
    evidence_precedence,
)

__all__ = [
    "ClusterCoordinator",
    "merge_evidence",
    "verdict_json",
    "report_json",
]


def merge_evidence(per_shard: Mapping[int, SinkEvidence]) -> SinkEvidence:
    """Union/sum shard evidence into one global :class:`SinkEvidence`.

    Nodes and edges union (the precedence graph is idempotent under
    re-adding a chain); tamper-stop counts and the additive counters sum.
    Algebraic observations merge as a sorted multiset (concatenate, then
    sort) so the coordinator replays exactly what one big sink saw.
    The merged ``delivering_node`` -- a tie-breaker the verdict only
    consults when route evidence is absent or loops into the sink -- is
    taken from the shard that saw the most packets (smallest shard ID on
    ties), which is deterministic regardless of arrival interleaving.
    """
    nodes: set[int] = set()
    edges: set[tuple[int, int]] = set()
    stops: dict[int, int] = {}
    observations: list[tuple[int, int, int, int, int, int]] = []
    packets_received = 0
    tampered_packets = 0
    chains_with_marks = 0
    fallback_searches = 0
    delivering_node: int | None = None
    best_rank: tuple[int, int] | None = None
    for shard_id in sorted(per_shard):
        evidence = per_shard[shard_id]
        nodes.update(evidence.nodes)
        edges.update(evidence.edges)
        observations.extend(evidence.algebraic)
        for node, count in evidence.tamper_stops:
            stops[node] = stops.get(node, 0) + count
        packets_received += evidence.packets_received
        tampered_packets += evidence.tampered_packets
        chains_with_marks += evidence.chains_with_marks
        fallback_searches += evidence.fallback_searches
        if evidence.delivering_node is not None:
            rank = (-evidence.packets_received, shard_id)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                delivering_node = evidence.delivering_node
    return SinkEvidence(
        nodes=tuple(sorted(nodes)),
        edges=tuple(sorted(edges)),
        tamper_stops=tuple((node, stops[node]) for node in sorted(stops)),
        packets_received=packets_received,
        tampered_packets=tampered_packets,
        chains_with_marks=chains_with_marks,
        fallback_searches=fallback_searches,
        delivering_node=delivering_node,
        algebraic=tuple(sorted(observations)),
    )


class ClusterCoordinator:
    """Merge shard evidence and answer like one big sink.

    Args:
        topology: the deployment (suspect neighborhoods need it).
        obs: observability provider (``cluster_merge_seconds`` timer,
            ``cluster_merged_*`` gauges).
    """

    def __init__(
        self,
        topology: Topology,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.topology = topology
        self.obs = resolve_provider(obs)
        self.telemetry = FederatedTelemetry()

    def _trace_event(
        self, trace: SpanContext | None, name: str, **attrs: Any
    ) -> None:
        """Record a coordinator stage as a child span of ``trace``."""
        tracer = self.obs.tracer
        if tracer is None or trace is None:
            return
        tracer.finish(tracer.start(name, parent=trace, **attrs))

    def merge(
        self,
        per_shard: Mapping[int, SinkEvidence],
        trace: SpanContext | None = None,
    ) -> SinkEvidence:
        """The merged global evidence (see :func:`merge_evidence`).

        With ``trace``, the merge is recorded as a ``cluster_merge``
        child span of it -- the join point where per-shard traces meet.
        """
        with self.obs.timer("cluster_merge_seconds"):
            merged = merge_evidence(per_shard)
        self.obs.set_gauge("cluster_merged_shards", len(per_shard))
        self.obs.set_gauge(
            "cluster_merged_packets", merged.packets_received
        )
        self.obs.set_gauge("cluster_merged_edges", len(merged.edges))
        self._trace_event(
            trace,
            "cluster_merge",
            shards=len(per_shard),
            packets=merged.packets_received,
        )
        return merged

    def verdict(
        self,
        evidence: SinkEvidence,
        trace: SpanContext | None = None,
    ) -> TracebackVerdict:
        """Run the single-sink verdict function over merged evidence."""
        if evidence.algebraic:
            precedence = algebraic_precedence(evidence, self.topology)
        else:
            precedence = evidence_precedence(evidence)
        result = compute_verdict(
            precedence,
            dict(evidence.tamper_stops),
            evidence.tampered_packets,
            evidence.chains_with_marks,
            evidence.packets_received,
            self.topology,
            evidence.delivering_node,
            obs=self.obs,
        )
        self._trace_event(
            trace,
            "cluster_verdict",
            identified=result.identified,
            packets_used=result.packets_used,
        )
        return result

    def federate(
        self, per_shard: Mapping[int, dict[str, Any]]
    ) -> MetricsRegistry:
        """Ingest per-shard telemetry snapshots; return the federated view.

        Snapshots accumulate in :attr:`telemetry` (newest per shard
        wins), so successive polls refine the same federated registry.
        A pure read path: nothing is written back to any shard.
        """
        for shard_id in sorted(per_shard):
            self.telemetry.ingest(shard_id, per_shard[shard_id])
        registry = self.telemetry.registry()
        self.obs.set_gauge("cluster_federated_shards", len(self.telemetry))
        self.obs.set_gauge("cluster_federated_metrics", len(registry))
        return registry

    def accusation(
        self,
        evidence: SinkEvidence,
        attribution: DropAttribution,
        moles: frozenset[int] | set[int] = frozenset(),
    ) -> AccusationReport:
        """The global accusation report over merged evidence.

        Same semantics as :func:`repro.faults.accusation_report`: the
        traceback verdict accuses only when backed by tamper evidence,
        suspicious drop sites accuse directly, and the honest
        false-accusation rate quantifies collateral damage.
        """
        tamper = evidence.tampered_packets > 0
        return build_accusation_report(
            verdict=self.verdict(evidence) if tamper else None,
            tampered_packets=evidence.tampered_packets,
            topology=self.topology,
            attribution=attribution,
            moles=moles,
        )

    def __repr__(self) -> str:
        return f"ClusterCoordinator(topology={self.topology!r})"


# Canonical JSON ------------------------------------------------------------
#
# The byte-identical equivalence contract needs a serialization where
# equal values always produce equal bytes: keys sorted, no whitespace
# variance, sets rendered as sorted lists.


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def verdict_json(verdict: TracebackVerdict) -> str:
    """Canonical JSON for a verdict (diagnostic analysis excluded)."""
    suspect = verdict.suspect
    return _canonical(
        {
            "identified": verdict.identified,
            "loop_detected": verdict.loop_detected,
            "packets_used": verdict.packets_used,
            "suspect": (
                None
                if suspect is None
                else {
                    "center": suspect.center,
                    "members": sorted(suspect.members),
                    "via_loop": suspect.via_loop,
                }
            ),
        }
    )


def report_json(report: AccusationReport) -> str:
    """Canonical JSON for an accusation report."""
    return _canonical(
        {
            "accused": list(report.accused),
            "honest": list(report.honest),
            "false_accusations": list(report.false_accusations),
            "false_accusation_rate": report.false_accusation_rate,
            "tamper_evidence": report.tamper_evidence,
        }
    )
