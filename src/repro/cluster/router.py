"""``ShardRouter``: batch fan-out with backpressure retry and failover.

The router owns the client side of the cluster: it splits each incoming
batch by ring ownership, sends every sub-batch to its shard over the
plain :class:`~repro.wire.client.SinkClient` protocol, and reacts to the
three ways a shard can refuse:

* **Backpressure** -- the shard's queue refused the sub-batch whole
  (all-or-nothing admission, so nothing was ingested); the router honors
  the server's ``retry_after_ms`` hint (an injected delay, never a
  wall-clock read -- RL006) a bounded number of times.
* **Stale routing** -- the shard answered ``WRONG_SHARD``; the router
  re-derives ownership from its *current* ring and resends, a bounded
  number of times per sub-batch.  The batch itself was never partially
  ingested (servers reject before submitting anything), so the resend
  cannot double-count; the bound turns a *persistent* ring/ownership
  disagreement (a misconfigured deployment, a partitioned view) into a
  raised :class:`~repro.wire.errors.WrongShardError` instead of a
  livelock resending the same sub-batch forever.
* **Shard death** -- a connection-level failure.  The router removes the
  shard from the ring, hands the event to the owner's ``on_shard_down``
  hook (the harness replays the dead shard's journal there), and
  re-routes the in-flight sub-batch through the updated ring.

Liveness probing rides the PING frame via
:meth:`~repro.wire.client.SinkClient.health_check`.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable

from repro.cluster.ring import ShardRing
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import SpanContext
from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.wire.client import SinkClient
from repro.wire.errors import (
    BackpressureError,
    ConnectError,
    PingTimeoutError,
    RemoteError,
    TruncatedError,
    WireError,
    WrongShardError,
)
from repro.wire.messages import WireVerdict

__all__ = ["ShardRouter", "ShardReply", "ShardDownError"]

#: Connection-level failures that mean "this shard is gone", as opposed
#: to a typed refusal from a live shard.
_DOWN_ERRORS = (ConnectError, TruncatedError, ConnectionError, OSError)


class ShardDownError(WireError):
    """A shard became unreachable and no failover hook was installed."""

    def __init__(self, shard_id: int, cause: Exception):
        super().__init__(f"shard {shard_id} is down: {cause}")
        self.shard_id = shard_id
        self.cause = cause


class ShardReply:
    """One acknowledged sub-batch: which shard took which packets."""

    __slots__ = ("shard_id", "packets", "verdict")

    def __init__(
        self,
        shard_id: int,
        packets: tuple[MarkedPacket, ...],
        verdict: WireVerdict,
    ):
        self.shard_id = shard_id
        self.packets = packets
        self.verdict = verdict

    def __repr__(self) -> str:
        return (
            f"ShardReply(shard={self.shard_id}, packets={len(self.packets)})"
        )


class ShardRouter:
    """Route batches across a shard ring of sink servers.

    Args:
        ring: shared ownership view.  The router mutates it on failover
            (removing dead shards), so servers handed the same object see
            ownership changes immediately.
        clients: shard ID -> connected client.  The router adopts the
            mapping (it pops dead shards' clients and closes them).
        shard_key: key extractor (see :mod:`repro.cluster.ring`).
        fmt: the deployment mark layout.
        max_backpressure_retries: per sub-batch send; exhausting them
            re-raises the last :class:`BackpressureError`.
        max_wrong_shard_reroutes: ``WRONG_SHARD`` re-splits allowed per
            sub-batch before the router gives up and re-raises the
            :class:`WrongShardError` -- the router's ring and the shard's
            ownership view disagree persistently, which retrying cannot
            fix.  Failover re-splits do not count against this bound.
        on_shard_down: async hook awaited after a dead shard has been
            removed from the ring and its client closed; the cluster
            harness replays the shard's journal here.  Without a hook a
            dead shard raises :class:`ShardDownError`.
        obs: observability provider (``cluster_*`` counters).
    """

    def __init__(
        self,
        ring: ShardRing,
        clients: dict[int, SinkClient],
        shard_key: Callable[[MarkedPacket], bytes],
        fmt: MarkFormat,
        max_backpressure_retries: int = 8,
        max_wrong_shard_reroutes: int = 8,
        on_shard_down: Callable[[int], Awaitable[None]] | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        if max_backpressure_retries < 0:
            raise ValueError(
                "max_backpressure_retries must be >= 0, got "
                f"{max_backpressure_retries}"
            )
        if max_wrong_shard_reroutes < 0:
            raise ValueError(
                "max_wrong_shard_reroutes must be >= 0, got "
                f"{max_wrong_shard_reroutes}"
            )
        self.ring = ring
        self.clients = clients
        self.shard_key = shard_key
        self.fmt = fmt
        self.max_backpressure_retries = max_backpressure_retries
        self.max_wrong_shard_reroutes = max_wrong_shard_reroutes
        self.on_shard_down = on_shard_down
        self.obs = resolve_provider(obs)
        self.batches_routed = 0
        self.backpressure_retries = 0
        self.wrong_shard_reroutes = 0
        self.failovers = 0

    # Partitioning ----------------------------------------------------------

    def split(
        self, packets: list[MarkedPacket] | tuple[MarkedPacket, ...]
    ) -> list[tuple[int, tuple[MarkedPacket, ...]]]:
        """Partition ``packets`` by current ring ownership.

        Returns ``(shard_id, sub_batch)`` pairs in ascending shard order;
        each sub-batch preserves the packets' relative order.
        """
        by_shard: dict[int, list[MarkedPacket]] = {}
        for packet in packets:
            shard_id = self.ring.shard_for(self.shard_key(packet))
            by_shard.setdefault(shard_id, []).append(packet)
        return [
            (shard_id, tuple(by_shard[shard_id]))
            for shard_id in sorted(by_shard)
        ]

    # Sending ----------------------------------------------------------------

    def _trace_event(
        self, trace: SpanContext | None, name: str, **attrs: object
    ) -> None:
        """Record a routing decision as a child span of ``trace``."""
        tracer = self.obs.tracer
        if tracer is None or trace is None:
            return
        tracer.finish(tracer.start(name, parent=trace, **attrs))

    async def send_batch(
        self,
        packets: list[MarkedPacket] | tuple[MarkedPacket, ...],
        delivering_node: int,
        trace: SpanContext | None = None,
    ) -> list[ShardReply]:
        """Deliver one batch, splitting, retrying and failing over as needed.

        With ``trace``, every sub-batch frame carries the context and the
        routing detours a caller cannot see from the replies -- WRONG_SHARD
        reroutes and shard failovers -- are recorded as child spans of it.

        Returns:
            One :class:`ShardReply` per acknowledged sub-batch, in the
            order acknowledgments happened (ascending shard ID unless a
            failover re-routed part of the batch).
        """
        replies: list[ShardReply] = []
        pending = [
            (shard_id, sub_batch, 0)
            for shard_id, sub_batch in self.split(packets)
        ]
        while pending:
            shard_id, sub_batch, reroutes = pending.pop(0)
            try:
                verdict = await self._send_to_shard(
                    shard_id, sub_batch, delivering_node, trace
                )
            except WrongShardError:
                # Our ring view went stale between split and send (a
                # concurrent membership change); re-derive and resend --
                # but only so many times.  A reroute that keeps landing
                # on a refusing shard means the ring and the shard's
                # ownership view disagree persistently, and resending
                # would loop forever.
                if reroutes >= self.max_wrong_shard_reroutes:
                    raise
                self.wrong_shard_reroutes += 1
                self.obs.inc("cluster_wrong_shard_reroutes_total")
                self._trace_event(
                    trace,
                    "wrong_shard_reroute",
                    shard=shard_id,
                    packets=len(sub_batch),
                    reroutes=reroutes + 1,
                )
                pending.extend(
                    (sid, sub, reroutes + 1)
                    for sid, sub in self.split(sub_batch)
                )
                continue
            except _DOWN_ERRORS as exc:
                self._trace_event(
                    trace,
                    "shard_failover",
                    shard=shard_id,
                    packets=len(sub_batch),
                    cause=type(exc).__name__,
                )
                await self.mark_down(shard_id, exc)
                # A failover re-split is not a ring disagreement; the
                # reroute budget carries over unchanged.
                pending.extend(
                    (sid, sub, reroutes)
                    for sid, sub in self.split(sub_batch)
                )
                continue
            replies.append(ShardReply(shard_id, sub_batch, verdict))
        self.batches_routed += 1
        self.obs.inc("cluster_batches_routed_total")
        return replies

    async def _send_to_shard(
        self,
        shard_id: int,
        packets: tuple[MarkedPacket, ...],
        delivering_node: int,
        trace: SpanContext | None = None,
    ) -> WireVerdict:
        """One sub-batch to one shard, absorbing backpressure."""
        client = self._client(shard_id)
        attempt = 0
        while True:
            try:
                return await client.send_batch(
                    packets, delivering_node, self.fmt, trace=trace
                )
            except BackpressureError as exc:
                if attempt >= self.max_backpressure_retries:
                    raise
                attempt += 1
                self.backpressure_retries += 1
                self.obs.inc("cluster_backpressure_retries_total")
                await asyncio.sleep(exc.retry_after_ms / 1000.0)

    def _client(self, shard_id: int) -> SinkClient:
        try:
            return self.clients[shard_id]
        except KeyError:
            raise ConnectError(
                f"no client for shard {shard_id} (ring and client map "
                "out of sync)"
            ) from None

    async def mark_down(self, shard_id: int, cause: Exception) -> None:
        """Remove a dead shard from the ring and notify the owner.

        The send path calls this on connection failures; owners call it
        directly when an external signal (a failed probe, an operator
        decision) declares a shard dead.

        Raises:
            ShardDownError: when the last shard died, or no
                ``on_shard_down`` hook is installed to absorb the event.
        """
        self.failovers += 1
        self.obs.inc("cluster_failovers_total")
        if shard_id in self.ring:
            self.ring.remove_shard(shard_id)
        client = self.clients.pop(shard_id, None)
        if client is not None:
            await client.close()
        if len(self.ring) == 0:
            raise ShardDownError(shard_id, cause)
        if self.on_shard_down is None:
            raise ShardDownError(shard_id, cause)
        await self.on_shard_down(shard_id)

    # Liveness -----------------------------------------------------------------

    async def probe(self, timeout: float = 1.0) -> dict[int, bool]:
        """Health-check every shard; shards in ascending order.

        A shard is "up" when its PING echo returns within ``timeout``.
        Probing never mutates the ring -- callers decide what a failed
        probe means (the harness crashes the shard through the same
        failover path a send error takes).  A timed-out probe leaves the
        shard's client *disconnected* (:meth:`SinkClient.health_check`
        closes it so a late echo cannot mis-pair with a later request);
        a caller that deems the shard up-but-slow must reconnect it, and
        a send through the closed client surfaces as a connection error
        on the normal failover path.
        """
        health: dict[int, bool] = {}
        for shard_id in sorted(self.clients):
            client = self.clients[shard_id]
            try:
                await client.health_check(timeout=timeout)
            except (PingTimeoutError, RemoteError, *_DOWN_ERRORS):
                health[shard_id] = False
            else:
                health[shard_id] = True
            self.obs.set_gauge(
                "cluster_shard_up", 1.0 if health[shard_id] else 0.0,
                shard=shard_id,
            )
        return health

    def stats(self) -> dict[str, int]:
        """JSON-ready routing counters."""
        return {
            "shards": len(self.ring),
            "batches_routed": self.batches_routed,
            "backpressure_retries": self.backpressure_retries,
            "wrong_shard_reroutes": self.wrong_shard_reroutes,
            "failovers": self.failovers,
        }

    def __repr__(self) -> str:
        return (
            f"ShardRouter(shards={self.ring.shard_ids}, "
            f"routed={self.batches_routed}, failovers={self.failovers})"
        )
