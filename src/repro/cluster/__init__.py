"""Sharded sink cluster: consistent-hash routing plus exact verdict merge.

The paper's sink brute-forces anonymous IDs per report (Section 4.2);
one process cannot do that for the ROADMAP's million-node deployments.
This package scales the networked sink of :mod:`repro.wire` horizontally
without weakening any correctness property:

* :class:`~repro.cluster.ring.ShardRing` -- deterministic consistent
  hashing of report keys across shards, so each shard's resolver only
  ever works a slice of the key table (partitioning the brute-force
  work instead of duplicating it);
* :class:`~repro.cluster.router.ShardRouter` -- the client side:
  splits batches by ownership, absorbs backpressure via server retry
  hints, re-routes on stale-ring rejections, and fails over when a
  shard dies;
* :class:`~repro.cluster.coordinator.ClusterCoordinator` -- merges the
  shards' raw evidence (never their partial verdicts) and runs the
  *single-sink* verdict function over the union, which is why the
  merged answer is byte-identical to one big sink's;
* :class:`~repro.cluster.harness.LocalCluster` -- a loopback cluster
  with journal-replay rebalancing driven by :mod:`repro.faults` churn
  schedules, backing the equivalence tests, the ``cluster-sweep``
  experiment and the ``pnm-cluster`` CLI.

See docs/cluster.md for the ring layout, the rebalance protocol, and
the failure-semantics argument.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    merge_evidence,
    report_json,
    verdict_json,
)
from repro.cluster.harness import (
    ClusterResult,
    JournalEntry,
    LocalCluster,
    ShardHandle,
    drive_cluster,
    run_cluster,
)
from repro.cluster.ring import (
    DEFAULT_VNODES,
    ShardRing,
    region_shard_key,
    report_shard_key,
)
from repro.cluster.router import ShardDownError, ShardReply, ShardRouter

__all__ = [
    "ShardRing",
    "DEFAULT_VNODES",
    "report_shard_key",
    "region_shard_key",
    "ShardRouter",
    "ShardReply",
    "ShardDownError",
    "ClusterCoordinator",
    "merge_evidence",
    "verdict_json",
    "report_json",
    "ShardHandle",
    "JournalEntry",
    "LocalCluster",
    "ClusterResult",
    "drive_cluster",
    "run_cluster",
]
