"""``pnm-cluster``: run (or smoke-test) the sharded sink cluster.

Examples::

    pnm-cluster serve --shards 4 --port 7450 --grid-side 16
    pnm-cluster smoke                  # 2-shard loopback vs single sink
    pnm-cluster status --port 7450 --shards 4
    pnm-cluster telemetry-smoke        # federation covers every shard

``serve`` builds one PNM deployment (grid topology, keys derived from
``--master-secret``) and serves ``--shards`` sink shards on consecutive
TCP ports, each owning its :class:`~repro.cluster.ring.ShardRing` slice,
until interrupted.  ``smoke`` proves the cluster invariant in one
process: it drives the same interleaved multi-source stream through a
2-shard loopback cluster and through a plain in-process
:class:`~repro.traceback.sink.TracebackSink`, and exits 0 iff the merged
verdict and accusation report are byte-identical to the single sink's
(canonical JSON).  ``status`` polls a live cluster's TELEMETRY frames,
federates the snapshots and prints the paper-metric SLO view
(docs/observability.md); ``telemetry-smoke`` runs a 2-shard loopback
cluster with per-shard registries and exits 0 iff the federated snapshot
carries every shard label *and* the verdict is byte-identical to a
telemetry-disabled run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.cluster.coordinator import (
    ClusterCoordinator,
    report_json,
    verdict_json,
)
from repro.cluster.harness import run_cluster
from repro.cluster.ring import ShardRing, region_shard_key, report_shard_key
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.faults.attribution import DropAttribution, build_accusation_report
from repro.marking.pnm import PNMMarking
from repro.net.topology import grid_topology
from repro.obs.profiling import ObsProvider
from repro.obs.telemetry import (
    SHARD_LABEL,
    compute_cluster_slo,
    federate_snapshots,
    format_status,
)
from repro.service.ingest import SinkIngestService
from repro.traceback.sink import TracebackSink
from repro.wire.client import SinkClient
from repro.wire.errors import WireError
from repro.wire.server import SinkServer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pnm-cluster",
        description="Serve the PNM traceback sink as a sharded cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run N sink shards on consecutive ports"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7450, help="first shard's port"
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--grid-side", type=int, default=16)
    serve.add_argument("--mark-prob", type=float, default=1.0)
    serve.add_argument(
        "--master-secret",
        default="pnm-cluster",
        help="master secret the per-node keys derive from",
    )
    serve.add_argument("--workers", type=int, default=0)
    serve.add_argument("--capacity", type=int, default=1024)

    smoke = sub.add_parser(
        "smoke",
        help="2-shard loopback vs single sink; exit 0 iff byte-identical",
    )
    # Grid 10 with 4 source regions splits traffic 16/16 across the two
    # default shards (sha256 placement is deterministic), so the smoke
    # exercises routing, not just one shard's ingest path.
    smoke.add_argument("--grid-side", type=int, default=10)
    smoke.add_argument("--packets", type=int, default=32)
    smoke.add_argument("--shards", type=int, default=2)

    status = sub.add_parser(
        "status",
        help="poll a live cluster's TELEMETRY frames; print the SLO view",
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument(
        "--port", type=int, default=7450, help="first shard's port"
    )
    status.add_argument("--shards", type=int, default=2)
    status.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the SLO payload as canonical JSON",
    )

    tsmoke = sub.add_parser(
        "telemetry-smoke",
        help=(
            "2-shard loopback with per-shard registries; exit 0 iff the "
            "federated snapshot covers every shard AND the verdict is "
            "byte-identical to a telemetry-disabled run"
        ),
    )
    tsmoke.add_argument("--grid-side", type=int, default=10)
    tsmoke.add_argument("--packets", type=int, default=32)
    tsmoke.add_argument("--shards", type=int, default=2)
    return parser


async def _serve(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("pnm-cluster: --shards must be >= 1", file=sys.stderr)
        return 2
    scheme = PNMMarking(mark_prob=args.mark_prob)
    topology = grid_topology(args.grid_side, args.grid_side)
    keystore = KeyStore.from_master_secret(
        args.master_secret.encode("utf-8"), topology.sensor_nodes()
    )
    ring = ShardRing(range(args.shards))
    shard_key = report_shard_key

    servers: list[SinkServer] = []
    services: list[SinkIngestService] = []
    try:
        for shard_id in range(args.shards):
            # Each shard reports into its own registry so a TELEMETRY
            # poll (``pnm-cluster status``) sees per-shard health.
            provider = ObsProvider()
            sink = TracebackSink(
                scheme, keystore, HmacProvider(), topology, obs=provider
            )
            service = SinkIngestService(
                sink,
                capacity=args.capacity,
                workers=args.workers,
                obs=provider,
            )

            def owns(packet, sid=shard_id):
                return ring.shard_for(shard_key(packet)) == sid

            server = SinkServer(
                service,
                scheme.fmt,
                host=args.host,
                port=args.port + shard_id,
                owns=owns,
            )
            await server.start()
            services.append(service)
            servers.append(server)
            print(
                f"pnm-cluster: shard {shard_id} listening on "
                f"{args.host}:{server.port}"
            )
        print(
            f"pnm-cluster: {args.shards} shards up "
            f"({args.grid_side}x{args.grid_side} grid, workers={args.workers})"
        )
        await asyncio.gather(
            *(server.serve_forever() for server in servers)
        )
    except asyncio.CancelledError:
        pass
    finally:
        for server in servers:
            await server.close()
        for service in services:
            service.close(drain=False)
    return 0


def _smoke(args: argparse.Namespace) -> int:
    # Local import: experiments depend on cluster (cluster_sweep), so the
    # CLI pulls the workload builder lazily to keep imports acyclic.
    from repro.experiments.cluster_sweep import (
        build_cluster_workload,
        make_sink_factory,
    )

    topology, keystore, batches, _sources = build_cluster_workload(
        args.grid_side, args.packets, sources=4
    )
    scheme = PNMMarking(mark_prob=1.0)
    attribution = DropAttribution()

    # Reference: one plain in-process sink fed the identical stream.
    reference = TracebackSink(scheme, keystore, HmacProvider(), topology)
    for chunk, delivering in batches:
        for packet in chunk:
            reference.receive(packet, delivering)
    expected_verdict = verdict_json(reference.verdict())
    expected_report = report_json(
        build_accusation_report(
            verdict=None,
            tampered_packets=reference.tampered_packets,
            topology=topology,
            attribution=attribution,
            moles=frozenset(),
        )
    )

    result = run_cluster(
        make_sink_factory(topology, keystore),
        scheme.fmt,
        topology,
        batches,
        shard_ids=range(args.shards),
        shard_key=region_shard_key(cell_size=1.0),
    )
    coordinator = ClusterCoordinator(topology)
    got_verdict = verdict_json(result.verdict)
    got_report = report_json(
        coordinator.accusation(result.evidence, attribution)
    )

    ok = got_verdict == expected_verdict and got_report == expected_report
    status = "OK" if ok else "MISMATCH"
    total = sum(len(chunk) for chunk, _ in batches)
    print(
        f"cluster-smoke: {status} -- {total} packets over {args.shards} "
        f"shards, merged verdict byte-identical={got_verdict == expected_verdict}, "
        f"report byte-identical={got_report == expected_report}, "
        f"stats={result.stats}"
    )
    if not ok:
        print(f"cluster-smoke: expected verdict {expected_verdict}", file=sys.stderr)
        print(f"cluster-smoke:      got verdict {got_verdict}", file=sys.stderr)
        print(f"cluster-smoke: expected report {expected_report}", file=sys.stderr)
        print(f"cluster-smoke:      got report {got_report}", file=sys.stderr)
    return 0 if ok else 1


async def _status(args: argparse.Namespace) -> int:
    """Poll every shard's TELEMETRY frame; federate and print the SLOs.

    Exit 0 only when every expected shard answered -- a partial view is
    still printed (the reachable shards' rows), but flagged non-zero so
    monitoring catches the hole.
    """
    snapshots: dict[int, dict] = {}
    health: dict[int, bool] = {}
    for shard_id in range(args.shards):
        client = SinkClient(args.host, args.port + shard_id)
        try:
            await client.connect()
            await client.health_check()
            snapshots[shard_id] = await client.fetch_telemetry()
            health[shard_id] = True
        except (WireError, ConnectionError, OSError) as exc:
            health[shard_id] = False
            print(
                f"pnm-cluster: shard {shard_id} "
                f"({args.host}:{args.port + shard_id}) unreachable: {exc}",
                file=sys.stderr,
            )
        finally:
            await client.close()
    if not snapshots:
        print("pnm-cluster: no shards reachable", file=sys.stderr)
        return 1
    federated = federate_snapshots(snapshots)
    slo = compute_cluster_slo(federated)
    if args.as_json:
        payload = slo.as_dict()
        payload["shards_up"] = {
            str(shard_id): up for shard_id, up in sorted(health.items())
        }
        print(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    else:
        print(format_status(slo))
        down = sorted(sid for sid, up in health.items() if not up)
        if down:
            print(f"  unreachable shards: {down}")
    return 0 if all(health.values()) else 1


def _telemetry_smoke(args: argparse.Namespace) -> int:
    """Observation-only proof: federation covers every shard, verdict parity.

    Runs the same schedule twice through identical loopback clusters --
    once bare, once with a per-shard ``ObsProvider`` (own registry, own
    tracer with a shard-unique span-id prefix) -- then checks that (a)
    the federated snapshot carries every shard's label and (b) the
    observed run's merged verdict is byte-identical to the bare run's.
    """
    from repro.experiments.cluster_sweep import (
        build_cluster_workload,
        make_sink_factory,
    )
    from repro.obs.spans import Tracer

    topology, keystore, batches, _sources = build_cluster_workload(
        args.grid_side, args.packets, sources=4
    )
    scheme = PNMMarking(mark_prob=1.0)
    shard_key = region_shard_key(cell_size=1.0)

    baseline = run_cluster(
        make_sink_factory(topology, keystore),
        scheme.fmt,
        topology,
        batches,
        shard_ids=range(args.shards),
        shard_key=shard_key,
    )
    observed = run_cluster(
        make_sink_factory(topology, keystore),
        scheme.fmt,
        topology,
        batches,
        shard_ids=range(args.shards),
        shard_key=shard_key,
        shard_obs_factory=lambda sid: ObsProvider(
            tracer=Tracer(id_prefix=f"sh{sid}-")
        ),
    )

    federated = federate_snapshots(observed.telemetry)
    seen: set[str] = set()
    for entry in federated.snapshot()["metrics"]:
        if entry["label_names"] and entry["label_names"][0] == SHARD_LABEL:
            for series in entry["series"]:
                seen.add(series["labels"][0])
    expected = {str(sid) for sid in range(args.shards)}
    labels_ok = expected <= seen
    parity = verdict_json(observed.verdict) == verdict_json(baseline.verdict)

    slo = compute_cluster_slo(
        federated,
        verdict=observed.verdict,
        router_stats=observed.stats["router"],
    )
    print(format_status(slo))
    status = "OK" if labels_ok and parity else "FAIL"
    print(
        f"telemetry-smoke: {status} -- shards_in_snapshot="
        f"{sorted(seen)} expected={sorted(expected)}, "
        f"verdict byte-identical={parity}"
    )
    if not labels_ok:
        print(
            f"telemetry-smoke: missing shard labels {sorted(expected - seen)}",
            file=sys.stderr,
        )
    if not parity:
        print(
            "telemetry-smoke: telemetry perturbed the verdict "
            "(observation-only contract broken)",
            file=sys.stderr,
        )
    return 0 if labels_ok and parity else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return asyncio.run(_serve(args))
    if args.command == "status":
        return asyncio.run(_status(args))
    if args.command == "telemetry-smoke":
        return _telemetry_smoke(args)
    return _smoke(args)


if __name__ == "__main__":
    sys.exit(main())
