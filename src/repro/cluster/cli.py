"""``pnm-cluster``: run (or smoke-test) the sharded sink cluster.

Examples::

    pnm-cluster serve --shards 4 --port 7450 --grid-side 16
    pnm-cluster smoke                  # 2-shard loopback vs single sink

``serve`` builds one PNM deployment (grid topology, keys derived from
``--master-secret``) and serves ``--shards`` sink shards on consecutive
TCP ports, each owning its :class:`~repro.cluster.ring.ShardRing` slice,
until interrupted.  ``smoke`` proves the cluster invariant in one
process: it drives the same interleaved multi-source stream through a
2-shard loopback cluster and through a plain in-process
:class:`~repro.traceback.sink.TracebackSink`, and exits 0 iff the merged
verdict and accusation report are byte-identical to the single sink's
(canonical JSON).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.cluster.coordinator import (
    ClusterCoordinator,
    report_json,
    verdict_json,
)
from repro.cluster.harness import run_cluster
from repro.cluster.ring import ShardRing, region_shard_key, report_shard_key
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.faults.attribution import DropAttribution, build_accusation_report
from repro.marking.pnm import PNMMarking
from repro.net.topology import grid_topology
from repro.service.ingest import SinkIngestService
from repro.traceback.sink import TracebackSink
from repro.wire.server import SinkServer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pnm-cluster",
        description="Serve the PNM traceback sink as a sharded cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run N sink shards on consecutive ports"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7450, help="first shard's port"
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--grid-side", type=int, default=16)
    serve.add_argument("--mark-prob", type=float, default=1.0)
    serve.add_argument(
        "--master-secret",
        default="pnm-cluster",
        help="master secret the per-node keys derive from",
    )
    serve.add_argument("--workers", type=int, default=0)
    serve.add_argument("--capacity", type=int, default=1024)

    smoke = sub.add_parser(
        "smoke",
        help="2-shard loopback vs single sink; exit 0 iff byte-identical",
    )
    # Grid 10 with 4 source regions splits traffic 16/16 across the two
    # default shards (sha256 placement is deterministic), so the smoke
    # exercises routing, not just one shard's ingest path.
    smoke.add_argument("--grid-side", type=int, default=10)
    smoke.add_argument("--packets", type=int, default=32)
    smoke.add_argument("--shards", type=int, default=2)
    return parser


async def _serve(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("pnm-cluster: --shards must be >= 1", file=sys.stderr)
        return 2
    scheme = PNMMarking(mark_prob=args.mark_prob)
    topology = grid_topology(args.grid_side, args.grid_side)
    keystore = KeyStore.from_master_secret(
        args.master_secret.encode("utf-8"), topology.sensor_nodes()
    )
    ring = ShardRing(range(args.shards))
    shard_key = report_shard_key

    servers: list[SinkServer] = []
    services: list[SinkIngestService] = []
    try:
        for shard_id in range(args.shards):
            sink = TracebackSink(scheme, keystore, HmacProvider(), topology)
            service = SinkIngestService(
                sink, capacity=args.capacity, workers=args.workers
            )

            def owns(packet, sid=shard_id):
                return ring.shard_for(shard_key(packet)) == sid

            server = SinkServer(
                service,
                scheme.fmt,
                host=args.host,
                port=args.port + shard_id,
                owns=owns,
            )
            await server.start()
            services.append(service)
            servers.append(server)
            print(
                f"pnm-cluster: shard {shard_id} listening on "
                f"{args.host}:{server.port}"
            )
        print(
            f"pnm-cluster: {args.shards} shards up "
            f"({args.grid_side}x{args.grid_side} grid, workers={args.workers})"
        )
        await asyncio.gather(
            *(server.serve_forever() for server in servers)
        )
    except asyncio.CancelledError:
        pass
    finally:
        for server in servers:
            await server.close()
        for service in services:
            service.close(drain=False)
    return 0


def _smoke(args: argparse.Namespace) -> int:
    # Local import: experiments depend on cluster (cluster_sweep), so the
    # CLI pulls the workload builder lazily to keep imports acyclic.
    from repro.experiments.cluster_sweep import (
        build_cluster_workload,
        make_sink_factory,
    )

    topology, keystore, batches, _sources = build_cluster_workload(
        args.grid_side, args.packets, sources=4
    )
    scheme = PNMMarking(mark_prob=1.0)
    attribution = DropAttribution()

    # Reference: one plain in-process sink fed the identical stream.
    reference = TracebackSink(scheme, keystore, HmacProvider(), topology)
    for chunk, delivering in batches:
        for packet in chunk:
            reference.receive(packet, delivering)
    expected_verdict = verdict_json(reference.verdict())
    expected_report = report_json(
        build_accusation_report(
            verdict=None,
            tampered_packets=reference.tampered_packets,
            topology=topology,
            attribution=attribution,
            moles=frozenset(),
        )
    )

    result = run_cluster(
        make_sink_factory(topology, keystore),
        scheme.fmt,
        topology,
        batches,
        shard_ids=range(args.shards),
        shard_key=region_shard_key(cell_size=1.0),
    )
    coordinator = ClusterCoordinator(topology)
    got_verdict = verdict_json(result.verdict)
    got_report = report_json(
        coordinator.accusation(result.evidence, attribution)
    )

    ok = got_verdict == expected_verdict and got_report == expected_report
    status = "OK" if ok else "MISMATCH"
    total = sum(len(chunk) for chunk, _ in batches)
    print(
        f"cluster-smoke: {status} -- {total} packets over {args.shards} "
        f"shards, merged verdict byte-identical={got_verdict == expected_verdict}, "
        f"report byte-identical={got_report == expected_report}, "
        f"stats={result.stats}"
    )
    if not ok:
        print(f"cluster-smoke: expected verdict {expected_verdict}", file=sys.stderr)
        print(f"cluster-smoke:      got verdict {got_verdict}", file=sys.stderr)
        print(f"cluster-smoke: expected report {expected_report}", file=sys.stderr)
        print(f"cluster-smoke:      got report {got_report}", file=sys.stderr)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return asyncio.run(_serve(args))
    return _smoke(args)


if __name__ == "__main__":
    sys.exit(main())
