"""``LocalCluster``: N shard servers, one router, churn-safe journaling.

The cluster-scale analogue of :mod:`repro.wire.loopback`: every shard is
a real :class:`~repro.wire.server.SinkServer` (own
:class:`~repro.service.SinkIngestService`, own sink, own slice of the
brute-force key table work) on an ephemeral loopback port, and one
:class:`~repro.cluster.router.ShardRouter` feeds them over the real wire
protocol.

**Exactly-once under churn.**  The harness journals every acknowledged
sub-batch against the shard that acknowledged it.  When a shard dies --
the router discovers it through a connection failure, or a probe does --
the dead shard's *evidence is discarded whole* (its sink dies with it)
and its journal replays through the updated ring to the survivors.  Each
packet is therefore counted by exactly one *surviving* shard: the dead
shard's copy is never merged, and the replay re-ingests exactly what it
had acknowledged.  Merged verdicts stay byte-identical to a single sink
fed the same stream, which is what ``tests/test_cluster`` pins under a
kill-and-replace churn schedule.

**Journal retention is O(total acknowledged traffic).**  Replay safety
requires the journal to reference every packet a shard has acknowledged
since the last compaction, so between compactions the journal grows with
traffic volume and a shard death replays its whole retained history.
Callers running long or unbounded streams should call
:meth:`LocalCluster.checkpoint` whenever they have durably collected the
cluster's evidence (e.g. after a :meth:`LocalCluster.collect` whose
result they persist): it drops the retained journal, bounding both
memory and worst-case replay to one checkpoint interval.

**Churn schedules.**  Shard churn reuses :class:`repro.faults.FaultSchedule`
verbatim: ``node`` is the shard ID and ``time`` is the batch index the
event applies before.  Only ``crash`` and ``recover`` kinds make sense
for shards; anything else is rejected up front.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.ring import DEFAULT_VNODES, ShardRing, report_shard_key
from repro.cluster.router import ShardReply, ShardRouter
from repro.faults.schedule import FaultEvent, FaultSchedule
from typing import Any

from repro.net.topology import Topology
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import SpanContext
from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.service.ingest import SinkIngestService
from repro.traceback.sink import SinkEvidence, TracebackSink, TracebackVerdict
from repro.wire.client import SinkClient
from repro.wire.errors import ConnectError
from repro.wire.server import SinkServer

__all__ = [
    "ShardHandle",
    "LocalCluster",
    "ClusterResult",
    "JournalEntry",
    "drive_cluster",
    "run_cluster",
]

#: One scheduled send: ``(packets, delivering_node)`` -- the loopback shape.
Batch = tuple[list[MarkedPacket], int]

#: One journaled acknowledgment: the sub-batch, its delivering node, and
#: the trace context it was sent under (``None`` for untraced sends), so
#: churn replays stay inside the original trace.
JournalEntry = tuple[list[MarkedPacket], int, SpanContext | None]

#: The only fault kinds meaningful for shard churn.
_SHARD_FAULT_KINDS = ("crash", "recover")


@dataclass
class ShardHandle:
    """One live shard: its pipeline, server, and the router's client."""

    shard_id: int
    service: SinkIngestService
    server: SinkServer
    client: SinkClient


class LocalCluster:
    """A loopback shard cluster with journal-replay rebalancing.

    Args:
        sink_factory: builds a fresh :class:`TracebackSink` per shard
            (and per replacement shard); sinks must share scheme, keys
            and topology or the shards disagree on verification.
        fmt: the deployment mark layout.
        shard_ids: initial shard IDs.
        shard_key: ring key extractor (default: uniform report digest).
        vnodes: ring points per shard.
        service_kwargs: forwarded to every shard's
            :class:`SinkIngestService` (workers, hot_capacity, ...).
        obs: observability provider for router/cluster counters.
        shard_obs_factory: builds one observability provider per shard id
            (fresh registry/tracer per shard, and per replacement after a
            recover) -- the provider each shard's sink, service and
            server report into, and therefore what the shard serves over
            the TELEMETRY frame.  ``None`` leaves shards on the NOOP
            provider (empty telemetry snapshots).
    """

    def __init__(
        self,
        sink_factory: Callable[[], TracebackSink],
        fmt: MarkFormat,
        shard_ids: Iterable[int],
        shard_key: Callable[[MarkedPacket], bytes] = report_shard_key,
        vnodes: int = DEFAULT_VNODES,
        service_kwargs: Mapping[str, object] | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
        shard_obs_factory: (
            Callable[[int], ObsProvider | NoopObsProvider] | None
        ) = None,
    ):
        ids = sorted(shard_ids)
        if not ids:
            raise ValueError("a cluster needs at least one shard")
        self.sink_factory = sink_factory
        self.fmt = fmt
        self.shard_key = shard_key
        self.service_kwargs = dict(service_kwargs or {})
        self.obs = resolve_provider(obs)
        self.shard_obs_factory = shard_obs_factory
        self.ring = ShardRing(ids, vnodes=vnodes)
        self.handles: dict[int, ShardHandle] = {}
        self.dead: list[ShardHandle] = []
        self.journal: dict[int, list[JournalEntry]] = {}
        self.replayed_batches = 0
        self.shards_lost = 0
        self.shards_recovered = 0
        self._initial_ids = ids
        self.router = ShardRouter(
            self.ring,
            {},
            shard_key,
            fmt,
            on_shard_down=self._on_shard_down,
            obs=self.obs,
        )

    # Lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every initial shard and connect the router to each."""
        for shard_id in self._initial_ids:
            await self._spawn(shard_id)

    async def close(self) -> None:
        """Tear the whole cluster down (idempotent)."""
        for shard_id in sorted(self.handles):
            handle = self.handles[shard_id]
            await handle.client.close()
            await handle.server.close()
            handle.service.close(drain=False)
        self.handles.clear()
        self.router.clients.clear()

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.close()

    async def _spawn(self, shard_id: int) -> ShardHandle:
        """Boot one shard and register it with the router."""
        sink = self.sink_factory()
        kwargs = dict(self.service_kwargs)
        if self.shard_obs_factory is not None and "obs" not in kwargs:
            # The shard's whole pipeline -- sink merge, verification,
            # queue, wire transport -- reports into one per-shard
            # provider; the server (obs=None) inherits the service's.
            provider = self.shard_obs_factory(shard_id)
            sink.obs = provider
            kwargs["obs"] = provider
        service = SinkIngestService(sink, **kwargs)

        def owns(packet: MarkedPacket, sid: int = shard_id) -> bool:
            return self.ring.shard_for(self.shard_key(packet)) == sid

        server = SinkServer(service, self.fmt, owns=owns)
        await server.start()
        client = SinkClient("127.0.0.1", server.port)
        await client.connect()
        handle = ShardHandle(
            shard_id=shard_id, service=service, server=server, client=client
        )
        self.handles[shard_id] = handle
        self.router.clients[shard_id] = client
        self.obs.set_gauge("cluster_shards_live", len(self.handles))
        return handle

    # Churn --------------------------------------------------------------------

    async def crash_shard(self, shard_id: int) -> None:
        """Kill a shard the way a crash looks from outside.

        Only the server dies (transports aborted mid-stream, listener
        closed).  The ring and the router's client map are *not* touched:
        the router must discover the failure through a connection error
        or a failed probe, exactly as with a remote peer.
        """
        handle = self.handles.get(shard_id)
        if handle is None:
            raise ValueError(f"shard {shard_id} is not live")
        await handle.server.abort()

    async def recover_shard(self, shard_id: int) -> None:
        """Replace a dead shard: fresh sink, fresh server, same ID.

        If the crash was never discovered (no send or probe touched the
        shard since), discovery is forced first so the dead instance's
        journal replays before the replacement takes over the ID.
        Survivors' resolver caches purge (:meth:`SinkIngestService.
        invalidate_all`) because the ring change shifts their key ranges.
        """
        if shard_id in self.router.clients:
            await self.router.mark_down(
                shard_id, ConnectError(f"shard {shard_id} is being replaced")
            )
        if shard_id in self.ring:
            raise ValueError(f"shard {shard_id} is still on the ring")
        await self._spawn(shard_id)
        self.ring.add_shard(shard_id)
        self.shards_recovered += 1
        self.obs.inc("cluster_shards_recovered_total")
        for sid in sorted(self.handles):
            if sid != shard_id:
                self.handles[sid].service.invalidate_all()

    async def _on_shard_down(self, shard_id: int) -> None:
        """Router failover hook: discard the dead shard, replay its journal.

        By the time this runs the router has already removed the shard
        from the ring and closed its client, so every resend below routes
        through the updated ownership map.
        """
        self.shards_lost += 1
        self.obs.inc("cluster_shards_lost_total")
        handle = self.handles.pop(shard_id, None)
        if handle is not None:
            self.dead.append(handle)
            await handle.server.abort()
            handle.service.close(drain=False)
        self.obs.set_gauge("cluster_shards_live", len(self.handles))
        for sid in sorted(self.handles):
            self.handles[sid].service.invalidate_all()
        entries = self.journal.pop(shard_id, [])
        for packets, delivering_node, trace in entries:
            self.replayed_batches += 1
            self.obs.inc("cluster_replayed_batches_total")
            replies = await self.router.send_batch(
                packets, delivering_node, trace=trace
            )
            self._journal_replies(replies, delivering_node, trace)

    # Traffic --------------------------------------------------------------------

    def _journal_replies(
        self,
        replies: list[ShardReply],
        delivering_node: int,
        trace: SpanContext | None = None,
    ) -> None:
        for reply in replies:
            self.journal.setdefault(reply.shard_id, []).append(
                (list(reply.packets), delivering_node, trace)
            )
        if replies:
            self.obs.set_gauge(
                "cluster_journal_batches",
                sum(len(self.journal[sid]) for sid in sorted(self.journal)),
            )

    async def send(
        self,
        packets: list[MarkedPacket],
        delivering_node: int,
        trace: SpanContext | None = None,
    ) -> list[ShardReply]:
        """Route one batch and journal every acknowledged sub-batch.

        The trace context is journaled alongside the packets, so a churn
        replay of this batch stays inside the original trace.
        """
        replies = await self.router.send_batch(
            packets, delivering_node, trace=trace
        )
        self._journal_replies(replies, delivering_node, trace)
        return replies

    def checkpoint(self) -> int:
        """Compact the replay journal: drop every retained sub-batch.

        The journal exists so a dead shard's acknowledged-but-unmerged
        packets can replay to survivors; it necessarily retains every
        ack since the last compaction (see the module docstring).  Call
        this *only after* durably collecting the cluster's evidence --
        a shard that dies afterwards replays nothing from before the
        checkpoint, so its pre-checkpoint contribution survives only in
        whatever the caller persisted.

        Returns:
            The number of journaled sub-batches dropped.
        """
        dropped = sum(len(self.journal[sid]) for sid in sorted(self.journal))
        self.journal.clear()
        self.obs.inc("cluster_journal_checkpoints_total")
        self.obs.set_gauge("cluster_journal_batches", 0)
        return dropped

    async def run_schedule(
        self,
        batches: list[Batch],
        churn: FaultSchedule | None = None,
        traces: list[SpanContext | None] | None = None,
    ) -> list[ShardReply]:
        """Send ``batches`` in order, applying shard churn between them.

        A churn event with ``time <= i`` fires before batch ``i`` is
        sent; events past the last batch fire after the final send.
        ``traces`` optionally supplies one trace context per batch.

        Raises:
            ValueError: on churn kinds other than crash/recover, a
                missing target shard ID, or a ``traces`` list whose
                length disagrees with ``batches``.
        """
        events = list(churn.events) if churn is not None else []
        for event in events:
            if event.kind not in _SHARD_FAULT_KINDS:
                raise ValueError(
                    f"shard churn supports kinds {_SHARD_FAULT_KINDS}, "
                    f"got {event.kind!r}"
                )
            if event.node is None:
                raise ValueError("shard churn events need a shard ID in .node")
        if traces is not None and len(traces) != len(batches):
            raise ValueError(
                f"traces length {len(traces)} != batches length {len(batches)}"
            )
        replies: list[ShardReply] = []
        cursor = 0
        for index, (packets, delivering_node) in enumerate(batches):
            while cursor < len(events) and events[cursor].time <= index:
                await self._apply_churn(events[cursor])
                cursor += 1
            replies.extend(
                await self.send(
                    packets,
                    delivering_node,
                    trace=traces[index] if traces is not None else None,
                )
            )
        while cursor < len(events):
            await self._apply_churn(events[cursor])
            cursor += 1
        return replies

    async def _apply_churn(self, event: FaultEvent) -> None:
        assert event.node is not None  # validated by run_schedule
        if event.kind == "crash":
            await self.crash_shard(event.node)
        else:
            await self.recover_shard(event.node)

    # Results ------------------------------------------------------------------

    async def collect(self) -> dict[int, SinkEvidence]:
        """Fetch every live shard's evidence summary, keyed by shard ID.

        Undiscovered dead shards are evicted first (probe -> failover ->
        journal replay), so the union of the returned summaries always
        covers every acknowledged packet exactly once.
        """
        health = await self.router.probe()
        down = sorted(sid for sid in health if not health[sid])
        for shard_id in down:
            await self.router.mark_down(
                shard_id, ConnectError(f"shard {shard_id} failed its probe")
            )
        summaries: dict[int, SinkEvidence] = {}
        for shard_id in sorted(self.router.clients):
            summaries[shard_id] = await self.router.clients[
                shard_id
            ].fetch_summary()
        return summaries

    async def fetch_telemetry(self) -> dict[int, dict[str, Any]]:
        """Poll every live shard's registry snapshot (TELEMETRY frame).

        A pure read of the shards' obs side -- no sink or service state
        changes, so polling telemetry can never perturb a verdict.
        Shards running without observability answer ``{"metrics": []}``.
        """
        snapshots: dict[int, dict[str, Any]] = {}
        for shard_id in sorted(self.router.clients):
            snapshots[shard_id] = await self.router.clients[
                shard_id
            ].fetch_telemetry()
        return snapshots

    def stats(self) -> dict[str, object]:
        """Routing, churn, and per-shard transport counters."""
        return {
            "router": self.router.stats(),
            "shards_lost": self.shards_lost,
            "shards_recovered": self.shards_recovered,
            "replayed_batches": self.replayed_batches,
            "shards": {
                shard_id: self.handles[shard_id].server.stats()
                for shard_id in sorted(self.handles)
            },
        }

    def __repr__(self) -> str:
        return (
            f"LocalCluster(live={sorted(self.handles)}, "
            f"lost={self.shards_lost}, recovered={self.shards_recovered})"
        )


@dataclass
class ClusterResult:
    """Everything a cluster run produced.

    Attributes:
        summaries: per-shard evidence at the end of the run.
        evidence: the coordinator's merged global evidence.
        verdict: the global verdict over the merged evidence.
        replies: every acknowledged sub-batch, in ack order.
        stats: router/churn/shard counters at shutdown.
        telemetry: per-shard registry snapshots polled at the end of the
            run (empty unless the cluster ran with ``shard_obs_factory``);
            feed them to :func:`repro.obs.telemetry.federate_snapshots`.
    """

    summaries: dict[int, SinkEvidence]
    evidence: SinkEvidence
    verdict: TracebackVerdict
    replies: list[ShardReply] = field(default_factory=list)
    stats: dict[str, object] = field(default_factory=dict)
    telemetry: dict[int, dict[str, Any]] = field(default_factory=dict)


async def drive_cluster(
    sink_factory: Callable[[], TracebackSink],
    fmt: MarkFormat,
    topology: Topology,
    batches: list[Batch],
    shard_ids: Iterable[int],
    shard_key: Callable[[MarkedPacket], bytes] = report_shard_key,
    churn: FaultSchedule | None = None,
    service_kwargs: Mapping[str, object] | None = None,
    obs: ObsProvider | NoopObsProvider | None = None,
    shard_obs_factory: (
        Callable[[int], ObsProvider | NoopObsProvider] | None
    ) = None,
) -> ClusterResult:
    """Run a batch schedule through a fresh loopback cluster.

    The cluster analogue of :func:`repro.wire.loopback.drive_loopback`:
    start shards, stream the schedule (with optional churn), collect and
    merge evidence, and tear everything down.  With ``shard_obs_factory``
    each shard reports into its own provider and the result carries the
    final per-shard telemetry snapshots; the packet/verdict path is
    untouched either way.
    """
    coordinator = ClusterCoordinator(topology, obs=obs)
    cluster = LocalCluster(
        sink_factory,
        fmt,
        shard_ids,
        shard_key=shard_key,
        service_kwargs=service_kwargs,
        obs=obs,
        shard_obs_factory=shard_obs_factory,
    )
    async with cluster:
        replies = await cluster.run_schedule(batches, churn=churn)
        summaries = await cluster.collect()
        telemetry = (
            await cluster.fetch_telemetry()
            if shard_obs_factory is not None
            else {}
        )
        stats = cluster.stats()
    evidence = coordinator.merge(summaries)
    return ClusterResult(
        summaries=summaries,
        evidence=evidence,
        verdict=coordinator.verdict(evidence),
        replies=replies,
        stats=stats,
        telemetry=telemetry,
    )


def run_cluster(
    sink_factory: Callable[[], TracebackSink],
    fmt: MarkFormat,
    topology: Topology,
    batches: list[Batch],
    shard_ids: Iterable[int],
    shard_key: Callable[[MarkedPacket], bytes] = report_shard_key,
    churn: FaultSchedule | None = None,
    service_kwargs: Mapping[str, object] | None = None,
    obs: ObsProvider | NoopObsProvider | None = None,
    shard_obs_factory: (
        Callable[[int], ObsProvider | NoopObsProvider] | None
    ) = None,
) -> ClusterResult:
    """Synchronous wrapper: :func:`drive_cluster` under ``asyncio.run``."""
    return asyncio.run(
        drive_cluster(
            sink_factory,
            fmt,
            topology,
            batches,
            shard_ids,
            shard_key=shard_key,
            churn=churn,
            service_kwargs=service_kwargs,
            obs=obs,
            shard_obs_factory=shard_obs_factory,
        )
    )
