"""Consistent-hash ring: which shard owns which report keys.

A :class:`ShardRing` places ``vnodes`` virtual points per shard on a
SHA-256 hash circle; a key belongs to the shard owning the first point
clockwise from the key's own hash.  The properties the cluster leans on:

* **Determinism** -- point positions derive only from ``(shard_id,
  vnode index)``, so every router, server and test that builds a ring
  over the same shard IDs computes identical ownership (no process
  hash seeding, no insertion-order dependence).
* **Minimal movement** -- removing a shard reassigns only the keys it
  owned; adding one steals roughly ``1/n`` of each incumbent's range.
  That is what keeps a shard failure a *partial* cache invalidation
  event rather than a cluster-wide reshuffle.
* **Locality control** -- the ring hashes whatever bytes the key
  extractor produces.  :func:`report_shard_key` spreads load uniformly
  (every distinct report lands anywhere); :func:`region_shard_key`
  quantizes the report's event location so all traffic from one region
  -- hence one route, hence one small marker set -- stays on one shard,
  which is what lets each shard's resolver hot-set actually fit its
  working set (see docs/cluster.md).
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Callable, Iterable

from repro.obs.spans import report_key
from repro.packets.packet import MarkedPacket

__all__ = [
    "ShardRing",
    "report_shard_key",
    "region_shard_key",
    "DEFAULT_VNODES",
]

#: Virtual points per shard.  64 keeps the largest/smallest ownership
#: ratio under ~1.4 for small clusters while the ring stays tiny.
DEFAULT_VNODES = 64


def _point(shard_id: int, vnode: int) -> int:
    """Position of one virtual node on the hash circle."""
    digest = hashlib.sha256(f"ring|{shard_id}|{vnode}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _key_point(key: bytes) -> int:
    """Position of a key on the hash circle."""
    digest = hashlib.sha256(b"key|" + key).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Consistent hashing over integer shard IDs.

    Args:
        shard_ids: the initial shard set (any iterable; order ignored).
        vnodes: virtual points per shard.

    Raises:
        ValueError: on duplicate shard IDs or ``vnodes < 1``.
    """

    def __init__(
        self, shard_ids: Iterable[int] = (), vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._shards: list[int] = []
        self._points: list[int] = []
        self._owners: list[int] = []
        for shard_id in sorted(shard_ids):
            self.add_shard(shard_id)

    # Membership ----------------------------------------------------------

    @property
    def shard_ids(self) -> list[int]:
        """Current members, ascending."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: int) -> None:
        """Insert ``shard_id``'s virtual points.

        Raises:
            ValueError: if the shard is already a member.
        """
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        bisect.insort(self._shards, shard_id)
        for vnode in range(self.vnodes):
            point = _point(shard_id, vnode)
            index = bisect.bisect_left(self._points, point)
            # SHA-256 collisions between distinct (shard, vnode) labels are
            # not a practical concern; ties resolve to the smaller shard ID
            # so even a collision would be deterministic.
            if (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] <= shard_id
            ):
                continue
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: int) -> None:
        """Drop ``shard_id``'s virtual points (its range flows clockwise).

        Raises:
            ValueError: if the shard is not a member.
        """
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} not on the ring")
        self._shards.remove(shard_id)
        keep = [
            index
            for index in range(len(self._points))
            if self._owners[index] != shard_id
        ]
        self._points = [self._points[index] for index in keep]
        self._owners = [self._owners[index] for index in keep]

    # Lookup ----------------------------------------------------------------

    def shard_for(self, key: bytes) -> int:
        """The shard owning ``key``.

        Raises:
            LookupError: when the ring is empty.
        """
        if not self._points:
            raise LookupError("cannot route on an empty ring")
        index = bisect.bisect_right(self._points, _key_point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def ownership(self, keys: Iterable[bytes]) -> dict[int, int]:
        """Key count per shard over ``keys`` (shards in ascending order)."""
        counts: dict[int, int] = {shard_id: 0 for shard_id in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"ShardRing(shards={self._shards}, vnodes={self.vnodes}, "
            f"points={len(self._points)})"
        )


def report_shard_key(packet: MarkedPacket) -> bytes:
    """Uniform key: the packet's report digest (see ``repro.obs.spans``).

    Spreads distinct reports evenly regardless of origin -- maximal load
    balance, minimal resolver locality.
    """
    return report_key(packet.report)


def region_shard_key(
    cell_size: float = 8.0,
) -> Callable[[MarkedPacket], bytes]:
    """Locality key factory: quantize the report's event location.

    Every report whose location falls in the same ``cell_size`` x
    ``cell_size`` cell routes to the same shard.  Since a stationary
    source reports one location and one route delivers it, the shard's
    resolver sees a small, stable marker set -- the property the
    throughput gate in ``benchmarks/test_bench_cluster.py`` measures.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")

    def key(packet: MarkedPacket) -> bytes:
        x, y = packet.report.location
        cell = (int(x // cell_size), int(y // cell_size))
        return f"region|{cell[0]}|{cell[1]}".encode()

    return key
