"""``python -m repro.cluster`` -> the ``pnm-cluster`` CLI."""

from repro.cluster.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
