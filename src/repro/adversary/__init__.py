"""Adversary substrate: colluding moles and the Section 2.2 attack taxonomy.

The threat model: an adversary physically compromises nodes ("moles"),
obtaining their keys and full control of their behavior.  A *source mole*
injects well-formed bogus reports; a *forwarding mole* on the path
manipulates packets arbitrarily to hide both moles' locations or frame
innocent nodes.  Moles share all their keys (:class:`Coalition`).

Attack taxonomy (Section 2.2), each a composable :class:`Attack` strategy:

1.  No-mark            -- :class:`NoMarkAttack`
2.  Mark insertion     -- :class:`MarkInsertionAttack`
3.  Mark removal       -- :class:`MarkRemovalAttack`
4.  Mark re-ordering   -- :class:`MarkReorderingAttack`
5.  Mark altering      -- :class:`MarkAlteringAttack`
6.  Selective dropping -- :class:`SelectiveDroppingAttack`
7.  Identity swapping  -- :class:`IdentitySwappingAttack`

Plus :class:`ReplayAttack` (Section 7), :class:`CompositeAttack` for
combinations, and :class:`HonestBehaviorAttack` as the do-nothing control.
"""

from repro.adversary.attacks import (
    Attack,
    CompositeAttack,
    HonestBehaviorAttack,
    IdentitySwappingAttack,
    MarkAlteringAttack,
    MarkInsertionAttack,
    MarkRemovalAttack,
    MarkReorderingAttack,
    NoMarkAttack,
    SelectiveDroppingAttack,
    TargetedMarkRemovalAttack,
    UnprotectedBitAlteringAttack,
)
from repro.adversary.coalition import Coalition
from repro.adversary.moles import ForwardingMole, MoleReportSource, ReplayingSource

__all__ = [
    "Coalition",
    "Attack",
    "NoMarkAttack",
    "MarkInsertionAttack",
    "MarkRemovalAttack",
    "TargetedMarkRemovalAttack",
    "MarkReorderingAttack",
    "MarkAlteringAttack",
    "SelectiveDroppingAttack",
    "IdentitySwappingAttack",
    "UnprotectedBitAlteringAttack",
    "CompositeAttack",
    "HonestBehaviorAttack",
    "ForwardingMole",
    "MoleReportSource",
    "ReplayingSource",
]
