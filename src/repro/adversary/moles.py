"""Mole node behaviors: compromised forwarders and sources.

A :class:`ForwardingMole` plugs into the same forwarding slot as an
:class:`~repro.sim.behaviors.HonestForwarder` but delegates to an
:class:`~repro.adversary.attacks.Attack`.  Source-side misbehavior wraps a
report source: :class:`MoleReportSource` lets the injecting mole manipulate
its own packets before they leave (e.g. mark under a swapped identity, or
pre-load fake marks), and :class:`ReplayingSource` replays previously
captured legitimate packets, marks and all (Section 7, Replay Attacks).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.adversary.attacks import Attack
from repro.adversary.coalition import Coalition
from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.packet import MarkedPacket
from repro.sim.sources import ReportSource

__all__ = ["ForwardingMole", "MoleReportSource", "ReplayingSource"]


class ForwardingMole:
    """A compromised forwarding node driven by an attack strategy.

    Args:
        ctx: the mole's own identity and (compromised) key.
        scheme: the deployed marking scheme -- the protocol is public, so
            the mole can produce protocol-conformant marks at will.
        attack: the manipulation strategy.
        coalition: pooled keys of all colluding moles; defaults to a
            coalition containing only this mole.
    """

    def __init__(
        self,
        ctx: NodeContext,
        scheme: MarkingScheme,
        attack: Attack,
        coalition: Coalition | None = None,
    ):
        self.ctx = ctx
        self.scheme = scheme
        self.attack = attack
        self.coalition = (
            coalition
            if coalition is not None
            else Coalition({ctx.node_id: ctx.key})
        )
        self.packets_seen = 0
        self.packets_dropped = 0

    @property
    def node_id(self) -> int:
        return self.ctx.node_id

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Run the attack on one packet; ``None`` means it was dropped."""
        self.packets_seen += 1
        result = self.attack.apply(self, packet)
        if result is None:
            self.packets_dropped += 1
        return result

    def __repr__(self) -> str:
        return f"ForwardingMole(node={self.node_id}, attack={self.attack!r})"


class MoleReportSource:
    """A source mole that manipulates its own packets before injection.

    The injecting mole runs the same attack machinery as a forwarding mole
    on each packet it fabricates -- e.g. an
    :class:`~repro.adversary.attacks.IdentitySwappingAttack` to pre-mark
    under a partner's identity, or a
    :class:`~repro.adversary.attacks.MarkInsertionAttack` to fake a longer
    upstream path.  An attack that returns ``None`` (drop) is treated as
    "inject unmodified": a source never drops its own attack traffic.

    Args:
        inner: the bogus-report generator.
        mole: a forwarding-mole shell holding the attack and key material
            (its ``node_id`` should match ``inner``'s).
    """

    def __init__(self, inner: ReportSource, mole: ForwardingMole):
        if inner.node_id != mole.node_id:
            raise ValueError(
                f"source node {inner.node_id} and mole node {mole.node_id} differ"
            )
        self.inner = inner
        self.mole = mole

    @property
    def node_id(self) -> int:
        return self.inner.node_id

    def next_packet(self, timestamp: int) -> MarkedPacket:
        """Fabricate one report and run the attack over it before injection."""
        packet = self.inner.next_packet(timestamp)
        manipulated = self.mole.attack.apply(self.mole, packet)
        return manipulated if manipulated is not None else packet


class ReplayingSource:
    """A source mole replaying captured legitimate packets (Section 7).

    Replayed packets carry stale-but-valid marks from the original path, so
    naive traceback would chase the original (innocent) route.  The paper's
    countermeasures -- duplicate suppression and one-time sequence numbers
    -- are exercised against this source in the filtering tests.

    Args:
        node_id: the replaying mole.
        captured: packets previously overheard (with their marks).
        rng: choice of which capture to replay each time.
    """

    def __init__(
        self,
        node_id: int,
        captured: Sequence[MarkedPacket],
        rng: random.Random,
    ):
        if not captured:
            raise ValueError("need at least one captured packet to replay")
        self.node_id = node_id
        self._captured = list(captured)
        self._rng = rng
        self.replays = 0

    def next_packet(self, timestamp: int) -> MarkedPacket:
        """Replay one captured packet, stale marks and timestamp included."""
        self.replays += 1
        # Replays are byte-identical to the capture: the mole cannot
        # re-stamp the timestamp without invalidating the captured marks.
        return self._rng.choice(self._captured)
