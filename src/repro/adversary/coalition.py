"""Mole coalitions: shared compromised key material.

Compromised nodes "can not only share their secret keys, but also
manipulate packets in a coordinated manner" (Section 1).  A
:class:`Coalition` is the shared state: every member knows every other
member's ID and key, which enables identity swapping (attack 7) and
coordinated selective dropping.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["Coalition"]


class Coalition:
    """The set of compromised nodes and their pooled keys.

    Args:
        member_keys: mapping of compromised node ID to that node's secret
            key (as extracted from the captured hardware).
    """

    def __init__(self, member_keys: Mapping[int, bytes]):
        if not member_keys:
            raise ValueError("a coalition needs at least one mole")
        self._keys = dict(member_keys)

    @property
    def mole_ids(self) -> frozenset[int]:
        """IDs of all compromised nodes."""
        return frozenset(self._keys)

    def key_of(self, node_id: int) -> bytes:
        """The compromised key of a coalition member.

        Raises:
            KeyError: if the node is not compromised (moles do *not* hold
                keys of uncompromised nodes -- the security of PNM rests on
                exactly this).
        """
        try:
            return self._keys[node_id]
        except KeyError:
            raise KeyError(
                f"node {node_id} is not in the coalition; moles cannot use "
                f"keys of uncompromised nodes"
            ) from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return f"Coalition(moles={sorted(self._keys)})"
