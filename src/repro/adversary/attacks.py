"""The Section 2.2 attack taxonomy as composable strategies.

Each attack transforms a packet at a forwarding mole.  The mole gives the
attack access to its identity, the deployed marking scheme (attackers know
the protocol), its own compromised key, and the coalition's pooled keys.
Attacks return the packet to forward, or ``None`` to drop it.

Design note: attacks manipulate the *structured* mark list rather than raw
bytes, which is equivalent power-wise -- field lengths are public, so a
mole can parse any packet -- and keeps manipulations explicit.  Raw-bit
tampering is represented by :class:`MarkAlteringAttack` (flip bytes in a
mark) and :class:`UnprotectedBitAlteringAttack` (Theorem 3's surgical
variant against under-protective schemes).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

from repro.marking.base import NodeContext
from repro.packets.marks import Mark
from repro.packets.packet import MarkedPacket

__all__ = [
    "Attack",
    "HonestBehaviorAttack",
    "NoMarkAttack",
    "MarkInsertionAttack",
    "MarkRemovalAttack",
    "TargetedMarkRemovalAttack",
    "MarkReorderingAttack",
    "MarkAlteringAttack",
    "SelectiveDroppingAttack",
    "IdentitySwappingAttack",
    "UnprotectedBitAlteringAttack",
    "CompositeAttack",
]


class Attack(abc.ABC):
    """A forwarding mole's packet manipulation strategy."""

    @abc.abstractmethod
    def apply(self, mole: "ForwardingMole", packet: MarkedPacket) -> MarkedPacket | None:
        """Transform ``packet`` at ``mole``; ``None`` drops it."""

    def __repr__(self) -> str:
        return type(self).__name__


class HonestBehaviorAttack(Attack):
    """Control strategy: behave exactly like an honest forwarder."""

    def apply(self, mole, packet):
        return mole.scheme.on_forward(mole.ctx, packet)


class NoMarkAttack(Attack):
    """Attack 1: forward without leaving any mark.

    Against nested marking this only moves the traceback stop to the mole's
    next marking downstream neighbor -- still within one hop of the mole.
    """

    def apply(self, mole, packet):
        return packet


class MarkInsertionAttack(Attack):
    """Attack 2: insert fabricated marks.

    Two fabrication modes, applied per inserted mark:

    * ``claim_ids`` -- craft a mark *claiming* an innocent node's ID, built
      with the mole's own key (the mole has no other keys).  Under
      unauthenticated PPM such a mark is accepted and frames the victim;
      under any MAC'd scheme it cannot verify.
    * otherwise -- pure garbage bytes from the mole's RNG.

    Args:
        num_fake: how many marks to insert.
        claim_ids: IDs to claim round-robin; ``None`` for garbage marks.
        also_mark: whether the mole additionally leaves its own valid mark
            after the fakes.
        position: ``"append"`` adds the fakes after the existing marks (the
            mole's natural slot); ``"prepend"`` splices them in front of
            all existing marks, making the victim *appear most upstream* --
            the framing variant that defeats unauthenticated marking, while
            under nested marking it merely invalidates the prefix.
    """

    def __init__(
        self,
        num_fake: int = 1,
        claim_ids: Sequence[int] | None = None,
        also_mark: bool = False,
        position: str = "append",
    ):
        if num_fake < 1:
            raise ValueError(f"num_fake must be >= 1, got {num_fake}")
        if position not in ("append", "prepend"):
            raise ValueError(
                f"position must be 'append' or 'prepend', got {position!r}"
            )
        self.num_fake = num_fake
        self.claim_ids = list(claim_ids) if claim_ids is not None else None
        self.also_mark = also_mark
        self.position = position

    def _fabricate(self, mole, packet, k: int) -> Mark:
        fmt = mole.scheme.fmt
        if self.claim_ids:
            victim = self.claim_ids[k % len(self.claim_ids)]
            return mole.scheme.make_mark(mole.ctx, packet, claimed_id=victim)
        return Mark(
            id_field=mole.ctx.rng.randbytes(fmt.id_len),
            mac=mole.ctx.rng.randbytes(fmt.mac_len),
        )

    def apply(self, mole, packet):
        if self.position == "prepend":
            fakes = tuple(
                self._fabricate(mole, packet.with_marks(()), k)
                for k in range(self.num_fake)
            )
            packet = packet.with_marks(fakes + packet.marks)
        else:
            for k in range(self.num_fake):
                packet = packet.with_mark(self._fabricate(mole, packet, k))
        if self.also_mark:
            packet = packet.with_mark(mole.scheme.make_mark(mole.ctx, packet))
        return packet


class MarkRemovalAttack(Attack):
    """Attack 3: strip marks left by upstream nodes.

    Args:
        num_remove: how many of the *most upstream* marks to remove;
            ``None`` removes every existing mark.
        also_mark: whether the mole then leaves its own valid mark over the
            stripped packet (making the packet look like a fresh short
            path -- the strongest framing variant against AMS).
    """

    def __init__(self, num_remove: int | None = None, also_mark: bool = False):
        if num_remove is not None and num_remove < 1:
            raise ValueError(f"num_remove must be >= 1 or None, got {num_remove}")
        self.num_remove = num_remove
        self.also_mark = also_mark

    def apply(self, mole, packet):
        if self.num_remove is None:
            kept: tuple[Mark, ...] = ()
        else:
            kept = packet.marks[self.num_remove :]
        packet = packet.with_marks(kept)
        if self.also_mark:
            packet = packet.with_mark(mole.scheme.make_mark(mole.ctx, packet))
        return packet


class TargetedMarkRemovalAttack(Attack):
    """Attack 3 (targeted variant): remove specific nodes' marks by ID.

    This is the paper's Section 3 example verbatim: "if mole X removes all
    marks from S and node 1, the sink will trace back to innocent node 2".
    Targeting requires readable IDs, so against anonymous-ID schemes (PNM)
    the attack degenerates to forwarding unchanged.

    Args:
        remove_ids: plain node IDs whose marks are stripped.
    """

    def __init__(self, remove_ids: Sequence[int]):
        if not remove_ids:
            raise ValueError("remove_ids must not be empty")
        self.remove_ids = frozenset(remove_ids)

    def apply(self, mole, packet):
        fmt = mole.scheme.fmt
        if fmt.anonymous:
            return packet  # cannot tell whose marks these are
        kept = tuple(
            mark
            for mark in packet.marks
            if not (
                mark.matches_format(fmt)
                and fmt.decode_node_id(mark.id_field) in self.remove_ids
            )
        )
        if len(kept) == len(packet.marks):
            return packet
        return packet.with_marks(kept)


class MarkReorderingAttack(Attack):
    """Attack 4: permute the existing marks.

    Args:
        mode: ``"reverse"`` or ``"shuffle"`` (mole-RNG-driven).
    """

    def __init__(self, mode: str = "reverse"):
        if mode not in ("reverse", "shuffle"):
            raise ValueError(f"mode must be 'reverse' or 'shuffle', got {mode!r}")
        self.mode = mode

    def apply(self, mole, packet):
        marks = list(packet.marks)
        if len(marks) < 2:
            return packet
        if self.mode == "reverse":
            marks.reverse()
        else:
            mole.ctx.rng.shuffle(marks)
        return packet.with_marks(tuple(marks))


class MarkAlteringAttack(Attack):
    """Attack 5: corrupt bytes of existing marks, making them invalid.

    Args:
        target: which mark to corrupt -- ``"first"`` (most upstream),
            ``"last"``, or ``"all"``.
        field: ``"mac"`` or ``"id"``.
    """

    def __init__(self, target: str = "first", field: str = "mac"):
        if target not in ("first", "last", "all"):
            raise ValueError(f"target must be first/last/all, got {target!r}")
        if field not in ("mac", "id"):
            raise ValueError(f"field must be 'mac' or 'id', got {field!r}")
        self.target = target
        self.field = field

    def _corrupt(self, mark: Mark) -> Mark:
        if self.field == "mac" and mark.mac:
            flipped = bytes([mark.mac[0] ^ 0xFF]) + mark.mac[1:]
            return Mark(id_field=mark.id_field, mac=flipped)
        flipped = bytes([mark.id_field[0] ^ 0xFF]) + mark.id_field[1:]
        return Mark(id_field=flipped, mac=mark.mac)

    def apply(self, mole, packet):
        marks = list(packet.marks)
        if not marks:
            return packet
        if self.target == "all":
            marks = [self._corrupt(m) for m in marks]
        elif self.target == "first":
            marks[0] = self._corrupt(marks[0])
        else:
            marks[-1] = self._corrupt(marks[-1])
        return packet.with_marks(tuple(marks))


class SelectiveDroppingAttack(Attack):
    """Attack 6: drop exactly the packets whose marks would implicate you.

    The mole reads the plain-text ID list and drops any packet carrying a
    mark from a node in ``drop_if_marked_by`` (e.g. every node upstream of
    the innocent node it wants the trace to stop at).  Against PNM the IDs
    are anonymous and per-message, so the mole cannot evaluate its
    predicate; it forwards everything -- precisely the paper's argument
    for anonymizing IDs.

    Args:
        drop_if_marked_by: plain node IDs whose marks trigger a drop.
    """

    def __init__(self, drop_if_marked_by: Sequence[int]):
        if not drop_if_marked_by:
            raise ValueError("drop_if_marked_by must not be empty")
        self.drop_if_marked_by = frozenset(drop_if_marked_by)

    def apply(self, mole, packet):
        fmt = mole.scheme.fmt
        if fmt.anonymous:
            # IDs are anonymized per message; the predicate is unreadable.
            return packet
        for mark in packet.marks:
            if not mark.matches_format(fmt):
                continue
            if fmt.decode_node_id(mark.id_field) in self.drop_if_marked_by:
                return None
        return packet


class IdentitySwappingAttack(Attack):
    """Attack 7: leave *valid* marks under a colluding partner's identity.

    Both moles hold both keys, so each can mark as either identity.  Over
    many packets the sink observes contradictory orders (S before X and X
    before S), creating a loop in the reconstructed route (Figure 2).  PNM
    detects the loop and localizes to its attachment point.

    Args:
        partner_id: the other mole whose identity is borrowed.
        swap_prob: probability of marking as the partner instead of self.
        mark_prob: probability of marking at all; ``None`` follows the
            deployed scheme's marking probability (blend in with honest
            traffic).
    """

    def __init__(
        self,
        partner_id: int,
        swap_prob: float = 0.5,
        mark_prob: float | None = None,
    ):
        if not 0.0 <= swap_prob <= 1.0:
            raise ValueError(f"swap_prob must be in [0, 1], got {swap_prob}")
        if mark_prob is not None and not 0.0 <= mark_prob <= 1.0:
            raise ValueError(f"mark_prob must be in [0, 1], got {mark_prob}")
        self.partner_id = partner_id
        self.swap_prob = swap_prob
        self.mark_prob = mark_prob

    def apply(self, mole, packet):
        mark_prob = (
            self.mark_prob if self.mark_prob is not None else mole.scheme.mark_prob
        )
        if mole.ctx.rng.random() >= mark_prob:
            return packet
        if mole.ctx.rng.random() < self.swap_prob:
            partner_ctx = NodeContext(
                node_id=self.partner_id,
                key=mole.coalition.key_of(self.partner_id),
                provider=mole.ctx.provider,
                rng=mole.ctx.rng,
            )
            return packet.with_mark(mole.scheme.make_mark(partner_ctx, packet))
        return packet.with_mark(mole.scheme.make_mark(mole.ctx, packet))


class UnprotectedBitAlteringAttack(Attack):
    """Theorem 3's attack: alter only bytes later marks do not protect.

    Against a scheme whose MACs cover fewer fields than nested marking
    (e.g. :class:`~repro.marking.weakened.PartiallyNestedMarking`, which
    omits previous MAC bytes), corrupting exactly the unprotected bytes
    invalidates the victim's mark while every downstream MAC stays valid --
    so the sink traces to an innocent node and cannot continue (the scheme
    is not consecutive traceable).  Against full nested marking the very
    same manipulation invalidates all downstream MACs and the trace stops
    next to the mole.

    The mole then marks validly itself, maximizing how far downstream the
    bogus evidence is trusted.

    Args:
        victim_index: which existing mark to corrupt (0 = most upstream).
        also_mark: whether the mole leaves its own valid mark afterwards.
    """

    def __init__(self, victim_index: int = 0, also_mark: bool = True):
        if victim_index < 0:
            raise ValueError(f"victim_index must be >= 0, got {victim_index}")
        self.victim_index = victim_index
        self.also_mark = also_mark

    def apply(self, mole, packet):
        marks = list(packet.marks)
        if self.victim_index < len(marks):
            victim = marks[self.victim_index]
            if victim.mac:
                corrupted = Mark(
                    id_field=victim.id_field,
                    mac=bytes([victim.mac[0] ^ 0xFF]) + victim.mac[1:],
                )
                marks[self.victim_index] = corrupted
        packet = packet.with_marks(tuple(marks))
        if self.also_mark:
            packet = packet.with_mark(mole.scheme.make_mark(mole.ctx, packet))
        return packet


class CompositeAttack(Attack):
    """Apply several attacks in sequence (coordinated manipulation)."""

    def __init__(self, attacks: Sequence[Attack]):
        if not attacks:
            raise ValueError("composite needs at least one attack")
        self.attacks = list(attacks)

    def apply(self, mole, packet):
        for attack in self.attacks:
            result = attack.apply(mole, packet)
            if result is None:
                return None
            packet = result
        return packet

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.attacks)
        return f"CompositeAttack([{inner}])"
