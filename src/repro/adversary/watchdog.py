"""Watchdog-layer adversaries: framing and report suppression.

The overhearing layer (:mod:`repro.watchdog`) creates two attack surfaces
of its own, both named by the Algebraic Watchdog papers and both required
to be survivable:

* **Framing** (:class:`LyingWatchdog`): a compromised node fabricates
  accusations against an honest neighbor.  Accusations carry no proof --
  they are claims -- so the defense is sink-side: the fusion rule
  (:func:`repro.faults.attribution.fused_accusation_report`) confirms an
  accusation only against nodes PNM evidence independently suspects.  A
  frame against a node with no tamper or drop evidence nearby is
  discarded, keeping the honest false-accusation rate at exactly 0.0.
* **Watched/watcher collusion** (:class:`AccusationSuppressor`): a mole
  on the relay path drops accusations that implicate its partners.  The
  watchdog's accusations travel hop-by-hop like any packet, so a
  colluding relay can silence them; detection then degrades gracefully
  to PNM's own traceback rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LyingWatchdog", "AccusationSuppressor"]


@dataclass(frozen=True)
class LyingWatchdog:
    """A compromised watcher that frames an honest neighbor.

    The liar abandons honest monitoring entirely (it is a mole; its
    observations serve the coalition) and instead emits a fabricated
    accusation against ``victim`` once it has overheard
    ``after_overhears`` transmissions -- mimicking the cadence of a real
    detection so the sink cannot filter it on timing alone.

    Attributes:
        watcher: the compromised node emitting the frame.
        victim: the honest neighbor it accuses.
        after_overhears: overheard transmissions before the frame fires.
    """

    watcher: int
    victim: int
    after_overhears: int = 3

    def __post_init__(self) -> None:
        if self.watcher == self.victim:
            raise ValueError("a lying watchdog cannot frame itself")
        if self.after_overhears < 1:
            raise ValueError(
                f"after_overhears must be >= 1, got {self.after_overhears}"
            )


@dataclass(frozen=True)
class AccusationSuppressor:
    """A colluding relay that silences accusations against its partners.

    Attributes:
        node: the relay node doing the suppressing.
        protects: accused IDs whose accusations it drops (its coalition).
    """

    node: int
    protects: frozenset[int]

    def __post_init__(self) -> None:
        if not self.protects:
            raise ValueError("protects must not be empty")
