"""``SinkServer``: the networked front door of the ingest pipeline.

An asyncio TCP server that reads frames (:mod:`repro.wire.frames`), feeds
decoded batches into an existing
:class:`~repro.service.SinkIngestService`, and answers each batch with
the sink's current verdict.  The transport adds no verification logic of
its own: a batch that reaches the service is byte-for-byte the packets
the client encoded, so the server's verdicts are identical to feeding
the same packets to the sink in-process (the loopback parity test pins
this).

Backpressure is the service's queue, surfaced on the wire: when the
queue cannot take a batch whole, the reply is an ERROR frame with code
``BACKPRESSURE`` and the server's retry-after hint instead of a verdict.
Admission is all-or-nothing (:meth:`SinkIngestService.submit_batch`):
a BACKPRESSURE reply guarantees *nothing* from the batch was ingested,
so clients may safely resend the batch verbatim -- the same
reject-before-submit contract ``WRONG_SHARD`` rejections follow.

Verification runs inline in the event loop, one batch at a time.  That
is deliberate: the service's own :class:`~repro.service.pool.VerificationPool`
parallelizes *within* a batch, and the sink's merge step is serial by
contract anyway, so a second event-loop thread would buy nothing but
reordering hazards.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import SpanContext, report_key
from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.service.ingest import SinkIngestService
from repro.wire.errors import ErrorCode, WireError
from repro.wire.frames import Frame, FrameDecoder, FrameType, encode_frame
from repro.wire.messages import (
    WireBatch,
    WireErrorInfo,
    WireVerdict,
    decode_batch,
    decode_report,
    encode_error,
    encode_summary,
    encode_telemetry,
    encode_verdict,
)

__all__ = ["SinkServer", "DEFAULT_RETRY_AFTER_MS"]

#: Retry hint sent with BACKPRESSURE errors unless overridden.
DEFAULT_RETRY_AFTER_MS = 50

_READ_CHUNK = 64 * 1024


class SinkServer:
    """Serve a :class:`~repro.service.SinkIngestService` over TCP.

    Args:
        service: the ingest pipeline to feed; its queue provides the
            backpressure semantics, its sink provides the verdicts.
        fmt: the deployment's mark layout.  Batches declaring any other
            layout are rejected with a single clean error instead of
            misparsing every mark boundary.
        host / port: bind address; port 0 picks a free port (see
            :attr:`port` after :meth:`start`).
        retry_after_ms: hint carried by BACKPRESSURE error replies.
        owns: optional ownership predicate for cluster shards.  When set,
            a batch containing any packet for which ``owns(packet)`` is
            False is rejected whole with a ``WRONG_SHARD`` error *before*
            anything is submitted -- the sender's ring view is stale and
            must re-route the entire batch, so partial ingest would
            double-count packets after the resend.
        obs: observability provider; ``None`` inherits the service's, so
            wire counters land in the same registry as ingest counters.
            Adds ``wire_frames_rx/tx_total`` (labeled by frame type),
            byte counters, a ``wire_decode_seconds`` histogram, and --
            when tracing -- a ``wire_rx`` span per packet chained into
            the packet's existing trace via its report key.
    """

    def __init__(
        self,
        service: SinkIngestService,
        fmt: MarkFormat,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_after_ms: int = DEFAULT_RETRY_AFTER_MS,
        owns: Callable[[MarkedPacket], bool] | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.service = service
        self.fmt = fmt
        self.host = host
        self._requested_port = port
        self.retry_after_ms = retry_after_ms
        self.owns = owns
        self.obs = service.obs if obs is None else resolve_provider(obs)
        self._server: asyncio.base_events.Server | None = None
        self._conn_seq = 0
        self._conn_writers: dict[int, asyncio.StreamWriter] = {}
        self.connections_active = 0
        self.connections_total = 0
        self.batches_ok = 0
        self.batches_rejected = 0
        self.batches_wrong_shard = 0
        self.packets_shed = 0
        self.decode_errors = 0

    # Lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("SinkServer already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        if self._server is None:
            raise RuntimeError("SinkServer not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def wait_idle(self, polls: int = 1000) -> bool:
        """Yield until every connection handler has finished.

        Returns:
            True when idle; False if handlers were still live after
            ``polls`` scheduling turns (shutdown proceeds regardless).
        """
        for _ in range(polls):
            if self.connections_active == 0:
                return True
            await asyncio.sleep(0.001)
        return self.connections_active == 0

    async def close(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self.wait_idle()
            await self._server.wait_closed()
            self._server = None

    async def abort(self) -> None:
        """Crash-stop: sever every live connection, then close.

        Unlike :meth:`close` -- which stops *accepting* but lets handlers
        drain -- this abruptly aborts each connection's transport, the
        way a crashed shard would look to its peers: mid-stream resets,
        no farewell frames.  The cluster churn harness uses it to make a
        shard failure observable to routers as a connection error.
        """
        for conn_id in sorted(self._conn_writers):
            writer = self._conn_writers.get(conn_id)
            if writer is None:
                continue
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._server is not None:
            self._server.close()
            await self.wait_idle()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "SinkServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.close()

    # Connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_seq += 1
        conn_id = self._conn_seq
        self._conn_writers[conn_id] = writer
        self.connections_total += 1
        self.connections_active += 1
        self.obs.inc("wire_connections_total")
        self.obs.set_gauge("wire_connections_active", self.connections_active)
        tracer = self.obs.tracer
        conn_span = (
            tracer.start("wire_connection", conn=conn_id)
            if tracer is not None
            else None
        )
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    decoder.finish()
                    break
                for frame in decoder.feed(chunk):
                    self.obs.inc(
                        "wire_frames_rx_total", frame=frame.frame_type.name
                    )
                    self.obs.inc(
                        "wire_bytes_rx_total",
                        frame.wire_len,
                        frame=frame.frame_type.name,
                    )
                    keep_open = await self._dispatch(frame, writer, conn_id)
                    if not keep_open:
                        return
        except WireError as exc:
            self.decode_errors += 1
            self.obs.inc("wire_decode_errors_total", kind=type(exc).__name__)
            await self._send_error(
                writer, WireErrorInfo(code=exc.code, message=str(exc))
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            self._conn_writers.pop(conn_id, None)
            self.connections_active -= 1
            self.obs.set_gauge("wire_connections_active", self.connections_active)
            if tracer is not None and conn_span is not None:
                tracer.finish(conn_span)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Shutdown may cancel the handler while the transport
                # drains; the connection is going away either way.
                pass

    async def _dispatch(
        self, frame: Frame, writer: asyncio.StreamWriter, conn_id: int
    ) -> bool:
        """Handle one frame; returns False when the connection must close."""
        if frame.frame_type is FrameType.PING:
            await self._send(writer, FrameType.PING, frame.payload)
            return True
        if frame.frame_type in (FrameType.BATCH, FrameType.REPORT):
            with self.obs.timer("wire_decode_seconds"):
                batch = (
                    decode_batch(frame.payload)
                    if frame.frame_type is FrameType.BATCH
                    else decode_report(frame.payload)
                )
            trace = (
                SpanContext(
                    trace_id=frame.trace.trace_id, span_id=frame.trace.span_id
                )
                if frame.trace is not None
                else None
            )
            await self._ingest_batch(batch, writer, conn_id, trace=trace)
            return True
        if frame.frame_type is FrameType.SUMMARY:
            # Evidence snapshot: flush so the summary covers every batch
            # acknowledged on this connection, then encode the sink state.
            self.service.flush()
            evidence = self.service.sink.evidence()
            await self._send(
                writer, FrameType.SUMMARY, encode_summary(evidence)
            )
            return True
        if frame.frame_type is FrameType.TELEMETRY:
            # Metrics snapshot: refresh derived gauges, then ship the
            # registry (an empty snapshot when observability is off).
            # A pure read of the obs side -- never touches sink state.
            self.service.publish_stats()
            registry = self.obs.registry
            snapshot = (
                registry.snapshot()
                if registry is not None
                else {"metrics": []}
            )
            await self._send(
                writer, FrameType.TELEMETRY, encode_telemetry(snapshot)
            )
            return True
        # VERDICT and ERROR only flow sink -> client; anything else a
        # client sends is a protocol violation.
        self.obs.inc("wire_protocol_violations_total")
        await self._send_error(
            writer,
            WireErrorInfo(
                code=ErrorCode.BAD_FRAME,
                message=f"unexpected {frame.frame_type.name} frame from client",
            ),
        )
        return False

    async def _ingest_batch(
        self,
        batch: WireBatch,
        writer: asyncio.StreamWriter,
        conn_id: int,
        trace: SpanContext | None = None,
    ) -> None:
        if batch.fmt != self.fmt:
            self.batches_rejected += 1
            await self._send_error(
                writer,
                WireErrorInfo(
                    code=ErrorCode.BAD_FRAME,
                    message=(
                        f"mark format mismatch: batch declares {batch.fmt}, "
                        f"deployment uses {self.fmt}"
                    ),
                ),
            )
            return
        if self.owns is not None:
            foreign = sum(
                1 for packet in batch.packets if not self.owns(packet)
            )
            if foreign:
                self.batches_rejected += 1
                self.batches_wrong_shard += 1
                self.obs.inc("wire_batches_wrong_shard_total")
                await self._send_error(
                    writer,
                    WireErrorInfo(
                        code=ErrorCode.WRONG_SHARD,
                        message=(
                            f"{foreign} of {len(batch.packets)} packets "
                            "belong to another shard; re-route the batch"
                        ),
                    ),
                )
                return
        tracer = self.obs.tracer
        if tracer is not None:
            for packet in batch.packets:
                key = report_key(packet.report)
                # A frame-borne context adopts the sender's trace: bind
                # it under the report key first, so the wire_rx event --
                # and every downstream queue/verify/verdict span chained
                # on the same key -- joins the client's trace id.
                if trace is not None:
                    tracer.bind(key, trace)
                tracer.event(key, "wire_rx", conn=conn_id)
        # All-or-nothing admission: a BACKPRESSURE reply must guarantee
        # the queue took nothing, because clients retry the whole batch
        # verbatim -- any accepted prefix left queued here would be
        # ingested a second time by the resend.
        if not self.service.submit_batch(batch.packets, batch.delivering_node):
            self.batches_rejected += 1
            self.packets_shed += len(batch.packets)
            self.obs.inc("wire_batches_shed_total")
            await self._send_error(
                writer,
                WireErrorInfo(
                    code=ErrorCode.BACKPRESSURE,
                    retry_after_ms=self.retry_after_ms,
                    message=(
                        f"queue shed all {len(batch.packets)} packets; "
                        "retry the whole batch"
                    ),
                ),
            )
            return
        self.service.flush()
        verdict = WireVerdict.from_verdict(self.service.sink.verdict())
        self.batches_ok += 1
        await self._send(writer, FrameType.VERDICT, encode_verdict(verdict))

    # Frame output ------------------------------------------------------------

    async def _send(
        self, writer: asyncio.StreamWriter, frame_type: FrameType, payload: bytes
    ) -> None:
        data = encode_frame(frame_type, payload)
        self.obs.inc("wire_frames_tx_total", frame=frame_type.name)
        self.obs.inc("wire_bytes_tx_total", len(data), frame=frame_type.name)
        writer.write(data)
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, info: WireErrorInfo
    ) -> None:
        try:
            await self._send(writer, FrameType.ERROR, encode_error(info))
        except (ConnectionError, OSError):
            pass  # best effort: the peer may already be gone

    def stats(self) -> dict[str, int]:
        """JSON-ready transport counters (service stats live on the service)."""
        return {
            "connections_total": self.connections_total,
            "connections_active": self.connections_active,
            "batches_ok": self.batches_ok,
            "batches_rejected": self.batches_rejected,
            "batches_wrong_shard": self.batches_wrong_shard,
            "packets_shed": self.packets_shed,
            "decode_errors": self.decode_errors,
        }

    def __repr__(self) -> str:
        state = "stopped" if self._server is None else f"port {self.port}"
        return (
            f"SinkServer({state}, conns={self.connections_active}, "
            f"batches={self.batches_ok})"
        )
