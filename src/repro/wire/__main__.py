"""``python -m repro.wire``: alias for the ``pnm-serve`` CLI."""

import sys

from repro.wire.cli import main

if __name__ == "__main__":
    sys.exit(main())
