"""Primitive wire encodings: varints and self-delimiting packets.

Everything here is strict by construction:

* :func:`read_varint` never over-reads, caps the encoding at 64 bits, and
  rejects non-canonical (padded) encodings so every value has exactly one
  byte representation -- a frame's bytes are a pure function of its
  content, which the CRC trailer and the dedup/caching layers rely on;
* :func:`decode_packet` carries the mark count explicitly, so trailing
  garbage after the last mark is always rejected, even when it happens to
  be mark-aligned (see :meth:`repro.packets.packet.MarkedPacket.decode`);
* every failure is a typed :class:`~repro.wire.errors.WireError`; callers
  never see ``struct.error`` or a bare ``ValueError`` from these decoders.
"""

from __future__ import annotations

from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.wire.errors import BadFrameError, OversizedError, TruncatedError

__all__ = [
    "MAX_VARINT_BYTES",
    "write_varint",
    "read_varint",
    "encode_packet",
    "decode_packet",
    "encode_mark_format",
    "decode_mark_format",
    "MARK_FORMAT_LEN",
]

#: A varint value fits in u64, hence at most 10 encoded bytes.
MAX_VARINT_BYTES = 10

_U64_MAX = (1 << 64) - 1

#: Encoded :class:`MarkFormat`: ``id_len u8 | mac_len u8 | flags u8``.
MARK_FORMAT_LEN = 3

_FLAG_ANONYMOUS = 0x01
_FLAG_ALGEBRAIC = 0x02
_KNOWN_FORMAT_FLAGS = _FLAG_ANONYMOUS | _FLAG_ALGEBRAIC


def write_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if not 0 <= value <= _U64_MAX:
        raise ValueError(f"varint value out of u64 range: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an unsigned LEB128 varint from ``data`` at ``offset``.

    Returns:
        ``(value, new_offset)``.

    Raises:
        TruncatedError: if the buffer ends mid-varint.
        BadFrameError: if the encoding exceeds 64 bits or is non-canonical
            (a padded encoding of a smaller value).
    """
    value = 0
    shift = 0
    consumed = 0
    while True:
        if offset + consumed >= len(data):
            raise TruncatedError(
                f"buffer ended after {consumed} varint byte(s)"
            )
        byte = data[offset + consumed]
        consumed += 1
        if consumed > MAX_VARINT_BYTES:
            raise BadFrameError("varint longer than 10 bytes")
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if byte == 0 and consumed > 1:
                raise BadFrameError("non-canonical varint (padded encoding)")
            if value > _U64_MAX:
                raise BadFrameError(f"varint value exceeds u64: {value}")
            return value, offset + consumed
        shift += 7


def encode_packet(packet: MarkedPacket) -> bytes:
    """Self-delimiting packet bytes: ``varint(num_marks) | packet wire``.

    The explicit mark count is what makes the decode side strict: the
    report's own length field delimits the report, and the count delimits
    the mark list, so every byte of the encoding is accounted for.
    """
    return write_varint(packet.num_marks) + packet.wire()


def decode_packet(data: bytes, fmt: MarkFormat) -> MarkedPacket:
    """Parse :func:`encode_packet` output; the whole buffer must be used.

    Raises:
        TruncatedError: if the buffer ends early.
        BadFrameError: on malformed counts, trailing bytes, or any report
            or mark that does not parse.
    """
    try:
        num_marks, offset = read_varint(data)
    except TruncatedError:
        raise TruncatedError("buffer ended inside the mark count") from None
    if num_marks > len(data):
        # Cheap upper bound (each mark is >= 1 byte): reject absurd counts
        # before handing a huge expectation to the packet decoder.
        raise OversizedError(
            f"mark count {num_marks} exceeds buffer size {len(data)}"
        )
    body = data[offset:]
    try:
        return MarkedPacket.decode(body, fmt, num_marks=num_marks)
    except ValueError as exc:
        message = str(exc)
        if "too short" in message:
            raise TruncatedError(message) from None
        raise BadFrameError(message) from None


def encode_mark_format(fmt: MarkFormat) -> bytes:
    """Encode the deployment's mark layout (3 bytes, see docs/wire.md)."""
    if fmt.id_len > 0xFF or fmt.mac_len > 0xFF:
        raise ValueError(f"mark format fields exceed one byte: {fmt}")
    flags = 0
    if fmt.anonymous:
        flags |= _FLAG_ANONYMOUS
    if fmt.algebraic:
        flags |= _FLAG_ALGEBRAIC
    return bytes((fmt.id_len, fmt.mac_len, flags))


def decode_mark_format(data: bytes, offset: int = 0) -> tuple[MarkFormat, int]:
    """Decode :func:`encode_mark_format` output at ``offset``.

    Returns:
        ``(fmt, new_offset)``.

    Raises:
        TruncatedError: if fewer than 3 bytes remain.
        BadFrameError: on invalid field values or unknown flag bits.
    """
    if len(data) - offset < MARK_FORMAT_LEN:
        raise TruncatedError("buffer too short for a mark format")
    id_len, mac_len, flags = data[offset : offset + MARK_FORMAT_LEN]
    if flags & ~_KNOWN_FORMAT_FLAGS:
        raise BadFrameError(f"unknown mark-format flag bits: {flags:#04x}")
    try:
        fmt = MarkFormat(
            id_len=id_len,
            mac_len=mac_len,
            anonymous=bool(flags & _FLAG_ANONYMOUS),
            algebraic=bool(flags & _FLAG_ALGEBRAIC),
        )
    except ValueError as exc:
        raise BadFrameError(str(exc)) from None
    return fmt, offset + MARK_FORMAT_LEN
