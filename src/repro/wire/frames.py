"""Frames: the unit of exchange on a sink connection.

Wire grammar (all integers big-endian unless they are varints)::

    frame   := version type length payload crc
    version := u8                      -- PROTOCOL_VERSION (currently 1)
    type    := u8                      -- FrameType member
    length  := varint                  -- payload byte count
    payload := length bytes            -- grammar depends on type
    crc     := u32be                   -- CRC32 over version|type|length|payload

The CRC covers the header too, so a flipped type byte or a corrupted
length is caught like corrupted payload bytes.  The version byte is
checked *before* the CRC: a peer speaking a future version may legally
use a different trailer, so the only thing this endpoint asserts about
such a frame is that it cannot parse it
(:class:`~repro.wire.errors.BadVersionError`).

Version 2 is the *trace-context* extension: a v2 frame is a v1 frame
whose payload is prefixed with a :class:`WireTraceContext` block
(``varint(len) trace_id utf8 | varint(len) span_id utf8``), carrying the
distributed-tracing identity of the request so one trace id can follow a
report across process hops (client -> shard -> coordinator).  The
extension is optional end to end: context-free frames always encode as
byte-identical v1, so a v1-only decoder interoperates with any peer that
simply never attaches context, and a v2 decoder accepts both versions.

:class:`FrameDecoder` is the incremental form the asyncio endpoints use:
feed it whatever the socket produced, take whole frames out, and call
:meth:`FrameDecoder.finish` at EOF so a mid-frame disconnect surfaces as
a :class:`~repro.wire.errors.TruncatedError` instead of silence.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from repro.wire.codec import MAX_VARINT_BYTES, read_varint, write_varint
from repro.wire.errors import (
    BadCrcError,
    BadFrameError,
    BadVersionError,
    OversizedError,
    TruncatedError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "TRACE_PROTOCOL_VERSION",
    "MAX_PAYLOAD_LEN",
    "MAX_TRACE_ID_LEN",
    "FrameType",
    "Frame",
    "WireTraceContext",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
]

#: The base protocol version this implementation speaks (see docs/wire.md).
PROTOCOL_VERSION = 1

#: The trace-context extension: v1 framing with a trace block prefixed to
#: the payload.  Only emitted when a frame actually carries context.
TRACE_PROTOCOL_VERSION = 2

#: Hard cap on a frame's payload; larger declarations are rejected before
#: any buffering happens, so a hostile length cannot balloon memory.
MAX_PAYLOAD_LEN = 4 * 1024 * 1024

#: Cap on each trace/span id string in a v2 trace block.  Real ids are a
#: dozen bytes; the cap only exists so a hostile block cannot smuggle an
#: arbitrary blob past payload accounting.
MAX_TRACE_ID_LEN = 128

_CRC = struct.Struct(">I")


class FrameType(enum.IntEnum):
    """The frame types of the wire protocol."""

    REPORT = 1  #: one marked packet (``delivering | fmt | packet``)
    BATCH = 2  #: many marked packets sharing one delivering node
    VERDICT = 3  #: the sink's current traceback verdict
    PING = 4  #: liveness + version probe; echoed verbatim by the peer
    ERROR = 5  #: typed rejection (``code | retry_after_ms | message``)
    SUMMARY = 6  #: evidence snapshot request/reply (cluster verdict merge)
    TELEMETRY = 7  #: metrics-registry snapshot request/reply (federation)


@dataclass(frozen=True)
class WireTraceContext:
    """Distributed-tracing identity carried by a v2 frame.

    ``trace_id`` names the end-to-end trace a request belongs to and
    ``span_id`` the sender-side span that caused this frame, so the
    receiver can attach its own spans as children.  Both are short,
    non-empty UTF-8 strings (:data:`MAX_TRACE_ID_LEN` bytes each, max).
    """

    trace_id: str
    span_id: str

    def __post_init__(self) -> None:
        for label, value in (("trace_id", self.trace_id), ("span_id", self.span_id)):
            if not value:
                raise ValueError(f"trace context {label} must be non-empty")
            if len(value.encode("utf-8")) > MAX_TRACE_ID_LEN:
                raise ValueError(
                    f"trace context {label} exceeds {MAX_TRACE_ID_LEN} bytes"
                )

    def encode(self) -> bytes:
        """Serialize as ``varint(len) trace_id | varint(len) span_id``."""
        tid = self.trace_id.encode("utf-8")
        sid = self.span_id.encode("utf-8")
        return (
            write_varint(len(tid)) + tid + write_varint(len(sid)) + sid
        )


def _decode_trace_block(payload: bytes) -> tuple[WireTraceContext, bytes]:
    """Split a v2 payload into its trace context and the classic payload.

    Raises:
        BadFrameError: if the trace block is malformed.  Never raises
            TruncatedError -- the frame is already complete at this
            point, so a short block is corruption, not pending input.
    """
    try:
        offset = 0
        ids: list[str] = []
        for label in ("trace_id", "span_id"):
            length, offset = read_varint(payload, offset)
            if length == 0 or length > MAX_TRACE_ID_LEN:
                raise BadFrameError(
                    f"trace context {label} length {length} outside "
                    f"[1, {MAX_TRACE_ID_LEN}]"
                )
            if len(payload) - offset < length:
                raise BadFrameError(
                    f"trace block ends inside {label} "
                    f"(need {length} bytes, have {len(payload) - offset})"
                )
            ids.append(payload[offset : offset + length].decode("utf-8"))
            offset += length
    except BadFrameError:
        raise
    except (TruncatedError, UnicodeDecodeError, ValueError) as exc:
        raise BadFrameError(f"malformed trace block: {exc}") from exc
    return WireTraceContext(trace_id=ids[0], span_id=ids[1]), payload[offset:]


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its type, raw payload bytes, and (for v2
    frames) the trace context the sender attached."""

    frame_type: FrameType
    payload: bytes
    trace: WireTraceContext | None = None

    @property
    def wire_len(self) -> int:
        """Encoded size of this frame in bytes."""
        body_len = len(self.payload)
        if self.trace is not None:
            body_len += len(self.trace.encode())
        return 2 + len(write_varint(body_len)) + body_len + _CRC.size


def encode_frame(
    frame_type: FrameType,
    payload: bytes,
    trace: WireTraceContext | None = None,
) -> bytes:
    """Serialize one frame, CRC trailer included.

    Without ``trace`` the output is a byte-identical v1 frame; with it
    the frame is emitted as v2 with the trace block prefixed to
    ``payload``.

    Raises:
        OversizedError: if the (trace block +) payload exceeds
            :data:`MAX_PAYLOAD_LEN`.
    """
    version = PROTOCOL_VERSION
    body_payload = payload
    if trace is not None:
        version = TRACE_PROTOCOL_VERSION
        body_payload = trace.encode() + payload
    if len(body_payload) > MAX_PAYLOAD_LEN:
        raise OversizedError(
            f"payload of {len(body_payload)} bytes exceeds limit "
            f"{MAX_PAYLOAD_LEN}"
        )
    body = (
        bytes((version, int(frame_type)))
        + write_varint(len(body_payload))
        + body_payload
    )
    return body + _CRC.pack(zlib.crc32(body))


def decode_frame(data: bytes, offset: int = 0) -> tuple[Frame, int]:
    """Decode one frame from ``data`` at ``offset``.

    Accepts v1 (context-free) and v2 (trace-context) frames; the
    returned frame's ``trace`` is ``None`` for v1.

    Returns:
        ``(frame, new_offset)``; bytes past the frame are left for the
        caller (the stream decoder loops; one-shot callers should check
        ``new_offset == len(data)`` and reject leftovers).

    Raises:
        TruncatedError: if the buffer ends inside the frame.
        BadVersionError: on a version byte this endpoint cannot parse.
        OversizedError: on a declared payload over :data:`MAX_PAYLOAD_LEN`.
        BadFrameError: on an unknown frame type or malformed trace block.
        BadCrcError: when the trailer does not match.
    """
    start = offset
    if len(data) - offset < 2:
        raise TruncatedError("buffer too short for a frame header")
    version = data[offset]
    if version not in (PROTOCOL_VERSION, TRACE_PROTOCOL_VERSION):
        raise BadVersionError(
            f"frame version {version}, this endpoint speaks "
            f"{PROTOCOL_VERSION}-{TRACE_PROTOCOL_VERSION}"
        )
    type_byte = data[offset + 1]
    payload_len, offset = read_varint(data, offset + 2)
    if payload_len > MAX_PAYLOAD_LEN:
        raise OversizedError(
            f"declared payload of {payload_len} bytes exceeds limit "
            f"{MAX_PAYLOAD_LEN}"
        )
    if len(data) - offset < payload_len + _CRC.size:
        raise TruncatedError(
            f"buffer ended inside a frame: need {payload_len + _CRC.size} "
            f"more bytes, have {len(data) - offset}"
        )
    payload = bytes(data[offset : offset + payload_len])
    offset += payload_len
    (crc,) = _CRC.unpack_from(data, offset)
    offset += _CRC.size
    if crc != zlib.crc32(data[start : offset - _CRC.size]):
        raise BadCrcError("frame CRC mismatch")
    # Type is validated after the CRC: a garbled type byte is corruption
    # (BadCrc) first, an honest-but-unknown type (BadFrame) second.
    try:
        frame_type = FrameType(type_byte)
    except ValueError:
        raise BadFrameError(f"unknown frame type {type_byte}") from None
    trace: WireTraceContext | None = None
    if version == TRACE_PROTOCOL_VERSION:
        trace, payload = _decode_trace_block(payload)
    return Frame(frame_type=frame_type, payload=payload, trace=trace), offset


#: Upper bound on an undecodable-yet-valid header prefix, used by the
#: incremental decoder to distinguish "need more bytes" from "stuck".
_MAX_HEADER_LEN = 2 + MAX_VARINT_BYTES


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Usage::

        decoder = FrameDecoder()
        for frame in decoder.feed(chunk):   # any chunking whatsoever
            ...
        decoder.finish()                    # at EOF

    Decode errors raise out of :meth:`feed` immediately; after an error
    the stream is unrecoverable by design (v1 has no resync marker) and
    further feeding raises the same error.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._error: Exception | None = None
        self.frames_decoded = 0
        self.bytes_consumed = 0

    def feed(self, chunk: bytes) -> list[Frame]:
        """Absorb ``chunk``; return every frame completed by it."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(chunk)
        frames: list[Frame] = []
        while True:
            try:
                frame, consumed = decode_frame(bytes(self._buffer))
            except TruncatedError as exc:
                # Genuinely incomplete input waits for more bytes -- but a
                # "truncated" header longer than any legal header means the
                # length varint itself is malformed, not short.
                if len(self._buffer) > _MAX_HEADER_LEN + MAX_PAYLOAD_LEN + _CRC.size:
                    self._error = exc
                    raise
                return frames
            except Exception as exc:
                self._error = exc
                raise
            del self._buffer[:consumed]
            self.frames_decoded += 1
            self.bytes_consumed += consumed
            frames.append(frame)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Raises:
            TruncatedError: if buffered bytes form only part of a frame.
        """
        if self._error is None and self._buffer:
            raise TruncatedError(
                f"stream ended with {len(self._buffer)} byte(s) of an "
                "incomplete frame"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet part of a complete frame."""
        return len(self._buffer)
