"""Frames: the unit of exchange on a sink connection.

Wire grammar (all integers big-endian unless they are varints)::

    frame   := version type length payload crc
    version := u8                      -- PROTOCOL_VERSION (currently 1)
    type    := u8                      -- FrameType member
    length  := varint                  -- payload byte count
    payload := length bytes            -- grammar depends on type
    crc     := u32be                   -- CRC32 over version|type|length|payload

The CRC covers the header too, so a flipped type byte or a corrupted
length is caught like corrupted payload bytes.  The version byte is
checked *before* the CRC: a peer speaking a future version may legally
use a different trailer, so the only thing v1 asserts about such a frame
is that it cannot parse it (:class:`~repro.wire.errors.BadVersionError`).

:class:`FrameDecoder` is the incremental form the asyncio endpoints use:
feed it whatever the socket produced, take whole frames out, and call
:meth:`FrameDecoder.finish` at EOF so a mid-frame disconnect surfaces as
a :class:`~repro.wire.errors.TruncatedError` instead of silence.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from repro.wire.codec import MAX_VARINT_BYTES, read_varint, write_varint
from repro.wire.errors import (
    BadCrcError,
    BadFrameError,
    BadVersionError,
    OversizedError,
    TruncatedError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD_LEN",
    "FrameType",
    "Frame",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
]

#: The protocol version this implementation speaks (see docs/wire.md).
PROTOCOL_VERSION = 1

#: Hard cap on a frame's payload; larger declarations are rejected before
#: any buffering happens, so a hostile length cannot balloon memory.
MAX_PAYLOAD_LEN = 4 * 1024 * 1024

_CRC = struct.Struct(">I")


class FrameType(enum.IntEnum):
    """The frame types of protocol v1."""

    REPORT = 1  #: one marked packet (``delivering | fmt | packet``)
    BATCH = 2  #: many marked packets sharing one delivering node
    VERDICT = 3  #: the sink's current traceback verdict
    PING = 4  #: liveness + version probe; echoed verbatim by the peer
    ERROR = 5  #: typed rejection (``code | retry_after_ms | message``)
    SUMMARY = 6  #: evidence snapshot request/reply (cluster verdict merge)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its type and raw payload bytes."""

    frame_type: FrameType
    payload: bytes

    @property
    def wire_len(self) -> int:
        """Encoded size of this frame in bytes."""
        return (
            2 + len(write_varint(len(self.payload))) + len(self.payload) + _CRC.size
        )


def encode_frame(frame_type: FrameType, payload: bytes) -> bytes:
    """Serialize one frame, CRC trailer included.

    Raises:
        OversizedError: if ``payload`` exceeds :data:`MAX_PAYLOAD_LEN`.
    """
    if len(payload) > MAX_PAYLOAD_LEN:
        raise OversizedError(
            f"payload of {len(payload)} bytes exceeds limit {MAX_PAYLOAD_LEN}"
        )
    body = (
        bytes((PROTOCOL_VERSION, int(frame_type)))
        + write_varint(len(payload))
        + payload
    )
    return body + _CRC.pack(zlib.crc32(body))


def decode_frame(data: bytes, offset: int = 0) -> tuple[Frame, int]:
    """Decode one frame from ``data`` at ``offset``.

    Returns:
        ``(frame, new_offset)``; bytes past the frame are left for the
        caller (the stream decoder loops; one-shot callers should check
        ``new_offset == len(data)`` and reject leftovers).

    Raises:
        TruncatedError: if the buffer ends inside the frame.
        BadVersionError: on a version byte other than v1.
        OversizedError: on a declared payload over :data:`MAX_PAYLOAD_LEN`.
        BadFrameError: on an unknown frame type.
        BadCrcError: when the trailer does not match.
    """
    start = offset
    if len(data) - offset < 2:
        raise TruncatedError("buffer too short for a frame header")
    version = data[offset]
    if version != PROTOCOL_VERSION:
        raise BadVersionError(
            f"frame version {version}, this endpoint speaks {PROTOCOL_VERSION}"
        )
    type_byte = data[offset + 1]
    payload_len, offset = read_varint(data, offset + 2)
    if payload_len > MAX_PAYLOAD_LEN:
        raise OversizedError(
            f"declared payload of {payload_len} bytes exceeds limit "
            f"{MAX_PAYLOAD_LEN}"
        )
    if len(data) - offset < payload_len + _CRC.size:
        raise TruncatedError(
            f"buffer ended inside a frame: need {payload_len + _CRC.size} "
            f"more bytes, have {len(data) - offset}"
        )
    payload = bytes(data[offset : offset + payload_len])
    offset += payload_len
    (crc,) = _CRC.unpack_from(data, offset)
    offset += _CRC.size
    if crc != zlib.crc32(data[start : offset - _CRC.size]):
        raise BadCrcError("frame CRC mismatch")
    # Type is validated after the CRC: a garbled type byte is corruption
    # (BadCrc) first, an honest-but-unknown type (BadFrame) second.
    try:
        frame_type = FrameType(type_byte)
    except ValueError:
        raise BadFrameError(f"unknown frame type {type_byte}") from None
    return Frame(frame_type=frame_type, payload=payload), offset


#: Upper bound on an undecodable-yet-valid header prefix, used by the
#: incremental decoder to distinguish "need more bytes" from "stuck".
_MAX_HEADER_LEN = 2 + MAX_VARINT_BYTES


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Usage::

        decoder = FrameDecoder()
        for frame in decoder.feed(chunk):   # any chunking whatsoever
            ...
        decoder.finish()                    # at EOF

    Decode errors raise out of :meth:`feed` immediately; after an error
    the stream is unrecoverable by design (v1 has no resync marker) and
    further feeding raises the same error.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._error: Exception | None = None
        self.frames_decoded = 0
        self.bytes_consumed = 0

    def feed(self, chunk: bytes) -> list[Frame]:
        """Absorb ``chunk``; return every frame completed by it."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(chunk)
        frames: list[Frame] = []
        while True:
            try:
                frame, consumed = decode_frame(bytes(self._buffer))
            except TruncatedError as exc:
                # Genuinely incomplete input waits for more bytes -- but a
                # "truncated" header longer than any legal header means the
                # length varint itself is malformed, not short.
                if len(self._buffer) > _MAX_HEADER_LEN + MAX_PAYLOAD_LEN + _CRC.size:
                    self._error = exc
                    raise
                return frames
            except Exception as exc:
                self._error = exc
                raise
            del self._buffer[:consumed]
            self.frames_decoded += 1
            self.bytes_consumed += consumed
            frames.append(frame)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Raises:
            TruncatedError: if buffered bytes form only part of a frame.
        """
        if self._error is None and self._buffer:
            raise TruncatedError(
                f"stream ended with {len(self._buffer)} byte(s) of an "
                "incomplete frame"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet part of a complete frame."""
        return len(self._buffer)
