"""``SinkClient``: the sink's network peer on a sensor gateway.

Asyncio client for :class:`~repro.wire.server.SinkServer` with the three
behaviors a deployed gateway needs:

* **Bounded connect**: every connection attempt has a timeout, failed
  attempts back off exponentially (deterministically -- no jitter, so
  test runs are repeatable), and exhaustion raises a typed
  :class:`~repro.wire.errors.ConnectError` instead of looping forever;
* **Typed failures**: an ERROR reply surfaces as
  :class:`~repro.wire.errors.BackpressureError` (with the server's
  retry-after hint) or :class:`~repro.wire.errors.RemoteError` -- the
  caller never parses message strings;
* **Pipelining**: :meth:`send_batches` writes every batch frame before
  reading any reply, hiding the round-trip latency that would otherwise
  dominate a ping-pong exchange on anything but loopback.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import SpanContext
from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.traceback.sink import SinkEvidence
from repro.wire.errors import (
    BackpressureError,
    BadFrameError,
    ConnectError,
    ErrorCode,
    PingTimeoutError,
    RemoteError,
    TruncatedError,
    WrongShardError,
)
from repro.wire.frames import (
    Frame,
    FrameDecoder,
    FrameType,
    WireTraceContext,
    encode_frame,
)
from repro.wire.messages import (
    WireErrorInfo,
    WireVerdict,
    decode_error,
    decode_summary,
    decode_telemetry,
    decode_verdict,
    encode_batch,
    encode_error,
    encode_report,
)

__all__ = ["SinkClient"]

_READ_CHUNK = 64 * 1024


class SinkClient:
    """Connects to a :class:`~repro.wire.server.SinkServer` and streams batches.

    Args:
        host / port: the server address.
        connect_timeout: seconds allowed per connection attempt.
        retries: additional attempts after the first failure.
        backoff_base: first retry delay in seconds; doubles per attempt.
        backoff_max: delay ceiling.
        obs: observability provider (``wire_frames_tx/rx_total`` and byte
            counters from the client's side).
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.obs = resolve_provider(obs)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._decoder = FrameDecoder()
        self._pending: deque[Frame] = deque()
        self.connect_attempts = 0

    # Connection --------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._writer is not None

    def _backoff_delay(self, attempt: int) -> float:
        """Deterministic exponential backoff for retry ``attempt`` (0-based)."""
        return min(self.backoff_base * (2**attempt), self.backoff_max)

    async def connect(self) -> None:
        """Open the connection, retrying with exponential backoff.

        Raises:
            ConnectError: after ``retries + 1`` failed attempts.
        """
        if self.connected:
            return
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            self.connect_attempts += 1
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.connect_timeout,
                )
                self._decoder = FrameDecoder()
                self._pending.clear()
                self.obs.inc("wire_client_connects_total")
                return
            except (OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                self.obs.inc("wire_client_connect_failures_total")
                if attempt < self.retries:
                    await asyncio.sleep(self._backoff_delay(attempt))
        raise ConnectError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "SinkClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.close()

    # Frame I/O ---------------------------------------------------------------

    async def _write_frame(
        self,
        frame_type: FrameType,
        payload: bytes,
        trace: SpanContext | None = None,
    ) -> None:
        if self._writer is None:
            raise ConnectError("client is not connected")
        wire_trace = None
        if trace is not None:
            wire_trace = WireTraceContext(
                trace_id=trace.trace_id, span_id=trace.span_id
            )
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.finish(
                    tracer.start(
                        "wire_tx",
                        parent=trace,
                        frame=frame_type.name,
                        peer=f"{self.host}:{self.port}",
                    )
                )
        data = encode_frame(frame_type, payload, trace=wire_trace)
        self.obs.inc("wire_frames_tx_total", frame=frame_type.name)
        self.obs.inc("wire_bytes_tx_total", len(data), frame=frame_type.name)
        self._writer.write(data)
        await self._writer.drain()

    async def _read_frame(self) -> Frame:
        if self._pending:
            return self._pending.popleft()
        if self._reader is None:
            raise ConnectError("client is not connected")
        while not self._pending:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                self._decoder.finish()
                raise TruncatedError("server closed before a complete reply")
            self._pending.extend(self._decoder.feed(chunk))
        frame = self._pending.popleft()
        self.obs.inc("wire_frames_rx_total", frame=frame.frame_type.name)
        self.obs.inc(
            "wire_bytes_rx_total", frame.wire_len, frame=frame.frame_type.name
        )
        return frame

    @staticmethod
    def _raise_remote(info: WireErrorInfo) -> RemoteError:
        if info.code is ErrorCode.BACKPRESSURE:
            return BackpressureError(info.message, info.retry_after_ms)
        if info.code is ErrorCode.WRONG_SHARD:
            return WrongShardError(info.message, info.retry_after_ms)
        return RemoteError(info.code, info.message, info.retry_after_ms)

    def _parse_reply(self, frame: Frame) -> WireVerdict | WireErrorInfo:
        if frame.frame_type is FrameType.VERDICT:
            return decode_verdict(frame.payload)
        if frame.frame_type is FrameType.ERROR:
            return decode_error(frame.payload)
        raise BadFrameError(
            f"expected VERDICT or ERROR, got {frame.frame_type.name}"
        )

    # Requests ----------------------------------------------------------------

    async def ping(self, payload: bytes = b"pnm") -> bytes:
        """Version/liveness probe; returns the server's echoed payload.

        A successful round trip proves both endpoints speak
        :data:`~repro.wire.frames.PROTOCOL_VERSION` -- each side rejects
        any other version byte before looking at the payload.
        """
        await self._write_frame(FrameType.PING, payload)
        reply = await self._read_frame()
        if reply.frame_type is FrameType.ERROR:
            raise self._raise_remote(decode_error(reply.payload))
        if reply.frame_type is not FrameType.PING:
            raise BadFrameError(
                f"expected PING echo, got {reply.frame_type.name}"
            )
        return reply.payload

    async def health_check(
        self, timeout: float = 1.0, payload: bytes = b"pnm"
    ) -> bytes:
        """A :meth:`ping` with a deadline: the liveness probe form.

        A timeout abandons the in-flight PING, but its echo may still
        arrive later -- and this client is strict request-response, so a
        late echo left in the stream would be read as the *next*
        request's reply (a silent mis-pairing at worst, a
        :class:`BadFrameError` at best).  The connection is therefore
        closed before the timeout is raised; callers that decide the
        peer is merely slow must :meth:`connect` again before reusing
        this client.

        Returns:
            the echoed payload when the peer answered in time.

        Raises:
            PingTimeoutError: when no echo arrived within ``timeout``
                seconds.  The connection has been closed.
            RemoteError: when the peer answered with an ERROR frame.
        """
        try:
            return await asyncio.wait_for(self.ping(payload), timeout=timeout)
        except asyncio.TimeoutError:
            await self.close()
            raise PingTimeoutError(
                f"no PING echo from {self.host}:{self.port} within "
                f"{timeout:g}s"
            ) from None

    async def fetch_summary(self) -> SinkEvidence:
        """Request the sink's evidence snapshot (SUMMARY round trip).

        The server flushes its ingest queue first, so the snapshot covers
        every batch this client has had acknowledged.
        """
        await self._write_frame(FrameType.SUMMARY, b"")
        reply = await self._read_frame()
        if reply.frame_type is FrameType.ERROR:
            raise self._raise_remote(decode_error(reply.payload))
        if reply.frame_type is not FrameType.SUMMARY:
            raise BadFrameError(
                f"expected SUMMARY reply, got {reply.frame_type.name}"
            )
        return decode_summary(reply.payload)

    async def fetch_telemetry(self) -> dict[str, Any]:
        """Request the server's metrics-registry snapshot (TELEMETRY).

        Returns the snapshot dict
        (:meth:`~repro.obs.registry.MetricsRegistry.snapshot` shape); a
        server running without observability answers with an empty
        snapshot (``{"metrics": []}``).
        """
        await self._write_frame(FrameType.TELEMETRY, b"")
        reply = await self._read_frame()
        if reply.frame_type is FrameType.ERROR:
            raise self._raise_remote(decode_error(reply.payload))
        if reply.frame_type is not FrameType.TELEMETRY:
            raise BadFrameError(
                f"expected TELEMETRY reply, got {reply.frame_type.name}"
            )
        return decode_telemetry(reply.payload)

    async def send_report(
        self,
        packet: MarkedPacket,
        delivering_node: int,
        fmt: MarkFormat,
        trace: SpanContext | None = None,
    ) -> WireVerdict:
        """Submit a single packet; returns the sink's updated verdict.

        With ``trace``, the REPORT frame carries the context so the
        server's spans join the caller's trace.
        """
        await self._write_frame(
            FrameType.REPORT,
            encode_report(packet, delivering_node, fmt),
            trace=trace,
        )
        return self._expect_verdict(await self._read_frame())

    async def send_batch(
        self,
        packets: list[MarkedPacket] | tuple[MarkedPacket, ...],
        delivering_node: int,
        fmt: MarkFormat,
        trace: SpanContext | None = None,
    ) -> WireVerdict:
        """Submit one batch; returns the sink's updated verdict.

        With ``trace``, the BATCH frame carries the context so the
        server's spans join the caller's trace.

        Raises:
            BackpressureError: when the server's queue shed packets (the
                exception carries the server's retry-after hint).
            RemoteError: on any other server-side rejection.
        """
        await self._write_frame(
            FrameType.BATCH,
            encode_batch(packets, delivering_node, fmt),
            trace=trace,
        )
        return self._expect_verdict(await self._read_frame())

    def _expect_verdict(self, frame: Frame) -> WireVerdict:
        reply = self._parse_reply(frame)
        if isinstance(reply, WireErrorInfo):
            raise self._raise_remote(reply)
        return reply

    async def send_batches(
        self,
        batches: list[tuple[list[MarkedPacket], int]],
        fmt: MarkFormat,
        traces: list[SpanContext | None] | None = None,
    ) -> list[WireVerdict | WireErrorInfo]:
        """Pipeline many batches: write them all, then read all replies.

        Unlike :meth:`send_batch`, per-batch rejections are *returned*
        (as :class:`WireErrorInfo`) rather than raised, so one shed batch
        does not discard the verdicts of the batches pipelined behind it.
        ``traces`` optionally supplies one context per batch (``None``
        entries send context-free frames).
        """
        if traces is not None and len(traces) != len(batches):
            raise ValueError(
                f"traces length {len(traces)} != batches length {len(batches)}"
            )
        for index, (packets, delivering_node) in enumerate(batches):
            await self._write_frame(
                FrameType.BATCH,
                encode_batch(packets, delivering_node, fmt),
                trace=traces[index] if traces is not None else None,
            )
        return [
            self._parse_reply(await self._read_frame())
            for _ in range(len(batches))
        ]

    async def send_error(self, info: WireErrorInfo) -> None:
        """Send an ERROR frame (diagnostics; servers reject most of these)."""
        await self._write_frame(FrameType.ERROR, encode_error(info))

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"SinkClient({self.host}:{self.port}, {state})"
