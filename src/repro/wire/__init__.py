"""The binary wire protocol and networked sink endpoints.

This package turns the in-process reproduction into a deployable
service: a versioned binary codec for marked packets (docs/wire.md has
the byte grammar), CRC-guarded frames with a strict
:class:`~repro.wire.errors.WireError` taxonomy, and asyncio TCP
endpoints -- :class:`~repro.wire.server.SinkServer` feeding the
:class:`~repro.service.SinkIngestService` pipeline, and
:class:`~repro.wire.client.SinkClient` with bounded retry, connect
timeouts, and pipelined batch sends.

Codec paths here must never unpickle anything (lint rule RL007) and
every decoder failure is typed: corrupt bytes raise a
:class:`~repro.wire.errors.WireError` subclass, never ``struct.error``.
"""

from repro.wire.client import SinkClient
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.errors import (
    BackpressureError,
    BadCrcError,
    BadFrameError,
    BadVersionError,
    ConnectError,
    ErrorCode,
    OversizedError,
    PingTimeoutError,
    RemoteError,
    TrailingBytesError,
    TruncatedError,
    WireError,
    WrongShardError,
)
from repro.wire.frames import (
    MAX_PAYLOAD_LEN,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    FrameType,
    decode_frame,
    encode_frame,
)
from repro.wire.loopback import LoopbackResult, drive_loopback, run_loopback
from repro.wire.messages import (
    WireBatch,
    WireErrorInfo,
    WireVerdict,
    decode_batch,
    decode_error,
    decode_report,
    decode_summary,
    decode_verdict,
    encode_batch,
    encode_error,
    encode_report,
    encode_summary,
    encode_verdict,
)
from repro.wire.server import SinkServer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD_LEN",
    "WireError",
    "TruncatedError",
    "BadCrcError",
    "BadVersionError",
    "OversizedError",
    "BadFrameError",
    "TrailingBytesError",
    "ConnectError",
    "PingTimeoutError",
    "RemoteError",
    "BackpressureError",
    "WrongShardError",
    "ErrorCode",
    "Frame",
    "FrameType",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "encode_packet",
    "decode_packet",
    "WireBatch",
    "WireVerdict",
    "WireErrorInfo",
    "encode_report",
    "decode_report",
    "encode_batch",
    "decode_batch",
    "encode_verdict",
    "decode_verdict",
    "encode_error",
    "decode_error",
    "encode_summary",
    "decode_summary",
    "SinkServer",
    "SinkClient",
    "LoopbackResult",
    "drive_loopback",
    "run_loopback",
]
