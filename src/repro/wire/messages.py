"""Payload grammars for each frame type.

Frames carry opaque payload bytes; this module gives each
:class:`~repro.wire.frames.FrameType` its payload structure (docs/wire.md
has the grammar in one place).  Payload decoders are as strict as the
frame decoder: every byte must be consumed, every count must be exact,
and every failure is a typed :class:`~repro.wire.errors.WireError`.

BATCH payloads are self-describing: they open with the deployment's
:class:`~repro.packets.marks.MarkFormat`, so a server can verify the
client and it agree on the mark layout before decoding a single packet
-- a mismatched format would otherwise misparse every mark boundary and
surface as a wall of MAC failures instead of one clean error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.traceback.localize import SuspectNeighborhood
from repro.traceback.sink import SinkEvidence, TracebackVerdict
from repro.wire.codec import (
    decode_mark_format,
    decode_packet,
    encode_mark_format,
    encode_packet,
    read_varint,
    write_varint,
)
from repro.wire.errors import (
    BadFrameError,
    ErrorCode,
    TrailingBytesError,
    TruncatedError,
)

__all__ = [
    "WireBatch",
    "WireVerdict",
    "WireErrorInfo",
    "encode_report",
    "decode_report",
    "encode_batch",
    "decode_batch",
    "encode_verdict",
    "decode_verdict",
    "encode_error",
    "decode_error",
    "encode_summary",
    "decode_summary",
    "encode_telemetry",
    "decode_telemetry",
]

_MAX_ERROR_MESSAGE_LEN = 4096


def _require_consumed(data: bytes, offset: int, what: str) -> None:
    if offset != len(data):
        raise TrailingBytesError(
            f"{len(data) - offset} trailing byte(s) after {what} payload"
        )


@dataclass(frozen=True)
class WireBatch:
    """A decoded BATCH payload.

    Attributes:
        fmt: the mark layout the packets were encoded with.
        packets: the marked packets, in submission order.
        delivering_node: the sink neighbor that handed every packet over
            (one per batch: a batch models one neighbor's delivery burst).
    """

    fmt: MarkFormat
    packets: tuple[MarkedPacket, ...]
    delivering_node: int


def encode_batch(
    packets: list[MarkedPacket] | tuple[MarkedPacket, ...],
    delivering_node: int,
    fmt: MarkFormat,
) -> bytes:
    """``fmt | varint(delivering) | varint(count) | count x (varint(len) | packet)``."""
    if delivering_node < 0:
        raise ValueError(f"delivering_node must be >= 0, got {delivering_node}")
    parts = [
        encode_mark_format(fmt),
        write_varint(delivering_node),
        write_varint(len(packets)),
    ]
    for packet in packets:
        body = encode_packet(packet)
        parts.append(write_varint(len(body)))
        parts.append(body)
    return b"".join(parts)


def decode_batch(payload: bytes) -> WireBatch:
    """Parse a BATCH payload; the whole payload must be consumed."""
    fmt, offset = decode_mark_format(payload)
    delivering_node, offset = read_varint(payload, offset)
    count, offset = read_varint(payload, offset)
    if count > len(payload):
        raise BadFrameError(
            f"batch count {count} exceeds payload size {len(payload)}"
        )
    packets = []
    for index in range(count):
        length, offset = read_varint(payload, offset)
        if len(payload) - offset < length:
            raise TruncatedError(
                f"payload ended inside packet {index}: need {length} bytes, "
                f"have {len(payload) - offset}"
            )
        packets.append(decode_packet(payload[offset : offset + length], fmt))
        offset += length
    _require_consumed(payload, offset, "BATCH")
    return WireBatch(
        fmt=fmt, packets=tuple(packets), delivering_node=delivering_node
    )


def encode_report(
    packet: MarkedPacket, delivering_node: int, fmt: MarkFormat
) -> bytes:
    """``fmt | varint(delivering) | packet`` -- a batch of exactly one.

    REPORT is the low-latency path for a single suspicious packet; its
    payload is the BATCH grammar with the count elided (the packet's own
    framing delimits it and the payload end closes it).
    """
    if delivering_node < 0:
        raise ValueError(f"delivering_node must be >= 0, got {delivering_node}")
    return (
        encode_mark_format(fmt)
        + write_varint(delivering_node)
        + encode_packet(packet)
    )


def decode_report(payload: bytes) -> WireBatch:
    """Parse a REPORT payload into a one-packet :class:`WireBatch`."""
    fmt, offset = decode_mark_format(payload)
    delivering_node, offset = read_varint(payload, offset)
    packet = decode_packet(payload[offset:], fmt)
    return WireBatch(
        fmt=fmt, packets=(packet,), delivering_node=delivering_node
    )


@dataclass(frozen=True)
class WireVerdict:
    """The transportable subset of a sink verdict.

    Mirrors :class:`~repro.traceback.sink.TracebackVerdict` minus the
    route-analysis diagnostics (which stay server-side): identification
    flag, the suspect neighborhood, and the evidence counters a client
    needs to decide whether to keep streaming.
    """

    identified: bool
    packets_used: int
    loop_detected: bool
    suspect_center: int | None = None
    suspect_members: tuple[int, ...] = ()
    via_loop: bool = False

    @classmethod
    def from_verdict(cls, verdict: TracebackVerdict) -> "WireVerdict":
        suspect = verdict.suspect
        return cls(
            identified=verdict.identified,
            packets_used=verdict.packets_used,
            loop_detected=verdict.loop_detected,
            suspect_center=None if suspect is None else suspect.center,
            suspect_members=(
                () if suspect is None else tuple(sorted(suspect.members))
            ),
            via_loop=False if suspect is None else suspect.via_loop,
        )

    def suspect_neighborhood(self) -> SuspectNeighborhood | None:
        """Rebuild the suspect as the sink-side type (``None`` if absent)."""
        if self.suspect_center is None:
            return None
        return SuspectNeighborhood(
            center=self.suspect_center,
            members=frozenset(self.suspect_members),
            via_loop=self.via_loop,
        )


_VERDICT_FLAG_IDENTIFIED = 0x01
_VERDICT_FLAG_LOOP = 0x02
_VERDICT_FLAG_SUSPECT = 0x04
_VERDICT_FLAG_VIA_LOOP = 0x08
_VERDICT_KNOWN_FLAGS = 0x0F


def encode_verdict(verdict: WireVerdict) -> bytes:
    """``flags u8 | varint(packets_used) [| varint(center) | varint(n) | members]``."""
    flags = 0
    if verdict.identified:
        flags |= _VERDICT_FLAG_IDENTIFIED
    if verdict.loop_detected:
        flags |= _VERDICT_FLAG_LOOP
    if verdict.suspect_center is not None:
        flags |= _VERDICT_FLAG_SUSPECT
    if verdict.via_loop:
        flags |= _VERDICT_FLAG_VIA_LOOP
    parts = [bytes((flags,)), write_varint(verdict.packets_used)]
    if verdict.suspect_center is not None:
        members = sorted(verdict.suspect_members)
        parts.append(write_varint(verdict.suspect_center))
        parts.append(write_varint(len(members)))
        parts.extend(write_varint(member) for member in members)
    return b"".join(parts)


def decode_verdict(payload: bytes) -> WireVerdict:
    """Parse a VERDICT payload; the whole payload must be consumed."""
    if not payload:
        raise TruncatedError("empty VERDICT payload")
    flags = payload[0]
    if flags & ~_VERDICT_KNOWN_FLAGS:
        raise BadFrameError(f"unknown verdict flag bits: {flags:#04x}")
    packets_used, offset = read_varint(payload, 1)
    center: int | None = None
    members: tuple[int, ...] = ()
    if flags & _VERDICT_FLAG_SUSPECT:
        center, offset = read_varint(payload, offset)
        count, offset = read_varint(payload, offset)
        if count > len(payload):
            raise BadFrameError(
                f"member count {count} exceeds payload size {len(payload)}"
            )
        decoded = []
        for _ in range(count):
            member, offset = read_varint(payload, offset)
            decoded.append(member)
        members = tuple(decoded)
    elif flags & _VERDICT_FLAG_VIA_LOOP:
        raise BadFrameError("via_loop flag set without a suspect")
    _require_consumed(payload, offset, "VERDICT")
    return WireVerdict(
        identified=bool(flags & _VERDICT_FLAG_IDENTIFIED),
        packets_used=packets_used,
        loop_detected=bool(flags & _VERDICT_FLAG_LOOP),
        suspect_center=center,
        suspect_members=members,
        via_loop=bool(flags & _VERDICT_FLAG_VIA_LOOP),
    )


@dataclass(frozen=True)
class WireErrorInfo:
    """A decoded ERROR payload: code, retry hint, human-readable message."""

    code: ErrorCode
    retry_after_ms: int = 0
    message: str = ""


def encode_error(info: WireErrorInfo) -> bytes:
    """``code u8 | varint(retry_after_ms) | varint(len) | message utf8``."""
    message = info.message.encode("utf-8")[:_MAX_ERROR_MESSAGE_LEN]
    return (
        bytes((int(info.code),))
        + write_varint(info.retry_after_ms)
        + write_varint(len(message))
        + message
    )


_SUMMARY_FLAG_DELIVERING = 0x01
_SUMMARY_FLAG_ALGEBRAIC = 0x02
_SUMMARY_KNOWN_FLAGS = 0x03

#: Fields per algebraic observation tuple (see
#: :meth:`repro.algebraic.solver.AlgebraicObservation.as_tuple`).
_OBSERVATION_FIELDS = 6


def encode_summary(evidence: SinkEvidence) -> bytes:
    """Serialize a :class:`~repro.traceback.sink.SinkEvidence` snapshot.

    Grammar (every integer a varint unless noted)::

        summary := counters flags [delivering] nodes edges stops [algebraic]
        counters := packets_received tampered_packets chains_with_marks
                    fallback_searches
        flags   := u8                      -- bit 0: delivering present
                                           -- bit 1: algebraic section present
        nodes   := count count x node
        edges   := count count x (upstream downstream)
        stops   := count count x (node stop_count)
        algebraic := count count x (timestamp point hops value delivering
                                    last_hop_plus1)

    Nodes, edges, stops and algebraic observations are written in the
    canonical sorted order
    :meth:`~repro.traceback.sink.TracebackSink.evidence` produces, so two
    shards with identical evidence encode identical bytes.  Evidence with
    no algebraic observations encodes byte-identically to the pre-algebraic
    grammar (the section and its flag bit are simply absent).
    """
    flags = 0
    if evidence.delivering_node is not None:
        flags |= _SUMMARY_FLAG_DELIVERING
    if evidence.algebraic:
        flags |= _SUMMARY_FLAG_ALGEBRAIC
    parts = [
        write_varint(evidence.packets_received),
        write_varint(evidence.tampered_packets),
        write_varint(evidence.chains_with_marks),
        write_varint(evidence.fallback_searches),
        bytes((flags,)),
    ]
    if evidence.delivering_node is not None:
        parts.append(write_varint(evidence.delivering_node))
    parts.append(write_varint(len(evidence.nodes)))
    parts.extend(write_varint(node) for node in evidence.nodes)
    parts.append(write_varint(len(evidence.edges)))
    for upstream, downstream in evidence.edges:
        parts.append(write_varint(upstream))
        parts.append(write_varint(downstream))
    parts.append(write_varint(len(evidence.tamper_stops)))
    for node, stop_count in evidence.tamper_stops:
        parts.append(write_varint(node))
        parts.append(write_varint(stop_count))
    if evidence.algebraic:
        parts.append(write_varint(len(evidence.algebraic)))
        for observation in evidence.algebraic:
            if len(observation) != _OBSERVATION_FIELDS:
                raise ValueError(
                    f"algebraic observation has {len(observation)} fields, "
                    f"expected {_OBSERVATION_FIELDS}"
                )
            parts.extend(write_varint(value) for value in observation)
    return b"".join(parts)


def decode_summary(payload: bytes) -> SinkEvidence:
    """Parse a SUMMARY payload; the whole payload must be consumed."""
    packets_received, offset = read_varint(payload, 0)
    tampered_packets, offset = read_varint(payload, offset)
    chains_with_marks, offset = read_varint(payload, offset)
    fallback_searches, offset = read_varint(payload, offset)
    if len(payload) - offset < 1:
        raise TruncatedError("SUMMARY payload ended before its flags byte")
    flags = payload[offset]
    offset += 1
    if flags & ~_SUMMARY_KNOWN_FLAGS:
        raise BadFrameError(f"unknown summary flag bits: {flags:#04x}")
    delivering_node: int | None = None
    if flags & _SUMMARY_FLAG_DELIVERING:
        delivering_node, offset = read_varint(payload, offset)
    node_count, offset = read_varint(payload, offset)
    if node_count > len(payload):
        raise BadFrameError(
            f"node count {node_count} exceeds payload size {len(payload)}"
        )
    nodes = []
    for _ in range(node_count):
        node, offset = read_varint(payload, offset)
        nodes.append(node)
    edge_count, offset = read_varint(payload, offset)
    if edge_count > len(payload):
        raise BadFrameError(
            f"edge count {edge_count} exceeds payload size {len(payload)}"
        )
    edges = []
    for _ in range(edge_count):
        upstream, offset = read_varint(payload, offset)
        downstream, offset = read_varint(payload, offset)
        edges.append((upstream, downstream))
    stop_count, offset = read_varint(payload, offset)
    if stop_count > len(payload):
        raise BadFrameError(
            f"stop count {stop_count} exceeds payload size {len(payload)}"
        )
    stops = []
    for _ in range(stop_count):
        node, offset = read_varint(payload, offset)
        hits, offset = read_varint(payload, offset)
        stops.append((node, hits))
    observations = []
    if flags & _SUMMARY_FLAG_ALGEBRAIC:
        observation_count, offset = read_varint(payload, offset)
        if observation_count > len(payload):
            raise BadFrameError(
                f"algebraic observation count {observation_count} exceeds "
                f"payload size {len(payload)}"
            )
        if observation_count == 0:
            raise BadFrameError(
                "algebraic flag set with zero observations"
            )
        for _ in range(observation_count):
            fields = []
            for _ in range(_OBSERVATION_FIELDS):
                value, offset = read_varint(payload, offset)
                fields.append(value)
            observations.append(tuple(fields))
    _require_consumed(payload, offset, "SUMMARY")
    return SinkEvidence(
        nodes=tuple(nodes),
        edges=tuple(edges),
        tamper_stops=tuple(stops),
        packets_received=packets_received,
        tampered_packets=tampered_packets,
        chains_with_marks=chains_with_marks,
        fallback_searches=fallback_searches,
        delivering_node=delivering_node,
        algebraic=tuple(observations),
    )


def encode_telemetry(snapshot: dict[str, Any]) -> bytes:
    """Serialize a :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.

    TELEMETRY is a request/reply pair: the request is an *empty* payload
    (poll), the reply is the shard's registry snapshot as canonical JSON
    (sorted keys, no whitespace) so identical registries encode
    identical bytes.  JSON rather than a bespoke binary grammar because
    snapshots are structural (nested labels, histogram buckets) and the
    federation path is off the packet hot path.
    """
    return json.dumps(
        snapshot, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_telemetry(payload: bytes) -> dict[str, Any]:
    """Parse a TELEMETRY reply payload into a registry snapshot dict."""
    if not payload:
        raise TruncatedError("empty TELEMETRY payload")
    try:
        snapshot = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadFrameError(f"malformed TELEMETRY payload: {exc}") from exc
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise BadFrameError(
            "TELEMETRY payload is not a registry snapshot object"
        )
    if not isinstance(snapshot["metrics"], list):
        raise BadFrameError("TELEMETRY snapshot 'metrics' is not a list")
    return snapshot


def decode_error(payload: bytes) -> WireErrorInfo:
    """Parse an ERROR payload; the whole payload must be consumed."""
    if not payload:
        raise TruncatedError("empty ERROR payload")
    try:
        code = ErrorCode(payload[0])
    except ValueError:
        raise BadFrameError(f"unknown error code {payload[0]}") from None
    retry_after_ms, offset = read_varint(payload, 1)
    length, offset = read_varint(payload, offset)
    if length > _MAX_ERROR_MESSAGE_LEN:
        raise BadFrameError(f"error message of {length} bytes exceeds limit")
    if len(payload) - offset < length:
        raise TruncatedError("payload ended inside the error message")
    message = payload[offset : offset + length].decode("utf-8", "replace")
    offset += length
    _require_consumed(payload, offset, "ERROR")
    return WireErrorInfo(code=code, retry_after_ms=retry_after_ms, message=message)
