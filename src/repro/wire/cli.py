"""``pnm-serve``: run (or smoke-test) the networked traceback sink.

Examples::

    pnm-serve serve --grid-side 16 --port 7440 --workers 4
    pnm-serve smoke                   # loopback end-to-end check (CI)

``serve`` builds a PNM deployment (grid topology, per-node keys derived
from ``--master-secret``), wraps the sink in the ingest pipeline, and
serves it over TCP until interrupted.  ``smoke`` proves the whole path in
one process: it starts a server on an ephemeral loopback port, pushes a
marked-packet batch through a :class:`~repro.wire.client.SinkClient`,
and asserts the wire verdict matches feeding the same packets to a
:class:`~repro.traceback.sink.TracebackSink` in-process.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.marking.pnm import PNMMarking
from repro.net.topology import grid_topology
from repro.service.ingest import SinkIngestService
from repro.traceback.sink import TracebackSink
from repro.wire.loopback import run_loopback
from repro.wire.server import DEFAULT_RETRY_AFTER_MS, SinkServer

__all__ = ["main", "build_deployment"]


def build_deployment(
    grid_side: int,
    master_secret: bytes,
    mark_prob: float = 1.0,
    workers: int = 0,
    capacity: int = 1024,
) -> tuple[SinkIngestService, PNMMarking]:
    """A PNM grid deployment wrapped in an ingest service.

    Returns:
        ``(service, scheme)``; the scheme's ``fmt`` is what the server
        must advertise.
    """
    scheme = PNMMarking(mark_prob=mark_prob)
    topology = grid_topology(grid_side, grid_side)
    keystore = KeyStore.from_master_secret(master_secret, topology.sensor_nodes())
    sink = TracebackSink(scheme, keystore, HmacProvider(), topology)
    service = SinkIngestService(sink, capacity=capacity, workers=workers)
    return service, scheme


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pnm-serve",
        description="Serve the PNM traceback sink over the binary wire protocol.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a sink server until interrupted")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7440)
    serve.add_argument("--grid-side", type=int, default=16)
    serve.add_argument("--mark-prob", type=float, default=1.0)
    serve.add_argument(
        "--master-secret",
        default="pnm-serve",
        help="master secret the per-node keys derive from",
    )
    serve.add_argument("--workers", type=int, default=0)
    serve.add_argument("--capacity", type=int, default=1024)
    serve.add_argument(
        "--retry-after-ms", type=int, default=DEFAULT_RETRY_AFTER_MS
    )

    smoke = sub.add_parser(
        "smoke", help="loopback end-to-end check; exit 0 iff verdicts match"
    )
    smoke.add_argument("--grid-side", type=int, default=8)
    smoke.add_argument("--packets", type=int, default=24)
    return parser


async def _serve(args: argparse.Namespace) -> int:
    service, scheme = build_deployment(
        args.grid_side,
        args.master_secret.encode("utf-8"),
        mark_prob=args.mark_prob,
        workers=args.workers,
        capacity=args.capacity,
    )
    server = SinkServer(
        service,
        scheme.fmt,
        host=args.host,
        port=args.port,
        retry_after_ms=args.retry_after_ms,
    )
    await server.start()
    print(
        f"pnm-serve: listening on {args.host}:{server.port} "
        f"({args.grid_side}x{args.grid_side} grid, workers={args.workers})"
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
        service.close(drain=False)
    return 0


def _smoke(args: argparse.Namespace) -> int:
    # Local import: experiments depend on wire (wire_sweep), so the CLI
    # pulls the workload builder lazily to keep imports acyclic.
    from repro.experiments.service_sweep import build_workload

    topology, keystore, stream, delivering = build_workload(
        args.grid_side, args.packets
    )
    scheme = PNMMarking(mark_prob=1.0)
    provider = HmacProvider()

    reference = TracebackSink(scheme, keystore, provider, topology)
    for packet in stream:
        reference.receive(packet, delivering)
    expected = reference.verdict()

    sink = TracebackSink(scheme, keystore, provider, topology)
    service = SinkIngestService(sink, capacity=len(stream))
    try:
        result = run_loopback(
            service, scheme.fmt, [(stream, delivering)], ping=True
        )
    finally:
        service.close(drain=False)

    wire_verdict = result.final_verdict
    expected_suspect = expected.suspect
    ok = (
        result.ping_echo == b"pnm"
        and wire_verdict.identified == expected.identified
        and wire_verdict.packets_used == expected.packets_used
        and wire_verdict.suspect_neighborhood() == expected_suspect
    )
    status = "OK" if ok else "MISMATCH"
    suspect = wire_verdict.suspect_center
    print(
        f"serve-smoke: {status} -- {len(stream)} packets over loopback, "
        f"identified={wire_verdict.identified}, suspect center={suspect}, "
        f"server stats={result.server_stats}"
    )
    if not ok:
        print(
            f"serve-smoke: expected identified={expected.identified}, "
            f"suspect={expected_suspect}",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return asyncio.run(_serve(args))
    return _smoke(args)


if __name__ == "__main__":
    sys.exit(main())
