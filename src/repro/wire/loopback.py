"""Loopback driver: a server and client paired in one event loop.

The shared harness behind the ``wire-sweep`` experiment, the throughput
benchmark, the ``pnm-serve smoke`` CLI and the integration tests: start a
:class:`~repro.wire.server.SinkServer` on an ephemeral loopback port,
drive a :class:`~repro.wire.client.SinkClient` through a batch schedule,
and return every reply plus the server's transport counters.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.packets.marks import MarkFormat
from repro.packets.packet import MarkedPacket
from repro.service.ingest import SinkIngestService
from repro.wire.client import SinkClient
from repro.wire.errors import RemoteError
from repro.wire.messages import WireErrorInfo, WireVerdict
from repro.wire.server import SinkServer

__all__ = ["LoopbackResult", "drive_loopback", "run_loopback"]

#: One scheduled send: ``(packets, delivering_node)``.
Batch = tuple[list[MarkedPacket], int]


@dataclass
class LoopbackResult:
    """Everything a loopback run produced.

    Attributes:
        replies: one entry per batch, in order: the verdict, or the
            server's error info for batches it rejected.
        ping_echo: the PING echo payload (``None`` when pinging was off).
        server_stats: the server's transport counters at shutdown.
    """

    replies: list[WireVerdict | WireErrorInfo] = field(default_factory=list)
    ping_echo: bytes | None = None
    server_stats: dict[str, int] = field(default_factory=dict)

    @property
    def verdicts(self) -> list[WireVerdict]:
        """The successful replies only."""
        return [r for r in self.replies if isinstance(r, WireVerdict)]

    @property
    def final_verdict(self) -> WireVerdict:
        """The last successful reply.

        Raises:
            ValueError: when every batch was rejected.
        """
        verdicts = self.verdicts
        if not verdicts:
            raise ValueError("loopback run produced no verdicts")
        return verdicts[-1]


async def drive_loopback(
    service: SinkIngestService,
    fmt: MarkFormat,
    batches: list[Batch],
    ping: bool = True,
    pipelined: bool = True,
    retry_after_ms: int = 0,
) -> LoopbackResult:
    """Run the batch schedule through a fresh loopback server/client pair.

    Args:
        service: the ingest pipeline the server feeds (caller owns its
            lifecycle; it is *not* closed here).
        fmt: the deployment mark layout.
        batches: the send schedule.
        ping: probe the server once before sending (version handshake).
        pipelined: use :meth:`SinkClient.send_batches` (all writes before
            any read); sequential ping-pong otherwise.
        retry_after_ms: server backpressure hint override (0 keeps the
            server default).
    """
    server = SinkServer(service, fmt)
    if retry_after_ms:
        server.retry_after_ms = retry_after_ms
    result = LoopbackResult()
    async with server:
        client = SinkClient("127.0.0.1", server.port)
        async with client:
            if ping:
                result.ping_echo = await client.ping()
            if pipelined:
                result.replies = await client.send_batches(batches, fmt)
            else:
                for packets, delivering_node in batches:
                    try:
                        result.replies.append(
                            await client.send_batch(packets, delivering_node, fmt)
                        )
                    except RemoteError as exc:
                        result.replies.append(
                            WireErrorInfo(
                                code=exc.error_code,
                                retry_after_ms=exc.retry_after_ms,
                                message=str(exc),
                            )
                        )
        await server.wait_idle()
    result.server_stats = server.stats()
    return result


def run_loopback(
    service: SinkIngestService,
    fmt: MarkFormat,
    batches: list[Batch],
    ping: bool = True,
    pipelined: bool = True,
    retry_after_ms: int = 0,
) -> LoopbackResult:
    """Synchronous wrapper: :func:`drive_loopback` under ``asyncio.run``."""
    return asyncio.run(
        drive_loopback(
            service,
            fmt,
            batches,
            ping=ping,
            pipelined=pipelined,
            retry_after_ms=retry_after_ms,
        )
    )
