"""The wire-error taxonomy.

Every way a peer can hand us unusable bytes has a dedicated exception, and
all of them derive from :class:`WireError`, so transport code catches one
type and corrupt input can never surface as a bare ``struct.error``,
``IndexError`` or ``ValueError`` from deep inside a decoder.  The decode
errors map one-to-one onto the on-wire ERROR frame codes
(:class:`ErrorCode`), which is what lets a server report *why* it rejected
a frame without leaking anything else about its state.
"""

from __future__ import annotations

import enum

__all__ = [
    "WireError",
    "TruncatedError",
    "BadCrcError",
    "BadVersionError",
    "OversizedError",
    "BadFrameError",
    "TrailingBytesError",
    "ConnectError",
    "RemoteError",
    "BackpressureError",
    "ErrorCode",
]


class ErrorCode(enum.IntEnum):
    """Machine-readable reason codes carried by ERROR frames."""

    BACKPRESSURE = 1  #: ingest queue shed the batch; retry after the hint
    BAD_FRAME = 2  #: undecodable frame (truncated / bad CRC / bad payload)
    BAD_VERSION = 3  #: protocol version mismatch
    OVERSIZED = 4  #: declared payload exceeds the receiver's limit
    INTERNAL = 5  #: server-side failure unrelated to the bytes received


class WireError(Exception):
    """Base class for every wire-protocol failure."""

    #: The ERROR-frame code a server reports for this failure class.
    code: ErrorCode = ErrorCode.BAD_FRAME


class TruncatedError(WireError):
    """The buffer ended before the structure it announced was complete."""


class BadCrcError(WireError):
    """The frame's CRC32 trailer does not match its contents."""


class BadVersionError(WireError):
    """The frame carries a protocol version this endpoint does not speak."""

    code = ErrorCode.BAD_VERSION


class OversizedError(WireError):
    """A declared length exceeds the deployment's hard limit."""

    code = ErrorCode.OVERSIZED


class BadFrameError(WireError):
    """The frame is structurally invalid (unknown type, malformed payload)."""


class TrailingBytesError(WireError):
    """A decoder consumed the declared structure but bytes were left over."""


class ConnectError(WireError):
    """The client exhausted its connection attempts."""

    code = ErrorCode.INTERNAL


class RemoteError(WireError):
    """The peer answered with an ERROR frame.

    Attributes:
        error_code: the peer's :class:`ErrorCode`.
        retry_after_ms: the peer's retry hint (0 when none was given).
    """

    def __init__(
        self, error_code: ErrorCode, message: str, retry_after_ms: int = 0
    ):
        super().__init__(message)
        self.error_code = error_code
        self.retry_after_ms = retry_after_ms


class BackpressureError(RemoteError):
    """The server's ingest queue shed packets; honor ``retry_after_ms``."""

    def __init__(self, message: str, retry_after_ms: int):
        super().__init__(ErrorCode.BACKPRESSURE, message, retry_after_ms)
