"""The wire-error taxonomy.

Every way a peer can hand us unusable bytes has a dedicated exception, and
all of them derive from :class:`WireError`, so transport code catches one
type and corrupt input can never surface as a bare ``struct.error``,
``IndexError`` or ``ValueError`` from deep inside a decoder.  The decode
errors map one-to-one onto the on-wire ERROR frame codes
(:class:`ErrorCode`), which is what lets a server report *why* it rejected
a frame without leaking anything else about its state.
"""

from __future__ import annotations

import enum

__all__ = [
    "WireError",
    "TruncatedError",
    "BadCrcError",
    "BadVersionError",
    "OversizedError",
    "BadFrameError",
    "TrailingBytesError",
    "ConnectError",
    "PingTimeoutError",
    "RemoteError",
    "BackpressureError",
    "WrongShardError",
    "ErrorCode",
]


class ErrorCode(enum.IntEnum):
    """Machine-readable reason codes carried by ERROR frames."""

    BACKPRESSURE = 1  #: ingest queue shed the batch; retry after the hint
    BAD_FRAME = 2  #: undecodable frame (truncated / bad CRC / bad payload)
    BAD_VERSION = 3  #: protocol version mismatch
    OVERSIZED = 4  #: declared payload exceeds the receiver's limit
    INTERNAL = 5  #: server-side failure unrelated to the bytes received
    WRONG_SHARD = 6  #: batch routed to a shard that does not own its keys


class WireError(Exception):
    """Base class for every wire-protocol failure."""

    #: The ERROR-frame code a server reports for this failure class.
    code: ErrorCode = ErrorCode.BAD_FRAME


class TruncatedError(WireError):
    """The buffer ended before the structure it announced was complete."""


class BadCrcError(WireError):
    """The frame's CRC32 trailer does not match its contents."""


class BadVersionError(WireError):
    """The frame carries a protocol version this endpoint does not speak."""

    code = ErrorCode.BAD_VERSION


class OversizedError(WireError):
    """A declared length exceeds the deployment's hard limit."""

    code = ErrorCode.OVERSIZED


class BadFrameError(WireError):
    """The frame is structurally invalid (unknown type, malformed payload)."""


class TrailingBytesError(WireError):
    """A decoder consumed the declared structure but bytes were left over."""


class ConnectError(WireError):
    """The client exhausted its connection attempts."""

    code = ErrorCode.INTERNAL


class PingTimeoutError(WireError):
    """A health-check PING went unanswered within its deadline.

    Distinct from :class:`ConnectError`: the connection exists but the
    peer is unresponsive -- a liveness prober treats both as "down" but
    logs them differently (a wedged shard vs. an unreachable one).
    """

    code = ErrorCode.INTERNAL


class RemoteError(WireError):
    """The peer answered with an ERROR frame.

    Attributes:
        error_code: the peer's :class:`ErrorCode`.
        retry_after_ms: the peer's retry hint (0 when none was given).
    """

    def __init__(
        self, error_code: ErrorCode, message: str, retry_after_ms: int = 0
    ):
        super().__init__(message)
        self.error_code = error_code
        self.retry_after_ms = retry_after_ms


class BackpressureError(RemoteError):
    """The server's ingest queue shed packets; honor ``retry_after_ms``."""

    def __init__(self, message: str, retry_after_ms: int):
        super().__init__(ErrorCode.BACKPRESSURE, message, retry_after_ms)


class WrongShardError(RemoteError):
    """The shard rejected a batch it does not own.

    Raised client-side when a shard answers ``WRONG_SHARD``: the sender's
    ring view is stale (a shard joined or left since the batch was
    routed).  The router reacts by re-deriving ownership from its current
    ring and resending -- the batch itself is intact, only its address
    was wrong.
    """

    def __init__(self, message: str, retry_after_ms: int = 0):
        super().__init__(ErrorCode.WRONG_SHARD, message, retry_after_ms)
