"""Result containers and ASCII table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["FigureResult", "format_table"]


@dataclass
class FigureResult:
    """One reproduced figure/table: rows plus provenance.

    Attributes:
        figure_id: e.g. ``"fig6"``.
        title: the paper's caption, abbreviated.
        columns: column headers, x-axis first.
        rows: data rows matching ``columns``.
        notes: free-form provenance (preset, runs, expectations).
        extra: machine-readable side outputs (e.g. the ``slo`` block the
            cluster/watchdog sweeps derive from federated telemetry);
            merged verbatim into the run manifest's ``extra`` by the
            experiments CLI.
    """

    figure_id: str
    title: str
    columns: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column headers."""
        return [dict(zip(self.columns, row, strict=True)) for row in self.rows]

    def render(self) -> str:
        """The figure as an ASCII table with a caption and notes."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        lines.append(format_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def format_table(columns: list[str], rows: list[list[Any]]) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rendered)) if rendered else len(columns[i])
        for i in range(len(columns))
    ]
    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(columns), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)
