"""Watchdog fusion vs. PNM-only traceback: detection latency and safety.

The paper's sink identifies a mark-manipulating mole purely from
delivered packets (Section 4); detection latency is bounded by how fast
tamper-stop statistics converge.  The :mod:`repro.watchdog` overhearing
layer adds a second, independent evidence stream: neighbors overhear
each other's forwardings and report inconsistencies, and the sink fuses
those accusations with PNM evidence
(:func:`repro.faults.attribution.fused_accusation_report`).

This sweep quantifies the trade on the paper's linear-chain deployment
(the Figure 6 topology) across marking probability and mole position,
three scenarios per cell:

* **mole** -- one mark-altering forwarder, honest watchers.  Reported:
  PNM-only *stable* detection (the verdict holds from that packet to the
  end of the run) vs. fused detection (the earlier of a corroborated
  watchdog accusation and the PNM detection), both in delivered packets.
  Fused detection is never later than PNM-only by construction, and is
  strictly earlier on average in every cell: a single watcher flags the
  mole within a handful of forwardings, while the sink's tamper-stop
  mass estimate takes tens of packets to stabilize.
* **collusion** -- the mole's downstream neighbor drops relayed
  accusations that name the mole (watched/watcher collusion).  The
  watchdog stream goes dark and fused detection falls back to PNM-only;
  the mole is still caught.
* **framing** -- an honest data plane plus one lying watchdog that
  fabricates accusations against an honest victim.  With no tamper
  evidence the corroboration zone is empty, every fabricated claim is
  rejected, and the fused false-accusation rate is exactly 0.0.

The ``wd_added_false`` column isolates the watchdog's contribution to
false accusations -- confirmed claims against honest nodes.  It must be
0.0 in **every** cell: the fusion rule (corroboration required) means
enabling the watchdog never convicts an honest node that PNM-only would
not have, which is the safety half of the headline claim.
"""

from __future__ import annotations

import random

from repro.adversary.attacks import MarkAlteringAttack
from repro.adversary.moles import ForwardingMole
from repro.adversary.watchdog import AccusationSuppressor, LyingWatchdog
from repro.analysis.overhead import probability_for_target_marks
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.faults import attribute_drops, fused_accusation_report
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.links import LinkModel
from repro.net.overhear import OverhearModel
from repro.net.topology import linear_path_topology
from repro.routing.repair import RepairingRoutingTable
from repro.sim.behaviors import HonestForwarder
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkSimulation
from repro.sim.sources import HonestReportSource
from repro.sim.tracing import PacketTracer
from repro.traceback.sink import TracebackSink
from repro.watchdog import DetectionProbe, WatchdogLayer

__all__ = ["run", "main", "CHAIN_LENGTHS", "TARGET_MARKS", "SCENARIOS"]

#: Forwarder counts for the paper's linear-chain (Fig. 6) deployments.
CHAIN_LENGTHS = (10, 15)

#: Average marks per delivered packet; sets p = target / n following the
#: paper's mark-budget calibration (Section 5).  The sweep deliberately
#: covers the sparse-marking regime (1.5-2 marks per packet), where the
#: sink's tamper-stop statistics converge slowest and overheard evidence
#: buys the most; at 3+ marks per packet PNM-only already converges
#: within a handful of packets and the two paths tie.
TARGET_MARKS = (1.5, 2.0)

#: Adversary configurations swept per (n, p) cell.
SCENARIOS = ("mole", "collusion", "framing")

# (runs per cell, packets per run) per preset.
_WORKLOADS = {"ci": (4, 80), "quick": (6, 120), "full": (10, 160)}

_INTERVAL = 0.05  # seconds between injections
_MASTER = b"watchdog-sweep-master"


def _mean(outcomes: list[dict[str, object]], key: str) -> float:
    """Average of one numeric field across per-run outcome dicts."""
    return sum(float(o[key]) for o in outcomes) / len(outcomes)


def _mole_positions(n: int) -> tuple[int, ...]:
    """Mole placements swept for an ``n``-forwarder chain.

    Node IDs ascend toward the sink (V1 is the source's neighbor), so
    position 3 is an upstream mole -- the regime where the sink's
    tamper-stop statistics converge slowest -- and ``n // 2`` is the
    paper's usual mid-path placement.
    """
    return (3, n // 2)


def _run_once(
    n: int,
    p: float,
    position: int,
    packets: int,
    seed: int,
    scenario: str,
) -> dict[str, object]:
    """One chain deployment under one scenario; returns raw outcomes."""
    topology, source_id = linear_path_topology(n)
    routing = RepairingRoutingTable(topology)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(_MASTER, topology.sensor_nodes())
    scheme = PNMMarking(mark_prob=p)

    def ctx(node_id: int) -> NodeContext:
        return NodeContext(
            node_id=node_id,
            key=keystore[node_id],
            provider=provider,
            rng=random.Random(f"wd-sweep:{seed}:{node_id}"),
        )

    behaviors: dict[int, object] = {
        nid: HonestForwarder(ctx(nid), scheme) for nid in topology.sensor_nodes()
    }
    mole_id: int | None = None
    liars: tuple[LyingWatchdog, ...] = ()
    suppressors: tuple[AccusationSuppressor, ...] = ()
    if scenario in ("mole", "collusion"):
        mole_id = position
        behaviors[mole_id] = ForwardingMole(
            ctx(mole_id), scheme, MarkAlteringAttack(target="first", field="mac")
        )
        if scenario == "collusion":
            # The mole's downstream neighbor sits on the accusation relay
            # path (IDs ascend toward the sink) and drops every
            # accusation naming its partner.
            suppressors = (
                AccusationSuppressor(
                    node=mole_id + 1, protects=frozenset({mole_id})
                ),
            )
    else:  # framing: honest data plane, one fabricating watcher
        liars = (LyingWatchdog(watcher=position, victim=position + 1),)

    sink = TracebackSink(scheme, keystore, provider, topology)
    layer = WatchdogLayer(
        OverhearModel(topology),
        rng=random.Random(f"wd-sweep:layer:{seed}"),
        liars=liars,
        suppressors=suppressors,
    )
    moles = frozenset({mole_id}) if mole_id is not None else frozenset()
    probe = DetectionProbe(sink, layer.sink_log, moles=moles)
    tracer = PacketTracer()
    sim = NetworkSimulation(
        topology=topology,
        routing=routing,
        behaviors=behaviors,
        sink=probe,
        link=LinkModel(base_delay=0.001),
        rng=random.Random(f"wd-sweep:link:{seed}"),
        metrics=MetricsCollector(),
        tracer=tracer,
        watchdog=layer,
    )
    source = HonestReportSource(
        source_id,
        topology.position(source_id),
        random.Random(f"wd-sweep:src:{seed}"),
    )
    sim.add_periodic_source(source, interval=_INTERVAL, count=packets)
    sim.run()

    fused = fused_accusation_report(
        sink, attribute_drops(tracer), layer.sink_log, moles=moles
    )
    honest = set(fused.honest)
    miss = packets + 1  # sentinel: not detected within the budget
    return {
        "delivered": probe.delivered_count,
        "pnm_detect": probe.pnm_stable_detection() or miss,
        "fused_detect": probe.fused_detection() or miss,
        # Accusation->fusion latency SLO: delivered packets between the
        # first accusation reaching the sink and fused conviction; None
        # when either never happened (e.g. framing runs never convict).
        "acc_fusion_latency": probe.accusation_fusion_latency(),
        "confirmed": len(fused.watchdog_confirmed),
        "rejected": len(fused.watchdog_rejected),
        "suppressed": len(layer.suppressed),
        "fused_false_rate": fused.false_accusation_rate,
        # The watchdog's own contribution to false accusations: confirmed
        # claims against honest nodes.  Must be 0.0 everywhere.
        "wd_added_false": (
            sum(1 for node in fused.watchdog_confirmed if node in honest)
            / len(honest)
            if honest
            else 0.0
        ),
    }


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep chains, marking rates, positions, and adversary scenarios."""
    runs, packets = _WORKLOADS.get(preset.name, _WORKLOADS["quick"])
    rows = []
    all_strict = True
    wd_false_clean = True
    framing_clean = True
    fusion_latencies: list[float] = []
    for n in CHAIN_LENGTHS:
        for target in TARGET_MARKS:
            p = probability_for_target_marks(n, target)
            for scenario in SCENARIOS:
                positions = (
                    _mole_positions(n) if scenario == "mole" else (n // 2,)
                )
                for position in positions:
                    outcomes = [
                        _run_once(
                            n,
                            p,
                            position,
                            packets,
                            preset.seed + index,
                            scenario,
                        )
                        for index in range(runs)
                    ]

                    pnm_mean = _mean(outcomes, "pnm_detect")
                    fused_mean = _mean(outcomes, "fused_detect")
                    wd_false = max(float(o["wd_added_false"]) for o in outcomes)
                    wd_false_clean = wd_false_clean and wd_false == 0.0
                    if scenario == "mole":
                        all_strict = all_strict and fused_mean < pnm_mean
                        fusion_latencies.extend(
                            float(o["acc_fusion_latency"])
                            for o in outcomes
                            if o["acc_fusion_latency"] is not None
                        )
                    if scenario == "framing":
                        framing_clean = framing_clean and all(
                            o["fused_false_rate"] == 0.0 for o in outcomes
                        )
                    rows.append(
                        [
                            scenario,
                            n,
                            round(p, 3),
                            position,
                            round(_mean(outcomes, "delivered"), 1),
                            round(pnm_mean, 1),
                            round(fused_mean, 1),
                            sum(int(o["confirmed"]) for o in outcomes),
                            sum(int(o["rejected"]) for o in outcomes),
                            sum(int(o["suppressed"]) for o in outcomes),
                            round(max(
                                float(o["fused_false_rate"]) for o in outcomes
                            ), 3),
                            round(wd_false, 3),
                        ]
                    )
    notes = [
        f"preset={preset.name}; linear chains (Fig. 6 topology), {runs} runs "
        f"per cell, {packets} packets per run, p = target_marks / n",
        "detection in delivered packets; pnm = stable PNM-only conviction, "
        f"fused = min(corroborated accusation, pnm); {packets + 1} means "
        "not detected within the budget",
        "mole rows: fused must beat pnm on average in every cell "
        f"(observed: {'yes' if all_strict else 'NO'})",
        "collusion rows: accusations suppressed en route; fused falls back "
        "to pnm, the mole is still caught",
        "framing rows: honest data plane + lying watchdog; every claim "
        "rejected, fused false-accusation rate exactly 0.0 "
        f"(observed: {'yes' if framing_clean else 'NO'})",
        "wd_added_false = confirmed watchdog claims against honest nodes; "
        f"must be 0.0 in every cell (observed: "
        f"{'yes' if wd_false_clean else 'NO'})",
    ]
    fusion_latency = (
        sum(fusion_latencies) / len(fusion_latencies)
        if fusion_latencies
        else None
    )
    if fusion_latency is not None:
        notes.append(
            "accusation->fusion latency (mole runs, delivered packets "
            "between first accusation at sink and fused conviction): "
            f"mean {fusion_latency:.1f} over {len(fusion_latencies)} runs"
        )
    return FigureResult(
        figure_id="watchdog-sweep",
        title="Watchdog fusion vs. PNM-only: detection latency and safety",
        columns=[
            "scenario",
            "n",
            "p",
            "mole_pos",
            "delivered",
            "pnm_detect",
            "fused_detect",
            "wd_confirmed",
            "wd_rejected",
            "wd_suppressed",
            "fused_false_rate",
            "wd_added_false",
        ],
        rows=rows,
        notes=notes,
        extra={
            "slo": {
                "accusation_fusion_latency": fusion_latency,
                "accusation_fusion_samples": len(fusion_latencies),
            }
        },
    )


def main() -> None:
    """Print the sweep table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
