"""Traceback under churn: delivery, repair, and false accusations.

The paper's guarantees are proved for a static network (Section 2.1).
This sweep quantifies what survives when the network churns: nodes crash
and recover on a seeded schedule (:mod:`repro.faults`), routes repair
around dead hops, and the sink must not mistake benign drop sites for
moles.

For each churn rate the sweep runs the same grid workload twice:

* **honest** -- every node runs the protocol faithfully.  Reported:
  delivery ratio, packets killed by faults, route repairs, and the
  honest-node **false-accusation rate** from
  :func:`repro.faults.attribution.accusation_report`.  Benign faults
  cannot forge MACs and every drop site is fault-explained, so this rate
  must be exactly 0.0 at every churn rate -- the claim the property
  suite (``tests/test_properties/test_faults_precision.py``) fuzzes.
* **mole** -- one mid-path forwarder runs a mark-altering attack
  (invalid MACs: tamper evidence).  Reported: whether the sink still
  identifies a suspect and whether the suspect neighborhood contains the
  mole (the paper's one-hop localization), plus the false-accusation
  rate with the mole excluded from the honest set.
"""

from __future__ import annotations

import random

from repro.adversary.attacks import MarkAlteringAttack
from repro.adversary.moles import ForwardingMole
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.faults import FaultInjector, FaultSchedule, accusation_report, attribute_drops
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.links import LinkModel
from repro.net.topology import grid_topology
from repro.routing.repair import RepairingRoutingTable
from repro.sim.behaviors import HonestForwarder
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkSimulation
from repro.sim.sources import HonestReportSource
from repro.obs.profiling import get_default_provider
from repro.sim.tracing import PacketTracer
from repro.traceback.sink import TracebackSink

__all__ = ["run", "main", "CHURN_RATES"]

#: Crash events per sensor per unit virtual time, swept low to high.
CHURN_RATES = (0.0, 0.05, 0.15, 0.3)

# (grid side, packets injected) per preset.
_WORKLOADS = {"ci": (4, 40), "quick": (5, 100), "full": (6, 240)}

_INTERVAL = 0.05  # seconds between injections
_MASTER = b"faults-sweep-master"


def _run_once(
    grid_side: int,
    packets: int,
    churn_rate: float,
    seed: int,
    mole: bool,
) -> dict[str, object]:
    """One simulated deployment under one churn rate; returns raw outcomes."""
    topology = grid_topology(grid_side, grid_side, sink_at="corner")
    routing = RepairingRoutingTable(topology)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(_MASTER, topology.sensor_nodes())
    scheme = PNMMarking(mark_prob=0.5)
    source_id = max(
        topology.sensor_nodes(), key=lambda node: (routing.hop_count(node), node)
    )
    path = routing.path_to_sink(source_id)
    mole_id = path[len(path) // 2] if mole else None

    def ctx(node_id: int) -> NodeContext:
        return NodeContext(
            node_id=node_id,
            key=keystore[node_id],
            provider=provider,
            rng=random.Random(f"faults:{seed}:{node_id}"),
        )

    behaviors: dict[int, object] = {
        nid: HonestForwarder(ctx(nid), scheme) for nid in topology.sensor_nodes()
    }
    if mole_id is not None:
        behaviors[mole_id] = ForwardingMole(
            ctx(mole_id), scheme, MarkAlteringAttack(target="first", field="mac")
        )

    sink = TracebackSink(scheme, keystore, provider, topology)
    # The span bridge engages only under an observed run (``--obs-dir``);
    # the NOOP provider carries no tracer, so spans stay off by default.
    tracer = PacketTracer(spans=get_default_provider().tracer)
    sim = NetworkSimulation(
        topology=topology,
        routing=routing,
        behaviors=behaviors,
        sink=sink,
        link=LinkModel(base_delay=0.001),
        rng=random.Random(f"faults:link:{seed}"),
        metrics=MetricsCollector(),
        tracer=tracer,
    )

    duration = packets * _INTERVAL
    protect = {source_id} | ({mole_id} if mole_id is not None else set())
    schedule = FaultSchedule.random_churn(
        topology,
        rate=churn_rate,
        duration=duration,
        rng=random.Random(f"faults:churn:{seed}:{churn_rate}"),
        protect=protect,
    )
    injector = FaultInjector(sim, schedule)
    injector.arm()

    source = HonestReportSource(
        source_id, topology.position(source_id), random.Random(f"faults:src:{seed}")
    )
    sim.add_periodic_source(source, interval=_INTERVAL, count=packets)
    sim.run()

    attribution = attribute_drops(tracer, injector)
    moles = frozenset({mole_id}) if mole_id is not None else frozenset()
    report = accusation_report(sink, attribution, moles=moles)

    verdict = sink.verdict()
    localized = (
        mole_id is not None
        and verdict.identified
        and verdict.suspect is not None
        and mole_id in verdict.suspect.members
    )
    return {
        "delivery_ratio": sim.metrics.delivery_ratio(),
        "faulted": sim.metrics.packets_faulted,
        "repairs": attribution.repairs,
        "crashes": injector.counts().get("crash", 0),
        "false_rate": report.false_accusation_rate,
        "false_accused": report.false_accusations,
        "identified": verdict.identified,
        "localized": localized,
    }


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep churn rates; tabulate delivery, repair, and accusation outcomes."""
    grid_side, packets = _WORKLOADS.get(preset.name, _WORKLOADS["quick"])
    rows = []
    all_honest_clean = True
    for rate in CHURN_RATES:
        honest = _run_once(grid_side, packets, rate, preset.seed, mole=False)
        attacked = _run_once(grid_side, packets, rate, preset.seed, mole=True)
        all_honest_clean = all_honest_clean and honest["false_rate"] == 0.0
        rows.append(
            [
                rate,
                honest["crashes"],
                round(float(honest["delivery_ratio"]), 3),
                honest["faulted"],
                honest["repairs"],
                round(float(honest["false_rate"]), 3),
                bool(attacked["identified"]),
                bool(attacked["localized"]),
                round(float(attacked["false_rate"]), 3),
            ]
        )
    notes = [
        f"preset={preset.name}; {grid_side}x{grid_side} grid, {packets} packets "
        f"per run, PNM mark_prob=0.5, repairing routes (retry+backoff)",
        "honest runs: benign churn only -- false-accusation rate must be 0.0 "
        f"at every rate (observed: {'yes' if all_honest_clean else 'NO'})",
        "mole runs: one mid-path mark-altering mole; 'localized' means the "
        "suspect neighborhood contains the mole (one-hop precision)",
    ]
    return FigureResult(
        figure_id="faults-sweep",
        title="Traceback under churn: delivery, repair, false accusations",
        columns=[
            "churn_rate",
            "crashes",
            "delivery_ratio",
            "faulted",
            "repairs",
            "false_acc_rate",
            "mole_identified",
            "mole_localized",
            "false_acc_rate_mole",
        ],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the sweep table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
