"""Cluster scale-out: sharded sink throughput vs a single shard.

The :mod:`repro.service` hot-set resolver works only while a shard's
*working set* -- the distinct markers of the routes it serves -- fits its
``hot_capacity``.  One sink serving many source regions interleaved
round-robin thrashes: every packet's route was evicted since its last
visit, so the verifier pays the exhaustive brute-force table (all ``N``
keys, Section 4.2) per packet.  Region-sharding the same stream across a
:class:`~repro.cluster.ShardRing` gives each shard a couple of routes
that *do* fit, so shards stay warm and pay only the bounded search.

That is the honest single-core argument for the cluster: partitioning
the resolver working set, not parallelism.  This sweep drives identical
multi-source streams through 1/2/4-shard loopback clusters and reports
throughput, speedup, and merged-verdict parity (the merged verdict must
be byte-identical across shard counts -- same canonical JSON).
"""

from __future__ import annotations

import random
import time

from repro.cluster.coordinator import verdict_json
from repro.cluster.harness import Batch, ClusterResult, run_cluster
from repro.cluster.ring import region_shard_key
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.obs.profiling import ObsProvider
from repro.obs.spans import Tracer
from repro.obs.telemetry import compute_cluster_slo, federate_snapshots
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.topology import Topology, grid_topology
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report
from repro.routing.tree import build_routing_tree
from repro.traceback.sink import TracebackSink

__all__ = ["run", "build_cluster_workload", "make_sink_factory", "main"]

# (grid side, packets, sources) per preset.
_WORKLOADS = {"ci": (12, 64, 4), "quick": (20, 96, 8), "full": (20, 240, 8)}

#: Per-shard hot-set bound used by the sweep: sized so every shard's
#: route union fits (max ~44 nodes on the quick/full grid) but the
#: single sink's 8-route union (~84 nodes) never does -- the working-set
#: premise above.
SWEEP_HOT_CAPACITY = 56


def build_cluster_workload(
    grid_side: int,
    packets: int,
    sources: int = 8,
    batch_size: int = 1,
    master_secret: bytes = b"cluster-sweep",
    mixed_batches: bool = False,
) -> tuple[Topology, KeyStore, list[Batch], list[int]]:
    """A grid deployment plus a multi-region, round-robin batch schedule.

    Picks ``sources`` spread across vertical strips of the grid (in each
    strip, the node farthest from the sink), marks each source's reports
    along its own route, and interleaves the streams round-robin: batch
    ``i`` carries ``batch_size`` packets from source ``i % sources``.
    Every report's location is its source's position, so
    :func:`~repro.cluster.ring.region_shard_key` keeps each route on one
    shard while the interleaving defeats a single sink's hot-set.

    With ``mixed_batches=True`` each batch instead carries one packet
    from *every* live source (one full round-robin round).  The
    per-packet arrival order -- and therefore the hot-set access pattern
    -- is identical; only the framing granularity changes, which is how
    the throughput benchmark keeps wire round-trips from drowning out
    resolver cost.  ``batch_size`` is ignored in this mode.

    Returns:
        ``(topology, keystore, batches, source_nodes)``.
    """
    if sources < 1:
        raise ValueError(f"sources must be >= 1, got {sources}")
    scheme = PNMMarking(mark_prob=1.0)
    provider = HmacProvider()
    topology = grid_topology(grid_side, grid_side)
    keystore = KeyStore.from_master_secret(master_secret, topology.sensor_nodes())
    routing = build_routing_tree(topology)

    # One source per vertical strip: the strip's farthest-from-sink node.
    strip_width = grid_side / sources
    best_per_strip: dict[int, int] = {}
    for node in topology.sensor_nodes():
        x, _ = topology.position(node)
        strip = min(int(x / strip_width), sources - 1)
        incumbent = best_per_strip.get(strip)
        if incumbent is None or routing.hop_count(node) > routing.hop_count(
            incumbent
        ):
            best_per_strip[strip] = node
    source_nodes = [best_per_strip[strip] for strip in sorted(best_per_strip)]

    forwarders = {src: routing.forwarders_between(src) for src in source_nodes}
    streams: dict[int, list[MarkedPacket]] = {src: [] for src in source_nodes}
    per_source = -(-packets // len(source_nodes))  # ceil
    for src in source_nodes:
        for t in range(per_source):
            packet = MarkedPacket(
                report=Report(
                    event=f"cluster:{src}:{t}".encode(),
                    location=topology.position(src),
                    timestamp=t,
                )
            )
            for node_id in forwarders[src]:
                context = NodeContext(
                    node_id=node_id,
                    key=keystore[node_id],
                    provider=provider,
                    rng=random.Random(f"cluster:{node_id}"),
                )
                packet = scheme.on_forward(context, packet)
            streams[src].append(packet)

    batches: list[Batch] = []
    emitted = 0
    if mixed_batches:
        while emitted < packets:
            chunk: list[MarkedPacket] = []
            for src in source_nodes:
                if streams[src] and emitted + len(chunk) < packets:
                    chunk.append(streams[src].pop(0))
            if not chunk:
                break
            # One delivering node per wire batch; with every mark valid
            # (mark_prob=1) the verdict never consults it.
            batches.append((chunk, forwarders[source_nodes[0]][-1]))
            emitted += len(chunk)
        return topology, keystore, batches, source_nodes
    cursor = 0
    while emitted < packets:
        src = source_nodes[cursor % len(source_nodes)]
        cursor += 1
        stream = streams[src]
        if not stream:
            continue
        take = min(batch_size, len(stream), packets - emitted)
        chunk, streams[src] = stream[:take], stream[take:]
        batches.append((chunk, forwarders[src][-1]))
        emitted += take
    return topology, keystore, batches, source_nodes


def make_sink_factory(topology: Topology, keystore: KeyStore):
    """A factory producing identical fresh sinks (one per shard)."""

    def factory() -> TracebackSink:
        return TracebackSink(
            PNMMarking(mark_prob=1.0), keystore, HmacProvider(), topology
        )

    return factory


def _time_cluster(
    topology: Topology,
    keystore: KeyStore,
    batches: list[Batch],
    shards: int,
    hot_capacity: int,
) -> tuple[float, ClusterResult]:
    start = time.perf_counter()
    result = run_cluster(
        make_sink_factory(topology, keystore),
        PNMMarking(mark_prob=1.0).fmt,
        topology,
        batches,
        shard_ids=range(shards),
        shard_key=region_shard_key(cell_size=1.0),
        service_kwargs={"hot_capacity": hot_capacity, "capacity": 4096},
    )
    return time.perf_counter() - start, result


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep shard counts over one interleaved multi-region stream."""
    grid_side, packets, sources = _WORKLOADS.get(
        preset.name, _WORKLOADS["quick"]
    )
    topology, keystore, batches, source_nodes = build_cluster_workload(
        grid_side, packets, sources=sources
    )
    total = sum(len(chunk) for chunk, _ in batches)

    rows = []
    baseline_s: float | None = None
    verdicts: list[str] = []
    for shards in (1, 2, 4):
        elapsed, result = _time_cluster(
            topology, keystore, batches, shards, SWEEP_HOT_CAPACITY
        )
        verdicts.append(verdict_json(result.verdict))
        if baseline_s is None:
            baseline_s = elapsed
        rows.append(
            [
                shards,
                total,
                round(elapsed, 4),
                round(total / elapsed, 1),
                round(baseline_s / elapsed, 2),
                result.evidence.fallback_searches,
            ]
        )
    parity = len(set(verdicts)) == 1

    # One more 4-shard pass with per-shard telemetry attached: the
    # federated registry is what ``pnm-cluster status`` reads live, and
    # the derived SLO block rides into the run manifest through
    # ``FigureResult.extra``.  Kept out of the timed loop so attaching
    # registries can never skew the throughput rows.
    observed = run_cluster(
        make_sink_factory(topology, keystore),
        PNMMarking(mark_prob=1.0).fmt,
        topology,
        batches,
        shard_ids=range(4),
        shard_key=region_shard_key(cell_size=1.0),
        service_kwargs={"hot_capacity": SWEEP_HOT_CAPACITY, "capacity": 4096},
        shard_obs_factory=lambda sid: ObsProvider(
            tracer=Tracer(id_prefix=f"sh{sid}-")
        ),
    )
    slo = compute_cluster_slo(
        federate_snapshots(observed.telemetry),
        verdict=observed.verdict,
        router_stats=observed.stats["router"],
    )
    telemetry_parity = verdict_json(observed.verdict) == verdicts[-1]

    notes = [
        f"preset={preset.name}; {grid_side}x{grid_side} grid, "
        f"{len(source_nodes)} source regions interleaved round-robin, "
        f"hot_capacity={SWEEP_HOT_CAPACITY} per shard",
        "speedup = single-shard wall time / N-shard wall time "
        "(single core: the win is working-set fit, not parallelism)",
        f"merged verdicts byte-identical across shard counts: {parity}",
        "slo block (manifest extra) derived from a telemetry-attached "
        f"4-shard rerun; verdict parity with bare run: {telemetry_parity}",
    ]
    return FigureResult(
        figure_id="cluster-sweep",
        title="Sharded sink cluster: ingest throughput vs shard count",
        columns=[
            "shards",
            "packets",
            "seconds",
            "packets_per_s",
            "speedup",
            "fallback_searches",
        ],
        rows=rows,
        notes=notes,
        extra={
            "slo": slo.as_dict(),
            "telemetry_verdict_parity": telemetry_parity,
        },
    )


def main() -> None:
    """Print the sweep table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
