"""Experiment harnesses: one module per paper figure/claim.

Every module exposes ``run(preset) -> FigureResult`` and a ``main()`` that
prints the same rows/series the paper reports:

* :mod:`repro.experiments.fig4` -- analytical mark-collection probability.
* :mod:`repro.experiments.fig5` -- simulated mark-collection percentage.
* :mod:`repro.experiments.fig6` -- identification failures vs path length.
* :mod:`repro.experiments.fig7` -- packets needed to identify the source.
* :mod:`repro.experiments.security_matrix` -- scheme x attack outcomes
  (the Sections 3 and 5 qualitative claims).
* :mod:`repro.experiments.sink_cost` -- Section 4.2's feasibility numbers.
* :mod:`repro.experiments.ablations` -- design-choice sweeps (marking
  probability, resolver bounding, mark truncation, route dynamics).
* :mod:`repro.experiments.faults_sweep` -- traceback under churn:
  delivery, route repairs, and honest false-accusation rates across
  fault schedules (see ``docs/faults.md``).

Run any of them via ``python -m repro.experiments.<name>`` or the
``pnm-experiment`` CLI.
"""

from repro.experiments.presets import CI, FULL, QUICK, Preset, preset_by_name
from repro.experiments.tables import FigureResult

__all__ = ["Preset", "FULL", "QUICK", "CI", "preset_by_name", "FigureResult"]
