"""Figure 7: average packets needed to identify the source.

"The average number of packets needed to unequivocally identify the
source, as a function of total path length", with 800 packets received per
run, averaged over the runs where identification succeeds.  Paper reading:
~55 packets on average for paths under 20 nodes; ~220 packets at 40 nodes.
The headline claim -- a mole 20 hops out is caught within about 50 packets
-- is this curve's low end.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.identification import expected_packets_to_identify
from repro.analysis.overhead import probability_for_target_marks
from repro.experiments.fastpath import identification_times, simulate_first_times
from repro.experiments.presets import QUICK, Preset
from repro.experiments.stats import mean_interval
from repro.experiments.tables import FigureResult

__all__ = ["PATH_LENGTHS", "run", "main"]

PATH_LENGTHS = tuple(range(5, 55, 5))


def run(preset: Preset = QUICK, target_marks: float = 3.0) -> FigureResult:
    """Simulate Figure 7's identification-time curve."""
    columns = [
        "path_length",
        "avg_packets_to_identify",
        "ci95_half_width",
        "analytic_expectation",
        "success_rate",
    ]
    rows = []
    for n in PATH_LENGTHS:
        p = probability_for_target_marks(n, target_marks)
        times = simulate_first_times(
            n=n,
            p=p,
            packets=preset.budget,
            runs=preset.runs_fig7,
            seed=preset.seed + 2000 + n,
        )
        ident = identification_times(times)
        successes = ident[~np.isnan(ident)]
        if successes.size:
            interval = mean_interval([float(v) for v in successes])
            avg, half = interval.estimate, interval.half_width
        else:
            avg, half = float("nan"), float("nan")
        rows.append(
            [
                n,
                round(avg, 1),
                round(half, 1),
                round(expected_packets_to_identify(n, p), 1),
                round(successes.size / preset.runs_fig7, 3),
            ]
        )

    by_n = {r[0]: r[1] for r in rows}
    notes = [
        f"preset={preset.name}; {preset.runs_fig7} runs per path length, "
        f"budget {preset.budget} packets; averages over successful runs",
        f"n=20: {by_n.get(20)} packets (paper: ~55 for paths up to 20 nodes)",
        f"n=40: {by_n.get(40)} packets (paper: ~220)",
    ]
    return FigureResult(
        figure_id="fig7",
        title="Average packets needed to unequivocally identify the source",
        columns=columns,
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
