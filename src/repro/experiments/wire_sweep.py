"""Wire-protocol overhead: loopback TCP sink vs the in-process service.

The deployment model in Section 2 keeps the sink off-mote: reports reach
it over a real network, so the codec + framing + asyncio path sits between
the sensor field and every verdict.  This sweep quantifies what that path
costs.  The same workload (one multi-hop route, ``packets`` distinct
reports) is pushed through

* the in-process :class:`~repro.service.SinkIngestService` (the
  ``service-sweep`` baseline), and
* a :class:`~repro.wire.server.SinkServer` on an ephemeral loopback port,
  fed by a pipelined :class:`~repro.wire.client.SinkClient` in batches.

The headline column is ``vs_inproc`` — loopback throughput as a fraction
of in-process throughput; ``benchmarks/test_bench_wire.py`` gates it at
0.5x.  Both paths must produce the serial sink's verdict byte-for-byte
(the service determinism contract extended over TCP).
"""

from __future__ import annotations

import time

from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.service_sweep import build_workload
from repro.experiments.tables import FigureResult
from repro.marking.pnm import PNMMarking
from repro.packets.packet import MarkedPacket
from repro.service import SinkIngestService
from repro.traceback.sink import TracebackSink
from repro.wire.loopback import run_loopback
from repro.wire.messages import WireVerdict

__all__ = ["run", "main", "measure_wire_overhead"]

# (grid side, packet count, batch size) per preset; batching exercises the
# client's pipelined sends rather than one giant frame.
_WORKLOADS = {"ci": (10, 60, 20), "quick": (12, 120, 30), "full": (16, 360, 60)}


def _fresh_service(topology, keystore, capacity: int) -> SinkIngestService:
    sink = TracebackSink(
        PNMMarking(mark_prob=1.0), keystore, HmacProvider(), topology
    )
    return SinkIngestService(sink, capacity=capacity, workers=0)


def _time_in_process(
    topology, keystore, stream: list[MarkedPacket], delivering: int
) -> tuple[float, TracebackSink]:
    service = _fresh_service(topology, keystore, len(stream))
    try:
        start = time.perf_counter()
        for packet in stream:
            service.submit(packet, delivering)
        service.flush()
        return time.perf_counter() - start, service.sink
    finally:
        service.close(drain=False)


def _time_loopback(
    topology, keystore, stream: list[MarkedPacket], delivering: int, batch_size: int
) -> tuple[float, TracebackSink, WireVerdict]:
    service = _fresh_service(topology, keystore, len(stream))
    fmt = PNMMarking(mark_prob=1.0).fmt
    batches = [
        (stream[i : i + batch_size], delivering)
        for i in range(0, len(stream), batch_size)
    ]
    try:
        start = time.perf_counter()
        result = run_loopback(service, fmt, batches, ping=False, pipelined=True)
        elapsed = time.perf_counter() - start
        return elapsed, service.sink, result.final_verdict
    finally:
        service.close(drain=False)


def measure_wire_overhead(
    grid_side: int, packets: int, batch_size: int
) -> dict[str, float | bool]:
    """One comparable measurement; shared with ``benchmarks/test_bench_wire``.

    Returns in-process and loopback elapsed seconds plus a ``parity`` flag
    asserting both paths reproduced the serial sink's verdict.
    """
    topology, keystore, stream, delivering = build_workload(grid_side, packets)

    reference = TracebackSink(
        PNMMarking(mark_prob=1.0), keystore, HmacProvider(), topology
    )
    for packet in stream:
        reference.receive(packet, delivering)
    expected = reference.verdict()

    inproc_s, inproc_sink = _time_in_process(topology, keystore, stream, delivering)
    wire_s, wire_sink, wire_verdict = _time_loopback(
        topology, keystore, stream, delivering, batch_size
    )
    parity = (
        inproc_sink.verdict() == expected
        and wire_sink.verdict() == expected
        and wire_verdict.identified == expected.identified
        and wire_verdict.packets_used == expected.packets_used
        and wire_verdict.suspect_neighborhood() == expected.suspect
    )
    return {"in_process_s": inproc_s, "loopback_s": wire_s, "parity": parity}


def run(preset: Preset = QUICK) -> FigureResult:
    """Compare loopback-TCP and in-process ingest throughput."""
    grid_side, packets, batch_size = _WORKLOADS.get(
        preset.name, _WORKLOADS["quick"]
    )
    measured = measure_wire_overhead(grid_side, packets, batch_size)
    inproc_s = float(measured["in_process_s"])
    wire_s = float(measured["loopback_s"])
    rows = [
        [
            "service-inproc",
            packets,
            round(inproc_s, 4),
            round(packets / inproc_s, 1),
            1.0,
        ],
        [
            "wire-loopback",
            packets,
            round(wire_s, 4),
            round(packets / wire_s, 1),
            round(inproc_s / wire_s, 2),
        ],
    ]
    notes = [
        f"preset={preset.name}; {grid_side}x{grid_side} grid, {packets} "
        f"reports in pipelined batches of {batch_size} over loopback TCP",
        "vs_inproc is loopback throughput relative to the in-process "
        "service (codec + framing + asyncio overhead)",
        f"verdict parity with the serial sink on both paths: "
        f"{measured['parity']}",
    ]
    return FigureResult(
        figure_id="wire-sweep",
        title="Wire-protocol overhead: loopback sink server vs in-process",
        columns=["config", "packets", "seconds", "packets_per_s", "vs_inproc"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the sweep table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
