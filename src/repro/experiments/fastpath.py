"""Vectorized Monte Carlo engine for the paper's statistical figures.

Figures 5-7 need millions of packet trials (5000 runs x 800 packets x up
to 50 hops), which the object-level pipeline would take hours to produce
in pure Python.  On the paper's honest evaluation path (a source mole
injecting through honest forwarders, no manipulation) the entire process
reduces to independent Bernoulli(p) marking coins, so it can be simulated
exactly with numpy and interpreted with two per-node first-passage times:

* ``first_obs[j]`` -- first packet in which forwarder ``V_{j+1}`` marks
  (its mark is *observed* by the sink).
* ``first_inc[j]`` -- first packet in which ``V_{j+1}`` marks together
  with at least one node upstream of it; in that packet the mark directly
  before ``V_{j+1}``'s belongs to an upstream node, giving the precedence
  graph an *incoming edge* for ``V_{j+1}``.

The sink has unequivocally (and stably) identified the source once
``V_1`` is observed and every other observed forwarder has an incoming
edge -- then and only then does the precedence graph have a unique most
upstream node.  ``tests/test_experiments/test_fastpath_agreement.py``
cross-validates these statistics against the full object pipeline.

Index convention: times are 0-based packet indices; ``-1`` means "never
within the budget".  Reported packet *counts* are index + 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FirstPassageTimes",
    "simulate_first_times",
    "identification_times",
    "failure_counts",
    "collection_curve",
]

_DEFAULT_CHUNK = 256


@dataclass
class FirstPassageTimes:
    """Per-run first-passage statistics of the marking process.

    Attributes:
        n: path length (forwarders).
        p: marking probability.
        packets: budget simulated.
        first_obs: ``(runs, n)`` int32; first packet where node j marked.
        first_inc: ``(runs, n)`` int32; first packet where node j marked
            alongside an upstream marker.  Column 0 is always ``-1``
            (``V_1`` has no upstream forwarder).
    """

    n: int
    p: float
    packets: int
    first_obs: np.ndarray
    first_inc: np.ndarray

    @property
    def runs(self) -> int:
        return self.first_obs.shape[0]


def _first_true(mask: np.ndarray) -> np.ndarray:
    """First True index along axis 1, ``-1`` when the column is all False."""
    hit = mask.any(axis=1)
    idx = mask.argmax(axis=1).astype(np.int32)
    idx[~hit] = -1
    return idx


def simulate_first_times(
    n: int,
    p: float,
    packets: int,
    runs: int,
    seed: int = 0,
    chunk: int = _DEFAULT_CHUNK,
) -> FirstPassageTimes:
    """Simulate ``runs`` independent paths (see module docstring).

    Args:
        n: forwarders on the path.
        p: per-node marking probability.
        packets: packets injected per run.
        runs: Monte Carlo repetitions.
        seed: RNG seed (numpy PCG64).
        chunk: runs simulated per memory block.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if packets < 1 or runs < 1:
        raise ValueError("packets and runs must be >= 1")
    rng = np.random.default_rng(seed)
    obs_parts = []
    inc_parts = []
    remaining = runs
    while remaining > 0:
        block = min(chunk, remaining)
        marks = rng.random((block, packets, n)) < p
        # upstream_any[t, j] == marks[t, :j].any(): cumulative count minus self.
        upstream_any = (np.cumsum(marks, axis=2) - marks) > 0
        incoming = marks & upstream_any
        obs_parts.append(
            np.stack([_first_true(marks[:, :, j]) for j in range(n)], axis=1)
        )
        inc_parts.append(
            np.stack([_first_true(incoming[:, :, j]) for j in range(n)], axis=1)
        )
        remaining -= block
    return FirstPassageTimes(
        n=n,
        p=p,
        packets=packets,
        first_obs=np.concatenate(obs_parts, axis=0),
        first_inc=np.concatenate(inc_parts, axis=0),
    )


def identification_times(times: FirstPassageTimes) -> np.ndarray:
    """Packets needed for stable unequivocal identification, per run.

    A run succeeds when ``V_1`` was observed and every observed forwarder
    acquired an incoming edge within the budget; its identification time
    is the packet count at which the last of those conditions became true
    (and, the process being monotone, stayed true).  Failed runs yield
    ``nan``.
    """
    obs, inc = times.first_obs, times.first_inc
    observed = obs >= 0
    # Failure: V_1 never observed, or some observed node never ordered.
    lacking = observed[:, 1:] & (inc[:, 1:] < 0)
    failed = (~observed[:, 0]) | lacking.any(axis=1)

    # Stabilization: last of {V_1 observed, each observed node ordered}.
    inc_effective = np.where(observed[:, 1:], inc[:, 1:], -1)
    last_needed = np.maximum(
        obs[:, 0],
        inc_effective.max(axis=1, initial=-1),
    ).astype(np.float64)
    result = last_needed + 1.0  # index -> packet count
    result[failed] = np.nan
    return result


def failure_counts(times: FirstPassageTimes, budgets: list[int]) -> dict[int, int]:
    """Runs (out of ``times.runs``) not identified within each budget.

    This is Figure 6's statistic: the run fails at budget ``B`` when the
    end state after ``B`` packets does not single out ``V_1`` -- either
    ``V_1`` was not observed, or some node observed within ``B`` packets
    still lacks an upstream edge.
    """
    obs, inc = times.first_obs, times.first_inc
    counts: dict[int, int] = {}
    for budget in budgets:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if budget > times.packets:
            raise ValueError(
                f"budget {budget} exceeds simulated packets {times.packets}"
            )
        v1_ok = (obs[:, 0] >= 0) & (obs[:, 0] < budget)
        observed = (obs[:, 1:] >= 0) & (obs[:, 1:] < budget)
        ordered = (inc[:, 1:] >= 0) & (inc[:, 1:] < budget)
        dangling = (observed & ~ordered).any(axis=1)
        identified = v1_ok & ~dangling
        counts[budget] = int((~identified).sum())
    return counts


def collection_curve(
    n: int,
    p: float,
    packets: int,
    runs: int,
    seed: int = 0,
    chunk: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Figure 5's statistic: mean fraction of forwarders whose marks the
    sink has collected within the first ``x`` packets, for ``x = 1..packets``.

    Returns:
        Array of length ``packets``; entry ``x-1`` is the average fraction
        after ``x`` packets.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    rng = np.random.default_rng(seed)
    total = np.zeros(packets, dtype=np.float64)
    remaining = runs
    while remaining > 0:
        block = min(chunk, remaining)
        marks = rng.random((block, packets, n)) < p
        seen = np.maximum.accumulate(marks, axis=1)
        total += seen.sum(axis=2).sum(axis=0) / n
        remaining -= block
    return total / runs
