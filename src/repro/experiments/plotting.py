"""Dependency-free ASCII charts for experiment series.

The figure experiments print tables; for eyeballing shapes in a terminal
(and in EXPERIMENTS.md code blocks) a rough chart is often clearer.  These
renderers use plain ASCII so output survives logs and diffs.
"""

from __future__ import annotations

from repro.experiments.tables import FigureResult

__all__ = ["ascii_chart", "render_figure_chart"]


def ascii_chart(
    x: list[float],
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render line series as an ASCII scatter chart.

    Args:
        x: shared x values (ascending).
        series: label -> y values (same length as ``x``).  Each series
            plots with its own glyph.
        width: chart width in columns.
        height: chart height in rows.
        x_label: axis annotation.
        y_label: axis annotation.

    Raises:
        ValueError: on empty or mismatched inputs.
    """
    if not x:
        raise ValueError("x must not be empty")
    if not series:
        raise ValueError("need at least one series")
    for label, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {label!r} has {len(ys)} points, x has {len(x)}"
            )
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")

    glyphs = "*o+x#@%&"
    all_y = [v for ys in series.values() for v in ys if v == v]  # drop NaN
    if not all_y:
        raise ValueError("no finite y values to plot")
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, ys) in enumerate(sorted(series.items())):
        glyph = glyphs[idx % len(glyphs)]
        for xv, yv in zip(x, ys, strict=True):
            if yv != yv:  # NaN
                continue
            col = round((xv - x_min) / (x_max - x_min) * (width - 1))
            row = round((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        elif i == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row_cells)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_min:g}".ljust(width // 2) + f"{x_max:g}".rjust(width // 2)
    lines.append(" " * margin + "  " + x_axis)
    lines.append(" " * margin + "  " + x_label.center(width))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {label}"
        for i, label in enumerate(sorted(series))
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def render_figure_chart(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
) -> str:
    """Chart a :class:`FigureResult` whose first column is the x axis.

    Non-numeric columns are skipped; at least one numeric series must
    remain.
    """
    x_name = result.columns[0]
    x = [float(v) for v in result.column(x_name)]
    series: dict[str, list[float]] = {}
    for name in result.columns[1:]:
        values = result.column(name)
        try:
            series[name] = [float(v) for v in values]
        except (TypeError, ValueError):
            continue
    if not series:
        raise ValueError(f"{result.figure_id} has no numeric series to chart")
    chart = ascii_chart(
        x,
        series,
        width=width,
        height=height,
        x_label=x_name,
        y_label="",
    )
    return f"== {result.figure_id}: {result.title} ==\n{chart}"
