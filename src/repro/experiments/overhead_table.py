"""Marking overhead across schemes and path lengths.

Section 4's motivation for going probabilistic: basic nested marking puts
one mark on every packet at every hop, so a packet that crosses ``n`` hops
carries ``n`` marks -- "in large sensor networks this is not efficient" --
while PNM carries ``n*p = 3`` marks regardless of path length, trading
single-packet traceback for a ~50-packet traceback.

This experiment measures the real numbers end to end: actual transmitted
bytes per delivered packet (averaged over a run of the genuine pipeline,
marks and all), the radio-energy proxy per packet, and the packets the
sink needs to identify the source -- the complete tradeoff surface.
"""

from __future__ import annotations

from repro.analysis.identification import expected_packets_to_identify
from repro.core.build import build_scenario
from repro.core.scenario import Scenario
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult

__all__ = ["PATH_LENGTHS", "run", "main"]

PATH_LENGTHS = (10, 20, 30)
_SCHEMES = ("nested", "pnm")
_PACKETS = 120


def run(preset: Preset = QUICK) -> FigureResult:
    """Measure bytes/energy/traceback-speed per (scheme, path length)."""
    columns = [
        "scheme",
        "path_length",
        "avg_marks_delivered",
        "avg_packet_bytes_delivered",
        "total_bytes_per_packet",
        "energy_mJ_per_packet",
        "packets_to_identify",
    ]
    rows = []
    for scheme in _SCHEMES:
        for n in PATH_LENGTHS:
            sc = Scenario(
                n_forwarders=n, scheme=scheme, attack="none", seed=preset.seed
            )
            built = build_scenario(sc)
            delivered_marks = 0
            delivered_bytes = 0
            for _ in range(_PACKETS):
                verification = built.pipeline.push()
                assert verification is not None
                delivered_marks += verification.packet.num_marks
                delivered_bytes += verification.packet.wire_len
            metrics = built.pipeline.metrics
            if scheme == "nested":
                to_identify = 1.0  # single-packet traceback
            else:
                to_identify = expected_packets_to_identify(
                    n, sc.resolved_mark_prob
                )
            rows.append(
                [
                    scheme,
                    n,
                    round(delivered_marks / _PACKETS, 2),
                    round(delivered_bytes / _PACKETS, 1),
                    round(metrics.total_bytes / _PACKETS, 1),
                    round(1e3 * metrics.energy_spent() / _PACKETS, 3),
                    round(to_identify, 1),
                ]
            )
    return FigureResult(
        figure_id="overhead",
        title="Marking overhead vs traceback speed (Section 4's tradeoff)",
        columns=columns,
        rows=rows,
        notes=[
            f"{_PACKETS} packets per cell through the real pipeline "
            f"(report 20 bytes; nested mark 6 bytes, PNM mark 8 bytes)",
            "nested: per-delivered-packet bytes grow linearly with path "
            "length but one packet suffices to trace; PNM: constant ~3 "
            "marks regardless of length, traced within a few dozen packets",
        ],
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
