"""``pnm-experiment``: command-line front end for the experiment harness.

Examples::

    pnm-experiment fig6 --preset quick
    pnm-experiment fig7 --preset full        # the paper's exact run sizes
    pnm-experiment security-matrix
    pnm-experiment all --preset ci
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Callable

from repro import obs as obs_pkg
from repro.experiments import (
    ablations,
    algebraic_sweep,
    approaches,
    cluster_sweep,
    faults_sweep,
    fig4,
    fig5,
    fig6,
    fig7,
    filtering_interplay,
    multisource_exp,
    overhead_table,
    security_matrix,
    service_sweep,
    sink_cost,
    watchdog_sweep,
    wire_sweep,
)
from repro.experiments.presets import Preset, preset_by_name
from repro.experiments.tables import FigureResult

__all__ = ["main"]

_SINGLE_RUNNERS: dict[str, Callable[[Preset], FigureResult]] = {
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "security-matrix": security_matrix.run,
    "sink-cost": sink_cost.run,
    "service-sweep": service_sweep.run,
    "wire-sweep": wire_sweep.run,
    "cluster-sweep": cluster_sweep.run,
    "faults-sweep": faults_sweep.run,
    "algebraic-sweep": algebraic_sweep.run,
    "watchdog-sweep": watchdog_sweep.run,
    "approaches": approaches.run,
    "overhead": overhead_table.run,
    "filtering-interplay": filtering_interplay.run,
    "multi-source": multisource_exp.run,
}

_ABLATION_RUNNERS: dict[str, Callable[..., FigureResult]] = {
    "ablation-mark-prob": ablations.marking_probability_sweep,
    "ablation-anonymity": ablations.anonymity_ablation,
    "ablation-nesting": ablations.nesting_ablation,
    "ablation-resolver": ablations.resolver_ablation,
    "ablation-mark-length": ablations.mark_length_ablation,
    "ablation-mole-placement": ablations.mole_placement_ablation,
    "ablation-route-dynamics": ablations.route_dynamics_ablation,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pnm-experiment",
        description=(
            "Regenerate the evaluation of 'Catching Moles in Sensor "
            "Networks' (ICDCS 2007)."
        ),
    )
    experiments = sorted(_SINGLE_RUNNERS) + sorted(_ABLATION_RUNNERS) + ["all"]
    parser.add_argument(
        "experiment",
        choices=experiments,
        help="which figure/claim to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=["full", "quick", "ci"],
        help="Monte Carlo sizes: 'full' matches the paper's 5000-run setup",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII chart of each numeric series",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="additionally append the rendered tables to FILE",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help=(
            "capture observability per experiment: DIR/<name>/ gets "
            "manifest.json, metrics.json, metrics.prom and spans.jsonl "
            "(render them with 'python -m repro.obs report DIR')"
        ),
    )
    return parser


def _run_observed(
    runner: Callable[[Preset], FigureResult],
    name: str,
    preset: Preset,
    obs_dir: str,
) -> FigureResult:
    """Run one experiment under a fresh obs provider; write its artifacts."""
    run_dir = os.path.join(obs_dir, name)
    os.makedirs(run_dir, exist_ok=True)
    tracer = obs_pkg.Tracer()
    provider = obs_pkg.ObsProvider(tracer=tracer)
    manifest = obs_pkg.RunManifest.begin(name, preset=preset.name)
    with obs_pkg.use_provider(provider):
        result = runner(preset)
    manifest.extra["notes"] = list(result.notes)
    manifest.extra.update(result.extra)
    manifest.finish(metrics=provider.registry.snapshot())
    manifest.write(os.path.join(run_dir, "manifest.json"))
    with open(os.path.join(run_dir, "metrics.json"), "w", encoding="utf-8") as fh:
        fh.write(obs_pkg.registry_to_json(provider.registry, indent=2) + "\n")
    with open(os.path.join(run_dir, "metrics.prom"), "w", encoding="utf-8") as fh:
        fh.write(obs_pkg.to_prometheus_text(provider.registry))
    tracer.write_jsonl(os.path.join(run_dir, "spans.jsonl"))
    return result


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    preset = preset_by_name(args.preset)

    if args.experiment == "all":
        names = sorted(_SINGLE_RUNNERS) + sorted(_ABLATION_RUNNERS)
    else:
        names = [args.experiment]

    sections: list[str] = []
    for name in names:
        runner = _SINGLE_RUNNERS.get(name) or _ABLATION_RUNNERS[name]
        if args.obs_dir:
            result = _run_observed(runner, name, preset, args.obs_dir)
        else:
            result = runner(preset)
        rendered = result.render()
        if args.plot:
            from repro.experiments.plotting import render_figure_chart

            try:
                rendered += "\n" + render_figure_chart(result)
            except ValueError:  # noqa: S110 - chart is optional decoration
                pass  # nothing numeric to chart (e.g. the security matrix)
        print(rendered)
        print()
        sections.append(rendered)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
