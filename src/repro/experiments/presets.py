"""Run-size presets.

``FULL`` matches the paper exactly (5000 runs for Figures 5 and 7, 100 for
Figure 6, 800-packet budgets).  ``QUICK`` keeps the same estimators with
fewer runs -- the default for command-line exploration.  ``CI`` is sized
for test suites and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Preset", "FULL", "QUICK", "CI", "preset_by_name"]


@dataclass(frozen=True)
class Preset:
    """Monte Carlo sizes for the figure experiments.

    Attributes:
        name: preset registry name.
        runs_fig5: runs per path length for the collection curve.
        runs_fig6: runs per (path length, budget) cell -- the paper uses
            100 and reports raw failure counts out of 100.
        runs_fig7: runs per path length for identification times.
        budget: packet budget per run (the paper's 800).
        fig5_packets: x-axis extent for the collection curve.
        matrix_n: path length for the security matrix.
        matrix_packets: injection budget per security-matrix cell.
        seed: base seed for all experiments under this preset.
    """

    name: str
    runs_fig5: int
    runs_fig6: int
    runs_fig7: int
    budget: int = 800
    fig5_packets: int = 60
    matrix_n: int = 9
    matrix_packets: int = 400
    seed: int = 20070625  # ICDCS 2007 conference date

    def __post_init__(self) -> None:
        for attr in ("runs_fig5", "runs_fig6", "runs_fig7", "budget", "fig5_packets"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1, got {getattr(self, attr)}")


FULL = Preset("full", runs_fig5=5000, runs_fig6=100, runs_fig7=5000)
QUICK = Preset("quick", runs_fig5=800, runs_fig6=100, runs_fig7=800)
CI = Preset("ci", runs_fig5=120, runs_fig6=60, runs_fig7=120, matrix_packets=300)

_PRESETS = {p.name: p for p in (FULL, QUICK, CI)}


def preset_by_name(name: str) -> Preset:
    """Look up a preset; raises ``KeyError`` with the known names."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(_PRESETS)}"
        ) from None
