"""Section 4.2's sink feasibility numbers, modelled and measured.

The paper argues that brute-forcing anonymous IDs is practical: ~2.5 M
hashes/s at the sink means a full table for a few-thousand-node network
costs milliseconds, supporting several hundred verified packets per second
against a radio that delivers ~50.  This experiment reports the analytical
model side by side with a *measured* hash rate and measured table-build
times on this machine, plus the Section 7 ``O(d)`` topology-bounded search.
"""

from __future__ import annotations

import time

from repro.analysis.cost import MICA2_PACKETS_PER_SECOND, SinkCostModel
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.marking.pnm import PNMMarking
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report

__all__ = ["NETWORK_SIZES", "run", "measure_hash_rate", "main"]

NETWORK_SIZES = (100, 500, 1000, 2000, 5000)


def measure_hash_rate(duration: float = 0.2) -> float:
    """Measure this machine's truncated-HMAC throughput (hashes/second)."""
    provider = HmacProvider()
    key = b"k" * 32
    data = b"d" * 64
    count = 0
    start = time.perf_counter()
    deadline = start + duration
    while time.perf_counter() < deadline:
        for _ in range(1000):
            provider.mac(key, data)
        count += 1000
    elapsed = time.perf_counter() - start
    return count / elapsed


def _measure_table_build(network_size: int, provider: HmacProvider) -> float:
    """Measured seconds to build one message's anonymous-ID table."""
    scheme = PNMMarking(mark_prob=0.1)
    keystore = KeyStore.from_master_secret(b"cost", range(1, network_size + 1))
    packet = MarkedPacket(
        report=Report(event=b"cost-model", location=(1.0, 2.0), timestamp=1)
    )
    start = time.perf_counter()
    scheme.build_resolution_table(packet, keystore, provider)
    return time.perf_counter() - start


def run(preset: Preset = QUICK) -> FigureResult:
    """Tabulate modelled and measured sink verification costs."""
    provider = HmacProvider()
    measured_rate = measure_hash_rate()
    columns = [
        "network_size",
        "model_table_ms",
        "measured_table_ms",
        "model_pkts_per_s",
        "model_pkts_per_s_bounded",
        "keeps_up_with_radio",
    ]
    rows = []
    for size in NETWORK_SIZES:
        model = SinkCostModel(network_size=size, hash_rate=measured_rate)
        rows.append(
            [
                size,
                round(1e3 * model.table_build_seconds(), 3),
                round(1e3 * _measure_table_build(size, provider), 3),
                round(model.packets_per_second(), 1),
                round(model.packets_per_second(bounded=True), 1),
                model.keeps_up_with_radio(),
            ]
        )
    notes = [
        f"preset={preset.name}; measured hash rate on this machine: "
        f"{measured_rate / 1e6:.2f} M/s (paper assumed 2.5 M/s)",
        f"radio-limited delivery rate: {MICA2_PACKETS_PER_SECOND:.0f} pkts/s "
        f"(19.2 kbps Mica2); feasibility requires verification >= that",
    ]
    return FigureResult(
        figure_id="sink-cost",
        title="Sink verification cost: anonymous-ID search (Section 4.2/7)",
        columns=columns,
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
