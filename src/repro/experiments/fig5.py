"""Figure 5: simulated mark-collection speed.

"The average percentage of nodes whose marks are collected by the sink in
the first x packets", for paths of 10, 20 and 30 nodes with ``np = 3``.
Paper reading: a 10-hop path yields marks from ~9 nodes within 7 packets;
20- and 30-hop paths reach 90% at about 14 and 22 packets.
"""

from __future__ import annotations

from repro.analysis.overhead import probability_for_target_marks
from repro.experiments.fastpath import collection_curve
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult

__all__ = ["PATH_LENGTHS", "run", "main"]

PATH_LENGTHS = (10, 20, 30)


def run(preset: Preset = QUICK, target_marks: float = 3.0) -> FigureResult:
    """Simulate the Figure 5 collection curves.

    Args:
        preset: controls runs per path length and the x-axis extent.
        target_marks: average marks per packet (the paper's 3).
    """
    curves = {}
    for n in PATH_LENGTHS:
        p = probability_for_target_marks(n, target_marks)
        curves[n] = collection_curve(
            n=n,
            p=p,
            packets=preset.fig5_packets,
            runs=preset.runs_fig5,
            seed=preset.seed + n,
        )

    columns = ["packets"] + [f"pct_collected_n{n}" for n in PATH_LENGTHS]
    rows = []
    for x in range(1, preset.fig5_packets + 1):
        rows.append([x] + [100.0 * curves[n][x - 1] for n in PATH_LENGTHS])

    def packets_to_reach(n: int, fraction: float) -> int | None:
        for x in range(1, preset.fig5_packets + 1):
            if curves[n][x - 1] >= fraction:
                return x
        return None

    notes = [
        f"preset={preset.name}; {preset.runs_fig5} runs per path length",
        f"n=10: avg {curves[10][6] * 10:.1f} nodes collected in 7 packets (paper: ~9)",
        f"n=20: 90% at {packets_to_reach(20, 0.9)} packets (paper: ~14)",
        f"n=30: 90% at {packets_to_reach(30, 0.9)} packets (paper: ~22)",
    ]
    return FigureResult(
        figure_id="fig5",
        title="Average % of nodes whose marks are collected in first x packets",
        columns=columns,
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    result = run()
    thinned = FigureResult(
        figure_id=result.figure_id,
        title=result.title,
        columns=result.columns,
        rows=[r for r in result.rows if r[0] % 4 == 0 or r[0] == 1],
        notes=result.notes,
    )
    print(thinned.render())


if __name__ == "__main__":
    main()
