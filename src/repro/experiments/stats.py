"""Statistical helpers for experiment estimates.

Monte Carlo results deserve error bars: Figure 6 reports binomial counts
(failures out of N runs) and Figure 7 reports means of skewed positive
times.  This module provides the two interval estimators the harness
uses -- Wilson score intervals for proportions (well-behaved at 0 and N,
unlike the normal approximation) and t-based intervals for means --
implemented directly so the core experiments stay scipy-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Interval", "wilson_interval", "mean_interval"]

# Two-sided critical z values for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval.

    Attributes:
        estimate: the point estimate.
        low: interval lower bound.
        high: interval upper bound.
        confidence: the level the bounds were computed at.
    """

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.3g} [{self.low:.3g}, {self.high:.3g}]"


def _z_for(confidence: float) -> float:
    try:
        return _Z[confidence]
    except KeyError:
        known = ", ".join(str(c) for c in sorted(_Z))
        raise ValueError(
            f"confidence must be one of {known}, got {confidence}"
        ) from None


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Interval:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: observed successes (e.g. failed runs).
        trials: total trials (e.g. runs).
        confidence: 0.90, 0.95 or 0.99.

    Raises:
        ValueError: on impossible counts.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    z = _z_for(confidence)
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return Interval(
        estimate=p_hat,
        low=max(0.0, center - spread),
        high=min(1.0, center + spread),
        confidence=confidence,
    )


def mean_interval(values: list[float], confidence: float = 0.95) -> Interval:
    """Normal-approximation interval for a mean.

    For the experiment sample sizes here (hundreds to thousands of runs)
    the z and t critical values agree to well under a percent, so the z
    value is used; with fewer than 2 values the interval degenerates to
    the point estimate.
    """
    if not values:
        raise ValueError("values must not be empty")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return Interval(estimate=mean, low=mean, high=mean, confidence=confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    z = _z_for(confidence)
    return Interval(
        estimate=mean,
        low=mean - z * sem,
        high=mean + z * sem,
        confidence=confidence,
    )
