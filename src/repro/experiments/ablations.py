"""Ablation benches for the design choices DESIGN.md calls out.

Each function isolates one design decision:

* :func:`marking_probability_sweep` -- overhead vs identification speed
  as the per-packet mark budget ``n*p`` varies (the paper fixes 3).
* :func:`anonymity_ablation` -- plain-ID vs anonymous-ID probabilistic
  nested marking under selective dropping (the paper's central
  probabilistic-design point).
* :func:`nesting_ablation` -- extended AMS vs partially nested vs fully
  nested marking under mark manipulation (Theorem 3 empirically).
* :func:`resolver_ablation` -- exhaustive ``O(N)`` vs topology-bounded
  ``O(d)`` anonymous-ID search (Section 7), in actual candidate checks.
* :func:`mark_length_ablation` -- MAC/anonymous-ID truncation length vs
  per-packet byte overhead and observed verification ambiguity.
* :func:`mole_placement_ablation` -- does the colluding forwarder's
  position on the path matter?  (Theorem 4 says it should not, for PNM.)
* :func:`route_dynamics_ablation` -- traceback under route churn that
  preserves vs violates the upstream order (Section 7's claim).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.overhead import probability_for_target_marks
from repro.core.build import build_scenario
from repro.core.experiment import run_scenario
from repro.core.scenario import Scenario
from repro.experiments.fastpath import identification_times, simulate_first_times
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.routing.dynamics import RouteDynamics
from repro.traceback.resolver import TopologyBoundedResolver
from repro.traceback.sink import TracebackSink

__all__ = [
    "marking_probability_sweep",
    "anonymity_ablation",
    "nesting_ablation",
    "resolver_ablation",
    "mark_length_ablation",
    "mole_placement_ablation",
    "route_dynamics_ablation",
    "main",
]


def marking_probability_sweep(
    preset: Preset = QUICK,
    n: int = 20,
    mark_budgets: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0),
) -> FigureResult:
    """Packets-to-identify and byte overhead as ``n*p`` varies."""
    columns = [
        "avg_marks_per_packet",
        "mark_prob",
        "avg_packets_to_identify",
        "success_rate",
        "mark_bytes_per_packet",
    ]
    rows = []
    mark_len = 8  # anon_id_len 4 + mac_len 4
    for budget in mark_budgets:
        p = probability_for_target_marks(n, budget)
        times = simulate_first_times(
            n=n,
            p=p,
            packets=preset.budget * 2,
            runs=preset.runs_fig7,
            seed=preset.seed + int(budget * 10),
        )
        ident = identification_times(times)
        successes = ident[~np.isnan(ident)]
        rows.append(
            [
                budget,
                round(p, 4),
                round(float(successes.mean()), 1) if successes.size else float("nan"),
                round(successes.size / preset.runs_fig7, 3),
                round(budget * mark_len, 1),
            ]
        )
    return FigureResult(
        figure_id="ablation-mark-prob",
        title=f"Marking budget vs identification speed (n={n})",
        columns=columns,
        rows=rows,
        notes=[
            f"preset={preset.name}; more marks per packet = faster traceback "
            f"but linearly more radio bytes; the paper picks n*p = 3"
        ],
    )


def anonymity_ablation(preset: Preset = QUICK, n: int = 10) -> FigureResult:
    """Selective dropping vs plain-ID and anonymous-ID nested marking."""
    columns = ["scheme", "outcome", "suspect_center", "delivered", "dropped"]
    rows = []
    for scheme in ("naive-pnm", "pnm"):
        sc = Scenario(
            n_forwarders=n,
            scheme=scheme,
            attack="selective-drop",
            seed=preset.seed,
        )
        built = build_scenario(sc)
        result = run_scenario(sc, num_packets=preset.matrix_packets, built=built)
        rows.append(
            [
                scheme,
                result.outcome,
                result.suspect_center,
                result.packets_delivered,
                built.pipeline.metrics.packets_dropped,
            ]
        )
    return FigureResult(
        figure_id="ablation-anonymity",
        title="Selective dropping: plain IDs get framed, anonymous IDs do not",
        columns=columns,
        rows=rows,
        notes=[
            "the mole drops packets carrying V_1's mark; with anonymous IDs "
            "it cannot evaluate that predicate and drops nothing"
        ],
    )


def nesting_ablation(preset: Preset = QUICK, n: int = 10) -> FigureResult:
    """How much MAC coverage is enough?  (Theorem 3, empirically.)"""
    columns = ["scheme", "mac_covers", "attack", "outcome", "suspect_center"]
    coverage = {
        "ams": "report + own ID",
        "partial-nested": "report + previous IDs + own ID",
        "nested": "entire received message + own ID",
    }
    rows = []
    for scheme in ("ams", "partial-nested", "nested"):
        for attack in ("remove-targeted", "unprotected-alter"):
            sc = Scenario(
                n_forwarders=n, scheme=scheme, attack=attack, seed=preset.seed
            )
            result = run_scenario(sc, num_packets=preset.matrix_packets)
            rows.append(
                [scheme, coverage[scheme], attack, result.outcome, result.suspect_center]
            )
    return FigureResult(
        figure_id="ablation-nesting",
        title="MAC coverage vs manipulation attacks (necessity of nesting)",
        columns=columns,
        rows=rows,
        notes=[
            "only full nesting is caught under both attacks: protecting "
            "fewer fields loses consecutive traceability (Theorem 3)"
        ],
    )


def resolver_ablation(preset: Preset = QUICK, n: int = 20) -> FigureResult:
    """Exhaustive vs topology-bounded anonymous-ID search cost."""
    columns = [
        "resolver",
        "radius",
        "outcome",
        "exhaustive_fallbacks",
        "candidate_checks_per_mark",
    ]
    rows = []
    for label, radius in (("exhaustive", None), ("bounded", 1), ("bounded", 8)):
        sc = Scenario(n_forwarders=n, scheme="pnm", attack="none", seed=preset.seed)
        built = build_scenario(sc)
        if radius is not None:
            resolver = TopologyBoundedResolver(built.topology, radius=radius)
            built.sink.verifier.resolver = resolver
        result = run_scenario(sc, num_packets=200, built=built)
        network_size = built.topology.num_nodes() - 1
        # On a chain, a radius-r ball holds at most 2r+1 nodes.
        checks = network_size if radius is None else min(2 * radius + 1, network_size)
        rows.append(
            [
                label,
                radius if radius is not None else "-",
                result.outcome,
                built.sink.fallback_searches,
                checks,
            ]
        )
    return FigureResult(
        figure_id="ablation-resolver",
        title="Anonymous-ID search: O(N) exhaustive vs O(d) topology-bounded",
        columns=columns,
        rows=rows,
        notes=[
            "bounded search with a too-small radius falls back to the "
            "exhaustive table whenever probabilistic marking skips past the "
            "ball; a radius of a few hops eliminates fallbacks on chains"
        ],
    )


def mark_length_ablation(preset: Preset = QUICK, n: int = 10) -> FigureResult:
    """Field truncation vs byte overhead and resolution ambiguity."""
    columns = [
        "anon_id_len",
        "mac_len",
        "mark_len_bytes",
        "outcome",
        "ambiguous_marks",
    ]
    rows = []
    for anon_len, mac_len in ((1, 1), (2, 2), (4, 4), (8, 8)):
        sc = Scenario(
            n_forwarders=n,
            scheme="pnm",
            attack="none",
            seed=preset.seed,
            anon_id_len=anon_len,
            mac_len=mac_len,
        )
        built = build_scenario(sc)
        ambiguous = 0
        original_receive = built.sink.receive

        def counting_receive(packet, delivering_node):
            nonlocal ambiguous
            verification = original_receive(packet, delivering_node)
            ambiguous += sum(1 for vm in verification.verified if vm.ambiguous)
            return verification

        built.sink.receive = counting_receive  # type: ignore[method-assign]
        built.pipeline.sink = built.sink
        result = run_scenario(sc, num_packets=preset.matrix_packets, built=built)
        rows.append(
            [anon_len, mac_len, anon_len + mac_len, result.outcome, ambiguous]
        )
    return FigureResult(
        figure_id="ablation-mark-length",
        title="Mark truncation: bytes per mark vs anonymous-ID collisions",
        columns=columns,
        rows=rows,
        notes=[
            "1-byte fields collide visibly but MAC verification still "
            "disambiguates attribution; 4+4 bytes make ambiguity negligible"
        ],
    )


def mole_placement_ablation(
    preset: Preset = QUICK, n: int = 12, attack: str = "selective-drop"
) -> FigureResult:
    """Does the forwarding mole's position matter?

    Sweeps X from next-to-source to next-to-sink under a fixed attack and
    scheme pair.  For PNM the answer should be "no": one-hop precision is
    position-independent (Theorem 4 makes no placement assumption).  For
    the naive plaintext variant, position changes *which* innocent gets
    framed (always the frame target's neighborhood), never the failure
    itself.
    """
    columns = ["mole_position", "pnm_outcome", "pnm_center", "naive_outcome", "naive_center"]
    rows = []
    for position in range(1, n + 1):
        row: list[object] = [position]
        for scheme in ("pnm", "naive-pnm"):
            sc = Scenario(
                n_forwarders=n,
                scheme=scheme,
                attack=attack,
                mole_position=position,
                seed=preset.seed + position,
            )
            result = run_scenario(sc, num_packets=preset.matrix_packets)
            row.extend([result.outcome, result.suspect_center])
        rows.append(row)
    return FigureResult(
        figure_id="ablation-mole-placement",
        title=f"Forwarding-mole position vs outcome ({attack}, n={n})",
        columns=columns,
        rows=rows,
        notes=[
            "PNM catches a mole anywhere on the path; the naive plaintext "
            "variant is framed regardless of where the dropper sits"
        ],
    )


def route_dynamics_ablation(preset: Preset = QUICK) -> FigureResult:
    """Traceback under route churn (Section 7's stability discussion).

    Runs PNM over a grid deployment whose routing tree is re-drawn several
    times during the trace.  Order-preserving churn (different
    shortest-path trees) keeps the upstream relation intact, so traceback
    still succeeds; order-violating churn (sideways detours) can place
    node pairs in both relative orders, which surfaces as loops/equivocal
    evidence rather than as a framed innocent.
    """
    from repro.core.build import _node_rng  # deterministic per-node RNGs
    from repro.crypto.keys import KeyStore
    from repro.crypto.mac import HmacProvider
    from repro.marking.pnm import PNMMarking
    from repro.net.topology import grid_topology
    from repro.sim.behaviors import HonestForwarder
    from repro.sim.pipeline import PathPipeline
    from repro.sim.sources import BogusReportSource
    from repro.marking.base import NodeContext

    columns = ["churn", "epochs", "outcome", "suspect_center", "loop_detected"]
    rows = []
    topology = grid_topology(6, 6, sink_at="corner")
    source_id = 35  # far corner
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(b"dyn", topology.sensor_nodes())
    epochs = 6
    packets_per_epoch = 60

    for churn in ("order-preserving", "order-violating"):
        scheme = PNMMarking(mark_prob=0.4)
        sink = TracebackSink(scheme, keystore, provider, topology)
        dynamics = RouteDynamics(
            topology,
            seed=preset.seed,
            order_preserving=(churn == "order-preserving"),
        )
        source = BogusReportSource(
            node_id=source_id,
            claimed_location=topology.position(source_id),
            rng=_node_rng(preset.seed, source_id),
        )
        for _ in range(epochs):
            table = dynamics.next_table()
            path = table.forwarders_between(source_id)
            forwarders = [
                HonestForwarder(
                    NodeContext(
                        node_id=nid,
                        key=keystore[nid],
                        provider=provider,
                        rng=_node_rng(preset.seed, nid),
                    ),
                    scheme,
                )
                for nid in path
            ]
            pipeline = PathPipeline(source=source, forwarders=forwarders, sink=sink)
            pipeline.push_many(packets_per_epoch)
        verdict = sink.verdict()
        caught = (
            verdict.suspect is not None and source_id in verdict.suspect.members
        )
        rows.append(
            [
                churn,
                epochs,
                "caught" if caught else ("identified-elsewhere" if verdict.identified else "equivocal"),
                verdict.suspect.center if verdict.suspect else None,
                verdict.loop_detected,
            ]
        )
    return FigureResult(
        figure_id="ablation-route-dynamics",
        title="PNM traceback under route churn (Section 7)",
        columns=columns,
        rows=rows,
        notes=[
            f"grid 6x6, source at far corner, {epochs} epochs x "
            f"{packets_per_epoch} packets, new routing tree each epoch"
        ],
    )


def main() -> None:
    """Print every ablation table to stdout."""
    for fn in (
        marking_probability_sweep,
        anonymity_ablation,
        nesting_ablation,
        resolver_ablation,
        mark_length_ablation,
        mole_placement_ablation,
        route_dynamics_ablation,
    ):
        print(fn().render())
        print()


if __name__ == "__main__":
    main()
