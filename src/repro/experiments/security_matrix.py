"""The scheme-by-attack security matrix (Sections 3 and 5, empirically).

Runs every marking scheme against every colluding attack on a real-crypto
linear path and labels each cell:

* ``caught``        -- the suspect neighborhood contains a true mole
  (one-hop precision held: the paper's success criterion);
* ``framed``        -- the sink pinned an innocent neighborhood (the
  attack achieved its goal);
* ``unidentified``  -- no verdict within the packet budget.

Expected shape (the paper's qualitative claims):

* Extended AMS (and plain PPM) get **framed** by targeted mark removal
  and mark altering -- marks are individually manipulable (Section 3).
* Naive probabilistic nested marking gets **framed** by selective
  dropping (Section 4.2's incorrect extension).
* ``partial-nested`` gets **framed** by the unprotected-bit attack
  (Theorem 3's necessity argument).
* Nested marking and PNM are **caught** in every row (Theorems 2 and 4).
"""

from __future__ import annotations

from repro.core.experiment import run_scenario
from repro.core.scenario import Scenario
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult

__all__ = [
    "SCHEMES",
    "ATTACKS",
    "EXPECTED_DEFEATS",
    "EXPECTED_SUPPRESSED",
    "run",
    "main",
]

SCHEMES = ("none", "ppm", "ams", "nested", "partial-nested", "naive-pnm", "pnm")

ATTACKS = (
    "none",
    "honest-mole",
    "no-mark",
    "insert-garbage",
    "insert-frame",
    "remove-upstream",
    "remove-targeted",
    "remove-all",
    "remove-remark",
    "reorder",
    "alter",
    "selective-drop",
    "identity-swap",
    "unprotected-alter",
)

#: Cells where the defender is EXPECTED to fail (framed): the attacks the
#: paper documents as defeating each scheme.  Used by the test suite.
EXPECTED_DEFEATS = {
    # Unauthenticated plain marking: marks are freely forgeable/removable.
    "ppm": {
        "insert-frame",
        "remove-upstream",
        "remove-targeted",
        "alter",
        "selective-drop",
    },
    # Extended AMS (Section 3): marks are individually valid, so targeted
    # removal and altering redirect the trace to innocent upstream nodes.
    "ams": {
        "remove-upstream",
        "remove-targeted",
        "alter",
        "selective-drop",
        "unprotected-alter",
    },
    # Theorem 3's counterexample: protecting fewer fields than nested
    # marking breaks consecutive traceability under surgical altering.
    "partial-nested": {"alter", "unprotected-alter"},
    # Section 4.2's incorrect extension: plain-text IDs enable selective
    # dropping (and targeted removal).
    "naive-pnm": {"selective-drop", "remove-targeted"},
    # Theorems 2 and 4: never framed.
    "nested": set(),
    "pnm": set(),
}

#: Cells where the mole's only consistent move starves the sink entirely
#: (the paper's footnote 2: dropping *all* attack traffic defeats the
#: injection itself).  Deterministic nested marks put the whole path in
#: every packet, so "selective" dropping degenerates to dropping all.
EXPECTED_SUPPRESSED = {
    "nested": {"selective-drop"},
    "partial-nested": {"selective-drop"},
}


def run(preset: Preset = QUICK) -> FigureResult:
    """Run the full matrix with real HMAC crypto."""
    columns = ["scheme"] + list(ATTACKS)
    rows = []
    for scheme in SCHEMES:
        row: list[object] = [scheme]
        for attack in ATTACKS:
            sc = Scenario(
                n_forwarders=preset.matrix_n,
                scheme=scheme,
                attack=attack,
                seed=preset.seed,
                crypto="real",
            )
            result = run_scenario(sc, num_packets=preset.matrix_packets)
            row.append(result.outcome)
        rows.append(row)

    notes = [
        f"preset={preset.name}; n={preset.matrix_n}, "
        f"{preset.matrix_packets} packets per cell, mole mid-path",
        "expected: nested & pnm caught everywhere; ams framed by targeted "
        "removal/altering; naive-pnm framed by selective-drop; "
        "partial-nested framed by unprotected-alter (Theorem 3)",
    ]
    return FigureResult(
        figure_id="security-matrix",
        title="Traceback outcome per (scheme, colluding attack)",
        columns=columns,
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
