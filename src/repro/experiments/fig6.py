"""Figure 6: identification failures vs path length.

"The number of runs, out of 100 simulations, in which the sink fails to
unequivocally identify the source, as a function of total path length",
for budgets of 200, 400, 600 and 800 received packets and path lengths 5
to 50.  Paper reading: 200 packets suffice up to 20 hops, 400 up to 30
hops; only 50-hop paths need ~800 packets to push failures below ~5%.
"""

from __future__ import annotations

from repro.analysis.overhead import probability_for_target_marks
from repro.experiments.fastpath import failure_counts, simulate_first_times
from repro.experiments.presets import QUICK, Preset
from repro.experiments.stats import wilson_interval
from repro.experiments.tables import FigureResult

__all__ = ["PATH_LENGTHS", "BUDGETS", "run", "main"]

PATH_LENGTHS = tuple(range(5, 55, 5))
BUDGETS = (200, 400, 600, 800)


def run(preset: Preset = QUICK, target_marks: float = 3.0) -> FigureResult:
    """Simulate Figure 6's failure counts.

    Failure counts are scaled to "per 100 runs" so presets with other run
    counts remain comparable to the paper's raw numbers.
    """
    columns = ["path_length"] + [f"failures_per100_b{b}" for b in BUDGETS]
    rows = []
    worst_interval = None
    for n in PATH_LENGTHS:
        p = probability_for_target_marks(n, target_marks)
        times = simulate_first_times(
            n=n,
            p=p,
            packets=max(BUDGETS),
            runs=preset.runs_fig6,
            seed=preset.seed + 1000 + n,
        )
        counts = failure_counts(times, list(BUDGETS))
        rows.append(
            [n]
            + [round(100.0 * counts[b] / preset.runs_fig6, 1) for b in BUDGETS]
        )
        if n == max(PATH_LENGTHS):
            worst_interval = wilson_interval(
                counts[max(BUDGETS)], preset.runs_fig6
            )

    notes = [
        f"preset={preset.name}; {preset.runs_fig6} runs per path length, "
        f"scaled to failures per 100 runs",
        "paper shape: ~0 failures for n<=20 @ 200 pkts and n<=30 @ 400 pkts; "
        "n=50 needs ~800 pkts for <~5%",
    ]
    if worst_interval is not None:
        notes.append(
            f"n={max(PATH_LENGTHS)} @ {max(BUDGETS)} pkts failure rate: "
            f"{worst_interval} (Wilson 95%)"
        )
    return FigureResult(
        figure_id="fig6",
        title="Runs (per 100) where the source is not unequivocally identified",
        columns=columns,
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
