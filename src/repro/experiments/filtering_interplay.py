"""En-route filtering and traceback: complements with a tension.

Section 8 positions PNM as a *complement* to en-route filtering: filtering
passively thins bogus traffic, traceback actively finds its origin.  But
there is an interplay the paper does not quantify: every bogus packet a
filter drops is a packet whose marks the sink never sees, so aggressive
filtering *slows the traceback down* (while also bounding the damage per
packet).  This experiment sweeps the per-hop filtering drop probability
and measures both sides:

* packets the sink must wait for (injections until identification),
* network bytes spent on attack traffic per injected packet (the damage
  filtering is there to bound).

The sweep abstracts SEF as a per-hop Bernoulli drop of attack packets
(its detection probability), applied by every honest forwarder.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.overhead import probability_for_target_marks
from repro.experiments.fastpath import identification_times, simulate_first_times
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult

__all__ = ["run", "main"]

_DROP_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
_N = 15


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep per-hop filtering aggressiveness on a 15-hop path.

    With per-hop drop probability ``f``, an injected packet survives all
    ``n`` hops with probability ``s = (1-f)^n``; the sink's identification
    clock only ticks on survivors, so injections-to-identify scales as
    ``packets_to_identify / s`` while bytes-per-injection shrink with the
    expected number of hops traversed.
    """
    p = probability_for_target_marks(_N, 3.0)
    times = simulate_first_times(
        n=_N,
        p=p,
        packets=preset.budget,
        runs=preset.runs_fig7,
        seed=preset.seed + 4242,
    )
    ident = identification_times(times)
    base_packets = float(np.nanmean(ident[~np.isnan(ident)]))

    columns = [
        "per_hop_drop_prob",
        "delivery_rate",
        "delivered_to_identify",
        "injections_to_identify",
        "avg_hops_traversed",
        "relative_attack_bytes",
    ]
    rows = []
    for f in _DROP_RATES:
        survive = (1.0 - f) ** _N
        # Expected hops an injected packet traverses before being dropped
        # (or delivered): sum over hops of P(alive at that hop).
        hops = sum((1.0 - f) ** k for k in range(1, _N + 1))
        rows.append(
            [
                f,
                round(survive, 3),
                round(base_packets, 1),
                round(base_packets / survive, 1),
                round(hops, 2),
                round(hops / _N, 3),
            ]
        )
    return FigureResult(
        figure_id="filtering-interplay",
        title="En-route filtering vs traceback speed (15-hop path, PNM)",
        columns=columns,
        rows=rows,
        notes=[
            f"preset={preset.name}; identification baseline "
            f"{base_packets:.1f} delivered packets (n={_N}, n*p=3)",
            "filtering bounds per-packet damage (relative_attack_bytes) "
            "but stretches the injections the mole gets away with before "
            "being located -- the paper's 'complement' has a price",
        ],
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
