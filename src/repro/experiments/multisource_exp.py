"""Multi-source traceback experiment (the Section 9 future-work item).

Sweeps the number of concurrently injecting source moles on a grid
deployment and measures what the forest-reconstruction extension
(:mod:`repro.traceback.multisource`) delivers:

* how many packets per source until *every* source component is confirmed,
* whether each confirmed suspect neighborhood contains its true mole,
* how often an innocent neighborhood is confirmed (must be ~never).

Sources inject round-robin, modelling simultaneous attacks; the sink sees
an interleaved stream, which is the hard part -- chains from different
sources must not merge into phantom orderings (they cannot: precedence
edges only arise *within* one packet's marks).
"""

from __future__ import annotations

import random

from repro.core.build import _node_rng
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.topology import grid_topology
from repro.routing.tree import build_routing_tree
from repro.sim.behaviors import HonestForwarder
from repro.sim.sources import BogusReportSource
from repro.traceback.multisource import MultiSourceTracebackSink

__all__ = ["run", "main"]

#: Grid corners/edges used as source moles, in activation order.
_MOLE_POOL = (35, 30, 5, 33, 23)
_SOURCE_COUNTS = (1, 2, 3, 5)
_MAX_PACKETS_PER_SOURCE = 200


def _run_cell(k: int, seed: int) -> tuple[int | None, bool, int]:
    """One deployment with ``k`` sources.

    Returns ``(packets_per_source_to_confirm_all, all_caught,
    innocent_confirmations)``.
    """
    topo = grid_topology(6, 6, sink_at="corner")
    routing = build_routing_tree(topo)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(
        b"multisource-" + seed.to_bytes(4, "big"), topo.sensor_nodes()
    )
    scheme = PNMMarking(mark_prob=0.35)
    sink = MultiSourceTracebackSink(
        scheme, keystore, provider, topo, min_support=3
    )
    behaviors = {
        nid: HonestForwarder(
            NodeContext(nid, keystore[nid], provider, _node_rng(seed, nid)),
            scheme,
        )
        for nid in topo.sensor_nodes()
    }
    moles = _MOLE_POOL[:k]
    sources = [
        (
            BogusReportSource(m, topo.position(m), random.Random(f"{seed}:{m}")),
            routing.forwarders_between(m),
        )
        for m in moles
    ]

    confirmed_at: int | None = None
    for round_idx in range(1, _MAX_PACKETS_PER_SOURCE + 1):
        for source, path in sources:
            packet = source.next_packet(timestamp=round_idx)
            for nid in path:
                packet = behaviors[nid].forward(packet)
            sink.receive(packet, path[-1] if path else source.node_id)
        if confirmed_at is None:
            verdict = sink.multi_verdict()
            if verdict.num_sources >= k:
                confirmed_at = round_idx

    verdict = sink.multi_verdict()
    caught = 0
    innocent = 0
    for suspect in verdict.suspects:
        if suspect.members & set(moles):
            caught += 1
        else:
            innocent += 1
    all_caught = caught >= k
    return confirmed_at, all_caught, innocent


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep the number of concurrent sources."""
    columns = [
        "num_sources",
        "packets_per_source_to_confirm",
        "all_sources_caught",
        "innocent_confirmations",
    ]
    rows = []
    for k in _SOURCE_COUNTS:
        confirmed_at, all_caught, innocent = _run_cell(k, preset.seed)
        rows.append(
            [
                k,
                confirmed_at if confirmed_at is not None else "never",
                all_caught,
                innocent,
            ]
        )
    return FigureResult(
        figure_id="multi-source",
        title="Concurrent source moles vs forest traceback (Section 9 extension)",
        columns=columns,
        rows=rows,
        notes=[
            "6x6 grid, p=0.35, min_support=3, sources inject round-robin; "
            "confirmation = every source component supported",
            "chains from different sources cannot create phantom orderings "
            "(precedence edges only form within one packet), so suspects "
            "stay per-source",
        ],
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
