"""Traceback-approach comparison: marking vs logging vs notification.

Section 8 argues PNM beats the two other traceback families on sensor
hardware: it needs *no control messages* (logging needs a query/reply
protocol, notification needs extra messages -- both abusable by moles) and
*no per-node storage* (logging stores packet digests).  This experiment
runs all three on the same deployment -- a chain with one off-path spur
node (the framing victim) -- under the same colluding moles, and tabulates
what each costs and whether the moles win.

Approaches compared:

* **pnm** -- probabilistic nested marking, mole runs selective dropping.
* **edge-sampling** -- Savage et al.'s original single-slot PPM; the mole
  overwrites the slot with a fabricated edge framing the spur node.
* **logging** -- SPIE-style Bloom logs; the mole denies having forwarded.
* **notification / itrace** -- unauthenticated notifications; the mole
  forges messages framing the spur node.
* **notification / authenticated** -- MAC'd notifications; the mole can
  only stay silent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.build import _node_rng
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.marking.base import NodeContext
from repro.marking.plain import NoMarking
from repro.marking.pnm import PNMMarking
from repro.net.topology import Topology
from repro.sim.behaviors import HonestForwarder
from repro.sim.pipeline import PathPipeline
from repro.sim.sources import BogusReportSource
from repro.tracealt.logging import DenyingLogMole, LoggingNode, LoggingTracer
from repro.tracealt.notification import (
    NOTIFICATION_BYTES,
    ForgingNotificationMole,
    NotificationSink,
    NotifyingForwarder,
    SilentNotificationMole,
)
from repro.traceback.sink import TracebackSink

__all__ = ["run", "main", "spur_chain_topology"]

N_FORWARDERS = 12
MOLE_POSITION = 6
SPUR_ATTACH = 9  # the off-path victim hangs off V9
SPUR_ID = 100


def spur_chain_topology() -> tuple[Topology, int]:
    """A linear path plus one off-path spur node (the framing victim).

    Returns ``(topology, source_id)``; forwarders are 1..N as in
    :func:`repro.net.topology.linear_path_topology`.
    """
    from repro.net.topology import linear_path_topology

    base, source_id = linear_path_topology(N_FORWARDERS)
    positions = {nid: base.position(nid) for nid in base.nodes()}
    x, y = positions[SPUR_ATTACH]
    positions[SPUR_ID] = (x, y + 1.0)
    edges = base.edges() + [(SPUR_ATTACH, SPUR_ID)]
    return Topology(positions, edges, sink=base.sink), source_id


@dataclass
class _Deployment:
    topology: Topology
    source_id: int
    path: list[int]
    keystore: KeyStore
    provider: HmacProvider
    moles: frozenset[int]

    def ctx(self, node_id: int, seed: int) -> NodeContext:
        return NodeContext(
            node_id=node_id,
            key=self.keystore[node_id],
            provider=self.provider,
            rng=_node_rng(seed, node_id),
        )


def _deploy(seed: int) -> _Deployment:
    topology, source_id = spur_chain_topology()
    keystore = KeyStore.from_master_secret(
        b"approaches-" + seed.to_bytes(4, "big"), topology.sensor_nodes()
    )
    path = list(range(1, N_FORWARDERS + 1))
    return _Deployment(
        topology=topology,
        source_id=source_id,
        path=path,
        keystore=keystore,
        provider=HmacProvider(),
        moles=frozenset({source_id, MOLE_POSITION}),
    )


def _outcome(suspect_members: set[int] | None, moles: frozenset[int]) -> str:
    if not suspect_members:
        return "unidentified"
    return "caught" if suspect_members & moles else "framed"


def _run_pnm(dep: _Deployment, packets: int, seed: int) -> list:
    from repro.adversary.attacks import SelectiveDroppingAttack
    from repro.adversary.moles import ForwardingMole

    scheme = PNMMarking(mark_prob=3.0 / N_FORWARDERS)
    sink = TracebackSink(scheme, dep.keystore, dep.provider, dep.topology)
    forwarders = []
    for nid in dep.path:
        if nid == MOLE_POSITION:
            forwarders.append(
                ForwardingMole(
                    dep.ctx(nid, seed),
                    scheme,
                    SelectiveDroppingAttack(drop_if_marked_by=[1]),
                )
            )
        else:
            forwarders.append(HonestForwarder(dep.ctx(nid, seed), scheme))
    source = BogusReportSource(
        dep.source_id, dep.topology.position(dep.source_id), _node_rng(seed, 999)
    )
    pipeline = PathPipeline(source, forwarders, sink)
    pipeline.push_many(packets)
    verdict = sink.verdict()
    members = set(verdict.suspect.members) if verdict.suspect else None
    marks_bytes = scheme.mark_prob * N_FORWARDERS * scheme.fmt.mark_len
    return [
        "pnm",
        "selective-drop",
        round(marks_bytes, 1),
        0,  # per-node storage
        0,  # control messages
        _outcome(members, dep.moles),
        verdict.suspect.center if verdict.suspect else None,
    ]


def _run_logging(dep: _Deployment, packets: int, seed: int) -> list:
    scheme = NoMarking()
    nodes: dict[int, LoggingNode] = {}
    forwarders = []
    for nid in dep.path:
        inner = HonestForwarder(dep.ctx(nid, seed), scheme)
        node = (
            DenyingLogMole(inner) if nid == MOLE_POSITION else LoggingNode(inner)
        )
        nodes[nid] = node
        forwarders.append(node)
    # The off-path spur node keeps an (empty) log and answers queries too.
    nodes[SPUR_ID] = LoggingNode(HonestForwarder(dep.ctx(SPUR_ID, seed), scheme))

    sink = TracebackSink(scheme, dep.keystore, dep.provider, dep.topology)
    source = BogusReportSource(
        dep.source_id, dep.topology.position(dep.source_id), _node_rng(seed, 999)
    )
    pipeline = PathPipeline(source, forwarders, sink)
    pipeline.push_many(packets)

    tracer = LoggingTracer(dep.topology, nodes)
    # Trace a handful of fresh attack reports, as SPIE would: inject each
    # probe report down the same (logging) path, then query for it.
    probe_source = BogusReportSource(
        dep.source_id, dep.topology.position(dep.source_id), _node_rng(seed, 999)
    )
    control = 0
    most_upstream = None
    for _ in range(5):
        report = probe_source.next_packet(timestamp=0).report
        # Push this exact report down the (logging) path so logs know it.
        probe = PathPipeline(
            _FixedSource(dep.source_id, report), forwarders, sink
        )
        probe.push()
        result = tracer.trace(report)
        control += result.control_messages
        most_upstream = result.most_upstream
    storage = max(node.log.storage_bytes for node in nodes.values())
    members = (
        set(dep.topology.closed_neighborhood(most_upstream))
        if most_upstream is not None
        else None
    )
    return [
        "logging",
        "mole-denies",
        0.0,
        storage,
        control,
        _outcome(members, dep.moles),
        most_upstream,
    ]


class _FixedSource:
    """A source that replays one fixed report (for log-trace probing)."""

    def __init__(self, node_id: int, report):
        self.node_id = node_id
        self._report = report

    def next_packet(self, timestamp: int):
        from repro.packets.packet import MarkedPacket

        return MarkedPacket(report=self._report, origin=self.node_id)


def _run_edge_sampling(dep: _Deployment, packets: int, seed: int) -> list:
    from repro.tracealt.edge_sampling import (
        EDGE_SLOT_BYTES,
        EdgeForgingMole,
        EdgeSamplingForwarder,
        EdgeSamplingSink,
    )

    scheme = NoMarking()
    channel = EdgeSamplingSink()
    mark_prob = 3.0 / N_FORWARDERS
    forwarders = []
    for nid in dep.path:
        inner = HonestForwarder(dep.ctx(nid, seed), scheme)
        if nid == MOLE_POSITION:
            forwarders.append(
                EdgeForgingMole(
                    inner,
                    channel,
                    mark_prob,
                    _node_rng(seed, 6000 + nid),
                    # Forge a fresh (distance-0) mark claiming the spur
                    # node: downstream honest hops complete and age the
                    # edge exactly like a real one, splicing the victim
                    # seamlessly onto the deep end of the path.
                    fake_start=SPUR_ID,
                    fake_end=-1,
                    fake_distance=0,
                )
            )
        else:
            forwarders.append(
                EdgeSamplingForwarder(
                    inner, channel, mark_prob, _node_rng(seed, 6000 + nid)
                )
            )
    source = BogusReportSource(
        dep.source_id, dep.topology.position(dep.source_id), _node_rng(seed, 999)
    )
    for t in range(packets):
        packet = source.next_packet(timestamp=t)
        for behavior in forwarders:
            packet = behavior.forward(packet)
        channel.deliver(packet)

    origin = channel.apparent_origin()
    members = (
        set(dep.topology.closed_neighborhood(origin)) if origin is not None else None
    )
    return [
        "edge-sampling",
        "savage ppm, mole-forges",
        float(EDGE_SLOT_BYTES),
        0,
        0,
        _outcome(members, dep.moles),
        origin,
    ]


def _run_notification(
    dep: _Deployment, packets: int, seed: int, authenticated: bool
) -> list:
    scheme = NoMarking()
    notify_prob = 3.0 / N_FORWARDERS  # match PNM's per-packet budget
    note_sink = NotificationSink(
        authenticated=authenticated,
        keystore=dep.keystore if authenticated else None,
        provider=dep.provider if authenticated else None,
    )
    forwarders = []
    prev = dep.source_id
    for nid in dep.path:
        inner = HonestForwarder(dep.ctx(nid, seed), scheme)
        common = dict(
            inner=inner,
            prev_hop=prev,
            sink=note_sink,
            notify_prob=notify_prob,
            rng=_node_rng(seed, 7000 + nid),
            key=dep.keystore[nid] if authenticated else None,
            provider=dep.provider if authenticated else None,
        )
        if nid == MOLE_POSITION:
            if authenticated:
                forwarders.append(SilentNotificationMole(**common))
            else:
                forwarders.append(
                    ForgingNotificationMole(
                        **common,
                        frame_victim=dep.source_id,
                        frame_prev=SPUR_ID,
                    )
                )
        else:
            forwarders.append(NotifyingForwarder(**common))
        prev = nid

    sink = TracebackSink(scheme, dep.keystore, dep.provider, dep.topology)
    source = BogusReportSource(
        dep.source_id, dep.topology.position(dep.source_id), _node_rng(seed, 999)
    )
    pipeline = PathPipeline(source, forwarders, sink)
    pipeline.push_many(packets)
    # Reconstruct from everything notified.
    heads = {n.node_id for n in note_sink.accepted}
    tails = {n.prev_hop for n in note_sink.accepted}
    origins = tails - heads
    origin = min(origins) if origins else None
    members = (
        set(dep.topology.closed_neighborhood(origin)) if origin is not None else None
    )
    control = len(note_sink.accepted) + note_sink.rejected
    variant = "authenticated, mole-silent" if authenticated else "itrace, mole-forges"
    return [
        "notification",
        variant,
        0.0,
        0,
        control,
        _outcome(members, dep.moles),
        origin,
    ]


def run(preset: Preset = QUICK, packets: int = 200) -> FigureResult:
    """Run all four approach variants on the spur-chain deployment."""
    dep = _deploy(preset.seed)
    rows = [
        _run_pnm(dep, packets, preset.seed),
        _run_edge_sampling(_deploy(preset.seed), packets, preset.seed),
        _run_logging(_deploy(preset.seed), packets, preset.seed),
        _run_notification(_deploy(preset.seed), packets, preset.seed, False),
        _run_notification(_deploy(preset.seed), packets, preset.seed, True),
    ]
    return FigureResult(
        figure_id="approaches",
        title="Traceback approaches under colluding moles (Section 8)",
        columns=[
            "approach",
            "variant",
            "mark_bytes_per_packet",
            "per_node_storage_bytes",
            "control_messages",
            "outcome",
            "traced_to",
        ],
        notes=[
            f"chain of {N_FORWARDERS} forwarders + off-path spur node "
            f"{SPUR_ID}; source mole {N_FORWARDERS + 1}, forwarding mole "
            f"V{MOLE_POSITION}; {packets} attack packets",
            "PNM spends only in-band mark bytes; logging spends per-node "
            "RAM plus a query/reply protocol the mole defeats by denying; "
            "unauthenticated notification is forged to frame the spur "
            "node; authenticated notification resists forgery but pays "
            f"~{NOTIFICATION_BYTES} extra bytes per notification message",
        ],
        rows=rows,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
