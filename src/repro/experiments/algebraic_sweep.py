"""Algebraic accumulator vs. PNM under churn: the dynamic-network duel.

PNM's convergence argument is a coupon collection over per-hop marks on a
*static* route (Section 5); when :mod:`repro.faults` churn rewrites routes
mid-run, the collection restarts for every hop the repair changed.  The
algebraic scheme (:mod:`repro.algebraic`) was built for exactly that
regime: the sink keeps polynomial state across topology changes and
re-interpolates only the changed route suffix, so convergence resumes
instead of restarting.

For each churn rate the sweep runs the *same* grid workload and fault
schedule once per scheme, honest and attacked:

* **convergence** (honest runs) -- a delivered packet counts as
  *unconverged* while the sink's evidence cannot yet name the injector's
  current route exactly, in order: for PNM, every consecutive route pair
  must appear as a verified precedence edge; for the algebraic scheme, the
  route must be a solver-confirmed path.  ``*_unconv`` counts unconverged
  deliveries over the whole run (lower = faster convergence and faster
  re-convergence after each repair).
* **overhead** (honest runs) -- mean mark bytes per delivered packet.
  PNM appends ~``p * path_len`` marks; the accumulator replaces one
  constant-size mark, so its overhead is flat in path length.
* **precision** (mole runs) -- one mid-path mark-garbling mole per
  scheme (PNM: MAC corruption; algebraic: accumulator corruption, which
  makes the next honest hop restart the polynomial at itself).
  ``*_mole_loc`` reports whether the suspect neighborhood contains the
  mole (the paper's one-hop localization unit).
* **safety** (honest runs) -- the honest false-accusation rate from
  :func:`repro.faults.attribution.accusation_report` must be exactly 0.0
  for *both* schemes at every churn rate: benign churn cannot forge MACs,
  and interpolation inconsistency is a repair signal, never an accusation.
"""

from __future__ import annotations

import random

from repro.adversary.attacks import MarkAlteringAttack
from repro.adversary.moles import ForwardingMole
from repro.algebraic.marking import AlgebraicMarking
from repro.algebraic.sink import AlgebraicTracebackSink
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.faults import FaultInjector, FaultSchedule, accusation_report, attribute_drops
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.links import LinkModel
from repro.net.topology import grid_topology
from repro.obs.profiling import get_default_provider
from repro.routing.base import RoutingError
from repro.routing.repair import RepairingRoutingTable
from repro.sim.behaviors import HonestForwarder
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkSimulation
from repro.sim.sources import HonestReportSource
from repro.sim.tracing import PacketTracer
from repro.traceback.sink import TracebackSink

__all__ = ["run", "main", "CHURN_RATES"]

#: Crash events per sensor per unit virtual time, swept low to high
#: (matches :data:`repro.experiments.faults_sweep.CHURN_RATES` so the two
#: sweeps describe the same churn regimes).
CHURN_RATES = (0.0, 0.05, 0.15, 0.3)

# (grid side, packets injected) per preset.
_WORKLOADS = {"ci": (4, 40), "quick": (5, 100), "full": (6, 240)}

_INTERVAL = 0.05  # seconds between injections
_MASTER = b"algebraic-sweep-master"


class _ConvergenceProbe:
    """Ingest adapter that scores each delivery against the current route.

    Implements the simulator's ingest protocol (``submit``/``flush``) so
    it sits between delivery and the sink: every suspicious packet still
    reaches ``sink.receive`` unchanged, but the probe also checks -- at
    the moment of delivery, against the *repairing* routing table --
    whether the sink's evidence already names the injector's current
    forwarder route exactly.  Packets delivered while it cannot are the
    ``unconverged`` count; under churn that includes the re-convergence
    tail after every route repair.
    """

    def __init__(self, sink, routing, source_id: int):
        self.sink = sink
        self.routing = routing
        self.source_id = source_id
        self.delivered = 0
        self.unconverged = 0
        self.mark_bytes = 0

    def submit(self, packet, delivering_node: int) -> None:
        verification = self.sink.receive(packet, delivering_node)
        self.delivered += 1
        self.mark_bytes += sum(
            len(mark.id_field) + len(mark.mac) for mark in packet.marks
        )
        self._record(verification)
        try:
            path = self.routing.path_to_sink(self.source_id)
        except RoutingError:
            # Churn currently cuts the injector off entirely; there is no
            # route to converge on, so the delivery scores neither way.
            return
        route = tuple(path[1:-1])
        if route and not self._covers(route):
            self.unconverged += 1

    def flush(self) -> None:  # pragma: no cover - protocol completeness
        """Nothing buffered: every submit reached the sink inline."""

    def _record(self, verification) -> None:
        """Fold one verification into the probe's coverage picture."""

    def _covers(self, route: tuple[int, ...]) -> bool:
        raise NotImplementedError


class _PnmProbe(_ConvergenceProbe):
    """PNM converges when every consecutive route pair is a verified edge.

    Mirrors what the precedence graph accumulates: a chain contributes
    its nodes and its consecutive pairs.  Requiring the exact pair
    ``(V_i, V_i+1)`` -- not merely both endpoints somewhere in the graph
    -- makes the criterion symmetric with the algebraic side, which must
    produce the exact ordered route to confirm at all.
    """

    def __init__(self, sink, routing, source_id: int):
        super().__init__(sink, routing, source_id)
        self._nodes: set[int] = set()
        self._edges: set[tuple[int, int]] = set()

    def _record(self, verification) -> None:
        chain = verification.chain_ids
        self._nodes.update(chain)
        self._edges.update(zip(chain, chain[1:]))

    def _covers(self, route: tuple[int, ...]) -> bool:
        if not set(route) <= self._nodes:
            return False
        return all(pair in self._edges for pair in zip(route, route[1:]))


class _AlgebraicProbe(_ConvergenceProbe):
    """Algebraic converges when the exact route is a confirmed path."""

    def _covers(self, route: tuple[int, ...]) -> bool:
        return route in self.sink.solver.confirmed_paths()


def _run_once(
    grid_side: int,
    packets: int,
    churn_rate: float,
    seed: int,
    scheme_name: str,
    mole: bool,
) -> dict[str, object]:
    """One simulated deployment: one scheme, one churn rate."""
    # 4-neighborhood (radio_range=spacing): the default 8-neighborhood
    # makes diagonal routes only 2-3 forwarders long, too short for a
    # convergence race; orthogonal-only links give Manhattan-length
    # routes and more distinct repair alternatives under churn.
    topology = grid_topology(grid_side, grid_side, sink_at="corner", radio_range=1.0)
    routing = RepairingRoutingTable(topology)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(_MASTER, topology.sensor_nodes())
    if scheme_name == "algebraic":
        scheme = AlgebraicMarking()
        sink = AlgebraicTracebackSink(scheme, keystore, provider, topology)
        # Corrupting the accumulator *value* is the scheme-appropriate
        # garbling: the MAC field gets overwritten by the next honest
        # hop's replace anyway, so altering it would be a no-op.
        attack_field = "id"
    else:
        scheme = PNMMarking(mark_prob=0.5)
        sink = TracebackSink(scheme, keystore, provider, topology)
        attack_field = "mac"
    source_id = max(
        topology.sensor_nodes(), key=lambda node: (routing.hop_count(node), node)
    )
    path = routing.path_to_sink(source_id)
    mole_id = path[len(path) // 2] if mole else None

    def ctx(node_id: int) -> NodeContext:
        return NodeContext(
            node_id=node_id,
            key=keystore[node_id],
            provider=provider,
            rng=random.Random(f"algsweep:{seed}:{scheme_name}:{node_id}"),
        )

    behaviors: dict[int, object] = {
        nid: HonestForwarder(ctx(nid), scheme) for nid in topology.sensor_nodes()
    }
    if mole_id is not None:
        behaviors[mole_id] = ForwardingMole(
            ctx(mole_id),
            scheme,
            MarkAlteringAttack(target="first", field=attack_field),
        )

    probe_cls = _AlgebraicProbe if scheme_name == "algebraic" else _PnmProbe
    probe = None if mole else probe_cls(sink, routing, source_id)
    tracer = PacketTracer(spans=get_default_provider().tracer)
    sim = NetworkSimulation(
        topology=topology,
        routing=routing,
        behaviors=behaviors,
        sink=sink,
        link=LinkModel(base_delay=0.001),
        rng=random.Random(f"algsweep:link:{seed}"),
        metrics=MetricsCollector(),
        tracer=tracer,
        ingest=probe,
    )

    duration = packets * _INTERVAL
    protect = {source_id} | ({mole_id} if mole_id is not None else set())
    schedule = FaultSchedule.random_churn(
        topology,
        rate=churn_rate,
        duration=duration,
        rng=random.Random(f"algsweep:churn:{seed}:{churn_rate}"),
        protect=protect,
    )
    injector = FaultInjector(sim, schedule)
    injector.arm()

    source = HonestReportSource(
        source_id, topology.position(source_id), random.Random(f"algsweep:src:{seed}")
    )
    sim.add_periodic_source(source, interval=_INTERVAL, count=packets)
    sim.run()

    attribution = attribute_drops(tracer, injector)
    moles = frozenset({mole_id}) if mole_id is not None else frozenset()
    report = accusation_report(sink, attribution, moles=moles)

    verdict = sink.verdict()
    localized = (
        mole_id is not None
        and verdict.identified
        and verdict.suspect is not None
        and mole_id in verdict.suspect.members
    )
    delivered = probe.delivered if probe is not None else 0
    repairs = (
        sink.solver.incremental_repairs if scheme_name == "algebraic" else 0
    )
    return {
        "delivered": delivered,
        "unconverged": probe.unconverged if probe is not None else 0,
        "bytes_per_packet": (
            probe.mark_bytes / delivered if probe is not None and delivered else 0.0
        ),
        "repairs": repairs,
        "false_rate": report.false_accusation_rate,
        "localized": localized,
    }


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep churn rates; tabulate both schemes' convergence head-to-head."""
    grid_side, packets = _WORKLOADS.get(preset.name, _WORKLOADS["quick"])
    rows = []
    all_honest_clean = True
    for rate in CHURN_RATES:
        outcomes = {}
        for scheme_name in ("pnm", "algebraic"):
            honest = _run_once(
                grid_side, packets, rate, preset.seed, scheme_name, mole=False
            )
            attacked = _run_once(
                grid_side, packets, rate, preset.seed, scheme_name, mole=True
            )
            all_honest_clean = all_honest_clean and honest["false_rate"] == 0.0
            outcomes[scheme_name] = (honest, attacked)
        pnm_honest, pnm_mole = outcomes["pnm"]
        alg_honest, alg_mole = outcomes["algebraic"]
        rows.append(
            [
                rate,
                pnm_honest["delivered"],
                pnm_honest["unconverged"],
                alg_honest["unconverged"],
                round(float(pnm_honest["bytes_per_packet"]), 2),
                round(float(alg_honest["bytes_per_packet"]), 2),
                alg_honest["repairs"],
                round(float(pnm_honest["false_rate"]), 3),
                round(float(alg_honest["false_rate"]), 3),
                bool(pnm_mole["localized"]),
                bool(alg_mole["localized"]),
            ]
        )
    notes = [
        f"preset={preset.name}; {grid_side}x{grid_side} grid, {packets} packets "
        f"per run, PNM mark_prob=0.5 vs algebraic accumulator, repairing routes",
        "unconv = packets delivered before the sink's evidence names the "
        "injector's *current* route exactly (in order); lower = faster "
        "(re-)convergence under churn",
        "bytes_pkt = mean mark bytes per delivered packet (PNM grows with "
        "path length; the accumulator is constant)",
        "honest runs: benign churn only -- false-accusation rate must be 0.0 "
        f"for both schemes (observed: {'yes' if all_honest_clean else 'NO'})",
        "mole runs: one mid-path mark-garbling mole; 'loc' = suspect "
        "neighborhood contains the mole",
    ]
    return FigureResult(
        figure_id="algebraic-sweep",
        title="Algebraic accumulator vs PNM under churn",
        columns=[
            "churn_rate",
            "delivered",
            "pnm_unconv",
            "alg_unconv",
            "pnm_bytes_pkt",
            "alg_bytes_pkt",
            "alg_repairs",
            "pnm_false_acc",
            "alg_false_acc",
            "pnm_mole_loc",
            "alg_mole_loc",
        ],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the sweep table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
