"""Sink ingest throughput: serial sink vs the :mod:`repro.service` pipeline.

Section 4.2 argues the sink can afford brute-force anonymous-ID search for
each distinct message.  That holds per message, but a stream of *distinct*
reports from the same region re-pays the full ``O(N)`` search per packet.
The ingest service amortizes it two ways: a resolution-table cache keyed on
report bytes, and a hot-set of recently verified markers that bounds the
search like Section 7's topology-bounded resolver — without needing the
topology, and falling back to the exhaustive search on any miss so verdicts
are unchanged.

This sweep measures packets/second through a grid deployment with the
exhaustive resolver for: the plain serial sink, the service with caching
only, and the service with caching plus a parallel verification pool.  The
headline number is ``speedup`` relative to the serial sink; the service is
expected to clear 3x on this workload.
"""

from __future__ import annotations

import random
import time

from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.topology import Topology, grid_topology
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report
from repro.routing.tree import build_routing_tree
from repro.service import SinkIngestService
from repro.traceback.sink import TracebackSink

__all__ = ["run", "build_workload", "main"]

# (grid side, packet count) per preset: the serial baseline pays a full
# O(N) table build per distinct report, so even the CI size shows the gap.
_WORKLOADS = {"ci": (12, 60), "quick": (16, 120), "full": (24, 240)}


def build_workload(
    grid_side: int, packets: int
) -> tuple[Topology, KeyStore, list[MarkedPacket], int]:
    """A grid deployment plus ``packets`` distinct marked reports.

    Routes every report along the path from the corner opposite the sink,
    so each packet carries one mark per forwarder on that path.  Returns
    ``(topology, keystore, packets, delivering_node)``.
    """
    scheme = PNMMarking(mark_prob=1.0)
    provider = HmacProvider()
    topology = grid_topology(grid_side, grid_side)
    keystore = KeyStore.from_master_secret(b"service-sweep", topology.sensor_nodes())
    routing = build_routing_tree(topology)
    source = max(
        topology.sensor_nodes(), key=lambda node: routing.hop_count(node)
    )
    forwarders = routing.forwarders_between(source)
    stream = []
    for t in range(packets):
        packet = MarkedPacket(
            report=Report(event=b"sweep", location=(1.0, 1.0), timestamp=t)
        )
        for node_id in forwarders:
            context = NodeContext(
                node_id=node_id,
                key=keystore[node_id],
                provider=provider,
                rng=random.Random(f"sweep:{node_id}"),
            )
            packet = scheme.on_forward(context, packet)
        stream.append(packet)
    return topology, keystore, stream, forwarders[-1]


def _make_sink(topology: Topology, keystore: KeyStore) -> TracebackSink:
    return TracebackSink(
        PNMMarking(mark_prob=1.0), keystore, HmacProvider(), topology
    )


def _time_serial(topology, keystore, stream, delivering) -> tuple[float, TracebackSink]:
    sink = _make_sink(topology, keystore)
    start = time.perf_counter()
    for packet in stream:
        sink.receive(packet, delivering)
    return time.perf_counter() - start, sink


def _time_service(
    topology, keystore, stream, delivering, workers: int
) -> tuple[float, TracebackSink, float]:
    sink = _make_sink(topology, keystore)
    service = SinkIngestService(sink, capacity=len(stream), workers=workers)
    try:
        start = time.perf_counter()
        for packet in stream:
            service.submit(packet, delivering)
        service.flush()
        elapsed = time.perf_counter() - start
        cache_stats = service.stats().cache or {}
        service.publish_stats()
        return elapsed, sink, cache_stats.get("hot_hit_rate", 0.0)
    finally:
        service.close(drain=False)


def run(preset: Preset = QUICK) -> FigureResult:
    """Sweep ingest configurations and tabulate throughput and speedup."""
    grid_side, packets = _WORKLOADS.get(preset.name, _WORKLOADS["quick"])
    topology, keystore, stream, delivering = build_workload(grid_side, packets)

    serial_s, serial_sink = _time_serial(topology, keystore, stream, delivering)
    rows = [
        [
            "serial-sink",
            packets,
            round(serial_s, 4),
            round(packets / serial_s, 1),
            1.0,
            "-",
        ]
    ]
    verdicts_match = True
    for label, workers in (("service-cached", 0), ("service-parallel", 4)):
        elapsed, sink, hot_rate = _time_service(
            topology, keystore, stream, delivering, workers
        )
        verdicts_match = verdicts_match and sink.verdict() == serial_sink.verdict()
        rows.append(
            [
                label,
                packets,
                round(elapsed, 4),
                round(packets / elapsed, 1),
                round(serial_s / elapsed, 2),
                round(hot_rate, 3),
            ]
        )
    notes = [
        f"preset={preset.name}; {grid_side}x{grid_side} grid "
        f"({len(topology.sensor_nodes())} sensor nodes), exhaustive resolver, "
        f"{packets} distinct reports along one {len(stream[0].marks)}-hop route",
        f"all configurations produced the serial sink's verdict: {verdicts_match}",
    ]
    return FigureResult(
        figure_id="service-sweep",
        title="Sink ingest throughput: serial vs cached/parallel service",
        columns=[
            "config",
            "packets",
            "seconds",
            "packets_per_s",
            "speedup",
            "hot_hit_rate",
        ],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the sweep table to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
