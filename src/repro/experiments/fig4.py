"""Figure 4: analytical probability of collecting all marks.

"The probability that the sink collects marks from all n forwarding nodes
with x packets" -- the closed form ``(1 - (1-p)^x)^n`` with the average
marks per packet fixed at 3 (``p = 3/n``), for paths of 10, 20 and 30
nodes.  Paper reading: 90% confidence needs ~13 packets at n=10, ~33 at
n=20, ~54 at n=30.
"""

from __future__ import annotations

from repro.analysis.collection import collection_probability, packets_for_confidence
from repro.analysis.overhead import probability_for_target_marks
from repro.experiments.presets import QUICK, Preset
from repro.experiments.tables import FigureResult

__all__ = ["PATH_LENGTHS", "run", "main"]

PATH_LENGTHS = (10, 20, 30)
_X_MAX = 80


def run(preset: Preset = QUICK, target_marks: float = 3.0) -> FigureResult:
    """Compute the Figure 4 series (purely analytical; preset only recorded).

    Args:
        preset: recorded in provenance notes (no Monte Carlo here).
        target_marks: average marks per packet (the paper's 3).
    """
    columns = ["packets"] + [f"P_all_n{n}" for n in PATH_LENGTHS]
    rows = []
    for x in range(1, _X_MAX + 1):
        row: list[object] = [x]
        for n in PATH_LENGTHS:
            p = probability_for_target_marks(n, target_marks)
            row.append(collection_probability(n, p, x))
        rows.append(row)

    notes = [f"preset={preset.name}; analytical, p = {target_marks}/n"]
    for n in PATH_LENGTHS:
        p = probability_for_target_marks(n, target_marks)
        notes.append(
            f"n={n}: 90% confidence at {packets_for_confidence(n, p, 0.9)} packets "
            f"(paper: ~{dict(zip(PATH_LENGTHS, (13, 33, 54), strict=True))[n]})"
        )
    return FigureResult(
        figure_id="fig4",
        title="P(all n forwarders' marks collected within x packets), np=3",
        columns=columns,
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the experiment table to stdout."""
    result = run()
    # Print a thinned-out table (every 5th packet) for readability.
    thinned = FigureResult(
        figure_id=result.figure_id,
        title=result.title,
        columns=result.columns,
        rows=[r for r in result.rows if r[0] % 5 == 0 or r[0] == 1],
        notes=result.notes,
    )
    print(thinned.render())


if __name__ == "__main__":
    main()
