"""Routing substrate.

The paper assumes stable routing where each node has exactly one next-hop
neighbor toward the sink, "consistent with tree-based routing protocols
(TinyDB) or geographical forwarding (GPSR)" (Section 2.1).  Both styles are
implemented here over the static :class:`~repro.net.topology.Topology`:

* :mod:`repro.routing.tree` -- shortest-path trees built by BFS from the
  sink, with deterministic or randomized parent tie-breaking.
* :mod:`repro.routing.geographic` -- greedy geographic forwarding: each node
  forwards to its neighbor closest to the sink.
* :mod:`repro.routing.dynamics` -- controlled route churn for the Section 7
  "Impact of Routing Dynamics" ablation.
* :mod:`repro.routing.repair` -- retry/backoff dead-hop detection policy
  and a routing table that locally rebuilds the tree around crashed
  nodes (driven by the fault subsystem, :mod:`repro.faults`).
"""

from repro.routing.base import RoutingError, RoutingTable
from repro.routing.dynamics import RouteDynamics
from repro.routing.geographic import build_greedy_geographic_table
from repro.routing.repair import RepairingRoutingTable, RepairPolicy
from repro.routing.tree import build_routing_tree

__all__ = [
    "RoutingTable",
    "RoutingError",
    "build_routing_tree",
    "build_greedy_geographic_table",
    "RouteDynamics",
    "RepairPolicy",
    "RepairingRoutingTable",
]
