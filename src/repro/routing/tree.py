"""Tree-based routing: a shortest-path tree rooted at the sink.

This models TinyDB-style collection trees: BFS from the sink assigns every
node a depth, and each node picks one parent among its neighbors at the
previous depth.  Ties between equally-deep parent candidates are broken
either deterministically (lowest ID, the default) or by a seeded RNG, which
lets :mod:`repro.routing.dynamics` generate alternative-but-equally-short
trees to model route churn.
"""

from __future__ import annotations

import random

from repro.net.topology import Topology
from repro.routing.base import RoutingError, RoutingTable

__all__ = ["build_routing_tree"]


def build_routing_tree(
    topology: Topology,
    tie_break_seed: int | None = None,
    require_full_coverage: bool = True,
) -> RoutingTable:
    """Build a BFS shortest-path tree toward the sink.

    Args:
        topology: the deployment.
        tie_break_seed: if ``None``, each node parents on its lowest-ID
            eligible neighbor (deterministic); otherwise parents are chosen
            uniformly among eligible neighbors with this seed.
        require_full_coverage: if true, raise when some node cannot reach
            the sink; if false, unreachable nodes are simply left unrouted.

    Raises:
        RoutingError: if coverage is required and the topology is
            disconnected.
    """
    depths = topology.hop_distances()
    if require_full_coverage and len(depths) != topology.num_nodes():
        unreachable = sorted(set(topology.nodes()) - set(depths))
        raise RoutingError(
            f"{len(unreachable)} node(s) cannot reach the sink: "
            f"{unreachable[:10]}{'...' if len(unreachable) > 10 else ''}"
        )

    rng = random.Random(tie_break_seed) if tie_break_seed is not None else None
    next_hop: dict[int, int] = {}
    for node, depth in depths.items():
        if node == topology.sink:
            continue
        candidates = sorted(
            nbr for nbr in topology.neighbors(node) if depths.get(nbr) == depth - 1
        )
        if rng is None:
            next_hop[node] = candidates[0]
        else:
            next_hop[node] = rng.choice(candidates)
    return RoutingTable(next_hop, sink=topology.sink)
