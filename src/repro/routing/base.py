"""Routing table abstraction shared by all routing protocols.

A routing table is a pure next-hop function: when routes are stable, every
node has exactly one next-hop neighbor for the sink and forwards all packets
through it (Section 2.1).  The table also answers path queries, which the
experiment harness uses to enumerate the forwarding nodes ``V_1 ... V_n``
between a source and the sink.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["RoutingTable", "RoutingError"]


class RoutingError(RuntimeError):
    """Raised when a route to the sink does not exist or loops."""


class RoutingTable:
    """Immutable next-hop table toward a single sink.

    Args:
        next_hop: mapping from node ID to its unique next-hop neighbor.
            The sink must not appear as a key.
        sink: the destination all routes lead to.
    """

    def __init__(self, next_hop: Mapping[int, int], sink: int):
        if sink in next_hop:
            raise ValueError("sink must not have a next hop")
        self._next_hop = dict(next_hop)
        self.sink = sink

    def next_hop(self, node_id: int) -> int:
        """The unique neighbor ``node_id`` forwards through.

        Raises:
            RoutingError: if the node has no route.
        """
        if node_id == self.sink:
            raise RoutingError("the sink does not forward")
        try:
            return self._next_hop[node_id]
        except KeyError:
            raise RoutingError(f"node {node_id} has no route to the sink") from None

    def has_route(self, node_id: int) -> bool:
        """Whether the node can currently reach the sink."""
        return node_id == self.sink or node_id in self._next_hop

    def path_to_sink(self, node_id: int) -> list[int]:
        """The full path ``[node_id, ..., sink]``.

        Raises:
            RoutingError: if the route is missing or contains a loop.
        """
        path = [node_id]
        seen = {node_id}
        current = node_id
        while current != self.sink:
            current = self.next_hop(current)
            if current in seen:
                raise RoutingError(
                    f"routing loop detected at node {current} "
                    f"on path from {node_id}"
                )
            seen.add(current)
            path.append(current)
        return path

    def forwarders_between(self, source: int) -> list[int]:
        """The intermediate nodes ``V_1 ... V_n`` between ``source`` and sink.

        ``V_1`` is the source's next hop (most upstream forwarder); ``V_n``
        delivers to the sink.  Excludes both the source and the sink.
        """
        return self.path_to_sink(source)[1:-1]

    def hop_count(self, node_id: int) -> int:
        """Number of hops from ``node_id`` to the sink."""
        return len(self.path_to_sink(node_id)) - 1

    def routed_nodes(self) -> list[int]:
        """All nodes that currently have a route (excluding the sink)."""
        return sorted(self._next_hop)

    def as_dict(self) -> dict[int, int]:
        """A copy of the raw next-hop mapping."""
        return dict(self._next_hop)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            return NotImplemented
        return self.sink == other.sink and self._next_hop == other._next_hop

    def __repr__(self) -> str:
        return f"RoutingTable({len(self._next_hop)} routed nodes, sink={self.sink})"
