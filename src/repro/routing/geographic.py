"""Greedy geographic forwarding (GPSR greedy mode).

Each node forwards to the one-hop neighbor geographically closest to the
sink, provided that neighbor is strictly closer than the node itself.  This
is the greedy mode of GPSR; we do not implement perimeter (face) routing --
deployments dense enough for the paper's experiments have no voids, and
:func:`build_greedy_geographic_table` reports any node that would need it.
"""

from __future__ import annotations

from repro.net.topology import Topology
from repro.routing.base import RoutingError, RoutingTable

__all__ = ["build_greedy_geographic_table"]


def build_greedy_geographic_table(
    topology: Topology,
    require_full_coverage: bool = True,
) -> RoutingTable:
    """Build a next-hop table by greedy geographic forwarding.

    Args:
        topology: the deployment (node positions drive the greedy choice).
        require_full_coverage: if true, raise when any node is a local
            minimum (has no neighbor strictly closer to the sink); if
            false, such nodes are left unrouted.

    Raises:
        RoutingError: if coverage is required and some node is stuck at a
            local minimum (a routing void).
    """
    sink = topology.sink
    next_hop: dict[int, int] = {}
    stuck: list[int] = []
    for node in topology.nodes():
        if node == sink:
            continue
        my_dist = topology.distance(node, sink)
        best: int | None = None
        best_dist = my_dist
        for nbr in sorted(topology.neighbors(node)):
            nbr_dist = topology.distance(nbr, sink)
            if nbr_dist < best_dist:
                best, best_dist = nbr, nbr_dist
        if best is None:
            stuck.append(node)
        else:
            next_hop[node] = best
    if stuck and require_full_coverage:
        raise RoutingError(
            f"greedy forwarding stuck at local minima for node(s) "
            f"{sorted(stuck)[:10]}{'...' if len(stuck) > 10 else ''}; "
            f"the deployment has voids (perimeter routing not implemented)"
        )
    table = RoutingTable(next_hop, sink=sink)
    if not stuck:
        _check_acyclic(table)
    return table


def _check_acyclic(table: RoutingTable) -> None:
    """Greedy-over-distance is provably loop-free; verify as a guard."""
    for node in table.routed_nodes():
        table.path_to_sink(node)  # raises RoutingError on a loop
