"""Controlled route churn for the Section 7 routing-dynamics ablation.

PNM assumes routes are stable during the traceback window (about 10 seconds
for a 40-hop trace, Section 7).  The paper argues that even if routes do
change, traceback still succeeds *as long as the relative upstream relation
among nodes is preserved*.  :class:`RouteDynamics` generates sequences of
routing tables in two regimes so the ablation bench can test both halves of
that claim:

* ``order_preserving=True`` -- re-break BFS parent ties, which yields a
  different shortest-path tree but never inverts who is upstream of whom on
  the source's path (all trees are depth-consistent).
* ``order_preserving=False`` -- additionally allow "detour" parents one
  depth *equal* (sideways), which can reorder nodes on the path.
"""

from __future__ import annotations

import random

from repro.net.topology import Topology
from repro.routing.base import RoutingTable
from repro.routing.tree import build_routing_tree

__all__ = ["RouteDynamics"]


class RouteDynamics:
    """A deterministic generator of successive routing tables.

    Args:
        topology: the deployment.
        seed: RNG seed controlling the whole table sequence.
        order_preserving: see module docstring.
    """

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        order_preserving: bool = True,
    ):
        self._topology = topology
        self._rng = random.Random(f"route-dynamics:{seed}")
        self._order_preserving = order_preserving
        self._generation = 0

    @property
    def generation(self) -> int:
        """How many tables have been produced so far."""
        return self._generation

    def next_table(self) -> RoutingTable:
        """Produce the next routing table in the churn sequence."""
        self._generation += 1
        if self._order_preserving:
            return build_routing_tree(
                self._topology, tie_break_seed=self._rng.randrange(2**31)
            )
        return self._sideways_table()

    def _sideways_table(self) -> RoutingTable:
        """A tree where some nodes parent on an equal-depth neighbor.

        A node may forward "sideways" to a same-depth neighbor whose own
        parent is at the previous depth.  Paths remain loop-free (the
        sideways hop is taken at most once per node because the sideways
        parent immediately descends), but two nodes at the same depth can
        now appear in either relative order on a path, breaking the
        upstream-order invariant.
        """
        depths = self._topology.hop_distances()
        base = build_routing_tree(
            self._topology, tie_break_seed=self._rng.randrange(2**31)
        )
        next_hop = base.as_dict()
        for node in list(next_hop):
            same_depth = [
                nbr
                for nbr in self._topology.neighbors(node)
                if depths.get(nbr) == depths[node] and nbr in next_hop
                # Only detour via a neighbor that itself descends, so the
                # sideways step cannot chain into a loop.
                and depths.get(next_hop[nbr]) == depths[node] - 1
            ]
            if same_depth and self._rng.random() < 0.3:
                next_hop[node] = self._rng.choice(same_depth)
        table = RoutingTable(next_hop, sink=self._topology.sink)
        # Guard: the construction above cannot loop, but verify cheaply.
        for node in table.routed_nodes():
            table.path_to_sink(node)
        return table
