"""Route repair: rebuilding the forwarding tree around dead nodes.

PNM's traceback window assumes routes stay stable for a few seconds
(Section 7), but a deployment that runs for weeks sees nodes crash, drain
their batteries, and come back after maintenance.  Collection-tree
protocols handle this with *local repair*: when a node's parent stops
acknowledging, the node retries a bounded number of times, declares the
parent dead, and re-parents on another live neighbor that still has a
route.  This module provides both halves:

* :class:`RepairPolicy` -- how many retransmissions a sender attempts,
  and with what backoff, before declaring its next hop dead.  The
  simulator (:class:`~repro.sim.network.NetworkSimulation`) drives the
  retries on its virtual clock.
* :class:`RepairingRoutingTable` -- a routing table that accepts
  ``mark_dead``/``mark_alive`` notifications and deterministically
  rebuilds the forwarding tree over the surviving nodes.  The rebuilt
  tree is exactly the BFS tree of the alive subgraph (lowest-ID parent
  tie-break), i.e. the state local repair converges to; nodes that lose
  every path to the sink become unrouted until a recovery reconnects
  them.

Repair deliberately preserves nothing about upstream order: a repaired
route can reorder nodes relative to the original tree, which is exactly
the regime *On Algebraic Traceback in Dynamic Networks* warns about and
what the fault experiments (:mod:`repro.faults`) stress.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Topology
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.routing.base import RoutingTable

__all__ = ["RepairPolicy", "RepairingRoutingTable"]


@dataclass(frozen=True)
class RepairPolicy:
    """Retry-and-backoff discipline for detecting a dead next hop.

    A sender whose next hop does not acknowledge retries the
    transmission ``max_retries`` times, waiting
    ``backoff_base * backoff_factor ** attempt`` seconds (virtual time)
    before each retry, then declares the hop dead and asks the routing
    layer for a repair.

    Attributes:
        max_retries: retransmissions before declaring the hop dead.
        backoff_base: delay in seconds before the first retry.
        backoff_factor: multiplicative backoff growth per attempt.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base <= 0:
            raise ValueError(f"backoff_base must be > 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return self.backoff_base * self.backoff_factor**attempt


class RepairingRoutingTable(RoutingTable):
    """A routing table that survives node deaths by local tree rebuilds.

    Starts from a BFS shortest-path tree (or any provided base table)
    and mutates its next-hop map as nodes are reported dead or alive.
    Rebuilds are deterministic -- BFS over the alive subgraph with
    lowest-ID parent tie-breaking -- so two runs seeing the same death
    sequence produce identical routes.

    Dead nodes neither forward (they lose their table entry) nor serve
    as parents; nodes cut off from the sink become unrouted and
    :meth:`~repro.routing.base.RoutingTable.next_hop` raises
    :class:`~repro.routing.base.RoutingError` for them until a
    ``mark_alive`` restores connectivity.

    Args:
        topology: the deployment graph (connectivity never changes; only
            liveness does).
        base: initial routes; defaults to the deterministic BFS tree.
        obs: observability provider; ``None`` resolves to the process
            default.  Rebuilds are timed (``route_rebuild_seconds``) and
            counted (``route_repairs_total``).
    """

    def __init__(
        self,
        topology: Topology,
        base: RoutingTable | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.obs = resolve_provider(obs)
        if base is None:
            # Equivalent to build_routing_tree(topology) but shares the
            # rebuild path so initial and repaired routes agree in style.
            base_map = self._tree_over(topology, dead=frozenset())
        else:
            if base.sink != topology.sink:
                raise ValueError(
                    f"base table sink {base.sink} != topology sink {topology.sink}"
                )
            base_map = base.as_dict()
        super().__init__(base_map, sink=topology.sink)
        self.topology = topology
        self._dead: set[int] = set()
        self.repairs = 0
        self.routes_changed = 0

    @staticmethod
    def _tree_over(topology: Topology, dead: frozenset[int]) -> dict[int, int]:
        """Deterministic BFS next-hop map over the alive subgraph."""
        dist: dict[int, int] = {topology.sink: 0}
        frontier = [topology.sink]
        while frontier:
            next_frontier = []
            for node in sorted(frontier):
                for nbr in sorted(topology.neighbors(node)):
                    if nbr in dist or nbr in dead:
                        continue
                    dist[nbr] = dist[node] + 1
                    next_frontier.append(nbr)
            frontier = next_frontier
        next_hop: dict[int, int] = {}
        for node, depth in dist.items():
            if node == topology.sink:
                continue
            parents = sorted(
                nbr
                for nbr in topology.neighbors(node)
                if dist.get(nbr) == depth - 1
            )
            next_hop[node] = parents[0]
        return next_hop

    # Liveness notifications ---------------------------------------------------

    def mark_dead(self, node_id: int) -> int:
        """Record that ``node_id`` stopped forwarding; rebuild around it.

        Returns:
            How many nodes' next hops changed (0 if the node was already
            known dead).

        Raises:
            ValueError: if the sink is declared dead -- it is the trusted
                root and its failure is out of scope.
        """
        if node_id == self.sink:
            raise ValueError("the sink cannot be declared dead")
        if node_id in self._dead:
            return 0
        self._dead.add(node_id)
        return self._rebuild()

    def mark_alive(self, node_id: int) -> int:
        """Record that ``node_id`` recovered; re-admit it to the tree.

        Returns:
            How many nodes' next hops changed (0 if it was not dead).
        """
        if node_id not in self._dead:
            return 0
        self._dead.discard(node_id)
        return self._rebuild()

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Nodes currently believed dead."""
        return frozenset(self._dead)

    def _rebuild(self) -> int:
        with self.obs.timer("route_rebuild_seconds"):
            old = dict(self._next_hop)
            new = self._tree_over(self.topology, dead=frozenset(self._dead))
            self._next_hop.clear()
            self._next_hop.update(new)
            changed = sum(
                1
                for node in sorted(set(old) | set(new))
                if old.get(node) != new.get(node)
            )
        self.repairs += 1
        self.routes_changed += changed
        self.obs.inc("route_repairs_total")
        return changed

    def __repr__(self) -> str:
        return (
            f"RepairingRoutingTable({len(self._next_hop)} routed nodes, "
            f"sink={self.sink}, dead={sorted(self._dead)}, "
            f"repairs={self.repairs})"
        )
