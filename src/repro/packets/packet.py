"""Marked packets: a report plus the marks accumulated along the path.

The nested-marking MAC of hop ``i`` is computed over the *entire message
received from the previous hop*, ``M_{i-1}`` -- i.e. over the exact wire
bytes of the report and all earlier marks.  :meth:`MarkedPacket.prefix_wire`
exposes those byte prefixes so marking schemes and the sink compute MACs over
identical data.

Packets are treated as immutable values; forwarding (and mark manipulation by
moles) produces new packets via :meth:`with_mark` / :meth:`with_marks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.packets.marks import Mark, MarkFormat
from repro.packets.report import Report

__all__ = ["MarkedPacket"]


@dataclass(frozen=True)
class MarkedPacket:
    """A sensing report plus an ordered list of marks.

    Attributes:
        report: the original report ``M``.
        marks: marks in the order they were appended (upstream first).
        origin: *simulation metadata*, not on the wire: the true injecting
            node, used only for scoring experiment outcomes.
    """

    report: Report
    marks: tuple[Mark, ...] = ()
    origin: int | None = field(default=None, compare=False)

    @property
    def report_wire(self) -> bytes:
        """Wire bytes of the bare report ``M``."""
        return self.report.encode()

    def prefix_wire(self, num_marks: int) -> bytes:
        """Wire bytes of the report plus the first ``num_marks`` marks.

        ``prefix_wire(i)`` is exactly ``M_i`` in the paper's notation when
        every node so far has marked, and more generally the message as it
        stood before mark ``num_marks`` was appended.

        Raises:
            ValueError: if ``num_marks`` exceeds the number of marks present.
        """
        if not 0 <= num_marks <= len(self.marks):
            raise ValueError(
                f"num_marks={num_marks} out of range 0..{len(self.marks)}"
            )
        parts = [self.report_wire]
        parts.extend(mark.encode() for mark in self.marks[:num_marks])
        return b"".join(parts)

    def wire(self) -> bytes:
        """Full wire bytes of the packet as currently marked."""
        return self.prefix_wire(len(self.marks))

    @property
    def wire_len(self) -> int:
        """Total transmitted size in bytes (report + all marks)."""
        return self.report.wire_len + sum(m.wire_len for m in self.marks)

    @property
    def num_marks(self) -> int:
        return len(self.marks)

    def with_mark(self, mark: Mark) -> "MarkedPacket":
        """Return a copy with ``mark`` appended (what a marking node sends)."""
        return replace(self, marks=self.marks + (mark,))

    def with_marks(self, marks: tuple[Mark, ...]) -> "MarkedPacket":
        """Return a copy with the mark list replaced (what a mole may send)."""
        return replace(self, marks=tuple(marks))

    @classmethod
    def decode(
        cls, data: bytes, fmt: MarkFormat, num_marks: int | None = None
    ) -> "MarkedPacket":
        """Parse a packet whose marks are laid out per ``fmt``.

        Without ``num_marks`` the whole buffer past the report must divide
        exactly into marks -- any other trailing bytes are rejected, never
        silently ignored.  Mark-aligned garbage is indistinguishable from
        real marks at this layer, so framed transports (:mod:`repro.wire`)
        carry the mark count explicitly and pass it here: with ``num_marks``
        given, the buffer must hold *exactly* that many marks, and even
        mark-aligned trailing bytes raise.

        Raises:
            ValueError: if the trailing bytes are not a whole number of
                marks, or do not match ``num_marks`` when it is given.
        """
        report, consumed = Report.decode_prefix(data)
        remainder = data[consumed:]
        if num_marks is not None:
            if num_marks < 0:
                raise ValueError(f"num_marks must be >= 0, got {num_marks}")
            expected = num_marks * fmt.mark_len
            if len(remainder) < expected:
                raise ValueError(
                    f"buffer too short for {num_marks} marks: "
                    f"need {expected} bytes, have {len(remainder)}"
                )
            if len(remainder) > expected:
                raise ValueError(
                    f"{len(remainder) - expected} trailing bytes after "
                    f"{num_marks} marks"
                )
        if len(remainder) % fmt.mark_len != 0:
            raise ValueError(
                f"{len(remainder)} trailing bytes is not a multiple of "
                f"mark length {fmt.mark_len}"
            )
        marks = tuple(
            Mark.decode(remainder[i : i + fmt.mark_len], fmt)
            for i in range(0, len(remainder), fmt.mark_len)
        )
        return cls(report=report, marks=marks)
