"""Sensing reports: ``M = E | L | T``.

A report carries an event description (opaque bytes, e.g. sensor readings),
the location of the event, and a timestamp.  Bogus reports injected by a
source mole conform to this same format -- they must, or legitimate
forwarding nodes would drop them -- but cannot all be identical, or duplicate
suppression would discard them (Section 2.3, footnote 2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["Report", "MAX_EVENT_LEN"]

#: Maximum encodable event payload length (u16 length prefix).
MAX_EVENT_LEN = 0xFFFF

# Wire layout: [event_len: u16][event][x: i32][y: i32][timestamp: u32]
_HEADER = struct.Struct(">H")
_TRAILER = struct.Struct(">iiI")

# Location coordinates are encoded in fixed-point millimetres.
_MM_PER_UNIT = 1000


@dataclass(frozen=True)
class Report:
    """An immutable sensing report.

    Attributes:
        event: opaque event description bytes (sensor readings etc.).
        location: ``(x, y)`` position of the reported event, in the
            deployment's coordinate units (metres in the examples).
        timestamp: event time in integer simulation ticks.
    """

    event: bytes
    location: tuple[float, float]
    timestamp: int

    def __post_init__(self) -> None:
        if len(self.event) > MAX_EVENT_LEN:
            raise ValueError(
                f"event payload too long: {len(self.event)} > {MAX_EVENT_LEN}"
            )
        if not 0 <= self.timestamp <= 0xFFFFFFFF:
            raise ValueError(f"timestamp out of u32 range: {self.timestamp}")
        x_mm, y_mm = self._location_mm()
        for coord in (x_mm, y_mm):
            if not -(2**31) <= coord < 2**31:
                raise ValueError(f"location out of encodable range: {self.location}")

    def _location_mm(self) -> tuple[int, int]:
        x, y = self.location
        return round(x * _MM_PER_UNIT), round(y * _MM_PER_UNIT)

    def encode(self) -> bytes:
        """Serialize to canonical wire bytes ``E | L | T``."""
        x_mm, y_mm = self._location_mm()
        return (
            _HEADER.pack(len(self.event))
            + self.event
            + _TRAILER.pack(x_mm, y_mm, self.timestamp)
        )

    @property
    def wire_len(self) -> int:
        """Encoded length in bytes."""
        return _HEADER.size + len(self.event) + _TRAILER.size

    @classmethod
    def decode(cls, data: bytes) -> "Report":
        """Parse wire bytes produced by :meth:`encode`.

        Raises:
            ValueError: if the buffer is truncated or has trailing bytes.
        """
        report, consumed = cls.decode_prefix(data)
        if consumed != len(data):
            raise ValueError(
                f"trailing bytes after report: {len(data) - consumed} extra"
            )
        return report

    @classmethod
    def decode_prefix(cls, data: bytes) -> tuple["Report", int]:
        """Parse a report from the front of ``data``.

        Returns:
            The decoded report and the number of bytes consumed.
        """
        if len(data) < _HEADER.size:
            raise ValueError("buffer too short for report header")
        (event_len,) = _HEADER.unpack_from(data, 0)
        total = _HEADER.size + event_len + _TRAILER.size
        if len(data) < total:
            raise ValueError(
                f"buffer too short for report: need {total}, have {len(data)}"
            )
        event = bytes(data[_HEADER.size : _HEADER.size + event_len])
        x_mm, y_mm, timestamp = _TRAILER.unpack_from(data, _HEADER.size + event_len)
        report = cls(
            event=event,
            location=(x_mm / _MM_PER_UNIT, y_mm / _MM_PER_UNIT),
            timestamp=timestamp,
        )
        return report, total
