"""Packet model and byte-level wire formats.

Every sensing report is ``M = E | L | T`` (event, location, timestamp,
Section 2.3).  Forwarding nodes append *marks*; a mark is an ID field (a real
node ID or an anonymous ID) followed by a MAC.  All MACs in the marking
schemes are computed over exact wire bytes, so this package defines the
canonical encodings and provides overhead accounting in real bytes.
"""

from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report

__all__ = ["Report", "Mark", "MarkFormat", "MarkedPacket"]
