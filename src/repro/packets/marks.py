"""Marks: the per-hop records appended by marking schemes.

A mark on the wire is ``[id_field][mac]``.  The ID field holds either a
plain-text node ID (basic nested marking, the AMS/PPM baselines) or an
anonymous ID (full PNM).  The MAC field may be empty for unauthenticated
baselines (Savage-style probabilistic packet marking).

Field lengths are fixed per deployment by a :class:`MarkFormat`, so any node
(including a mole) can parse the mark list of a packet it forwards.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MarkFormat", "Mark"]

DEFAULT_ID_LEN = 2


@dataclass(frozen=True)
class MarkFormat:
    """Wire layout of a single mark.

    Attributes:
        id_len: bytes in the ID field.  2 bytes suffice for 65k nodes with
            plain IDs; anonymous IDs typically use 4.
        mac_len: bytes in the MAC field (0 for unauthenticated marking).
        anonymous: whether the ID field carries an anonymous ID that the
            sink must resolve, rather than a plain node ID.
        algebraic: whether the ID field carries an algebraic accumulator
            (``count | field element``, see :mod:`repro.algebraic`) that is
            *replaced* per hop instead of appended.  Mutually exclusive
            with ``anonymous``.
    """

    id_len: int = DEFAULT_ID_LEN
    mac_len: int = 4
    anonymous: bool = False
    algebraic: bool = False

    def __post_init__(self) -> None:
        if self.id_len < 1:
            raise ValueError(f"id_len must be >= 1, got {self.id_len}")
        if self.mac_len < 0:
            raise ValueError(f"mac_len must be >= 0, got {self.mac_len}")
        if self.algebraic and self.anonymous:
            raise ValueError("a mark format cannot be both anonymous and algebraic")

    @property
    def mark_len(self) -> int:
        """Total encoded length of one mark."""
        return self.id_len + self.mac_len

    def encode_node_id(self, node_id: int) -> bytes:
        """Encode a plain node ID into an ID field."""
        if node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {node_id}")
        if node_id >= 1 << (8 * self.id_len):
            raise ValueError(
                f"node_id {node_id} does not fit in {self.id_len} byte(s)"
            )
        return node_id.to_bytes(self.id_len, "big")

    def decode_node_id(self, id_field: bytes) -> int:
        """Decode a plain node ID from an ID field."""
        if len(id_field) != self.id_len:
            raise ValueError(
                f"id field has {len(id_field)} bytes, format expects {self.id_len}"
            )
        return int.from_bytes(id_field, "big")


@dataclass(frozen=True)
class Mark:
    """One mark as it appears on the wire.

    The ``id_field`` is raw bytes: a big-endian node ID for plain-ID schemes
    or an anonymous ID for PNM.  Interpretation belongs to the scheme and the
    sink, not to the mark itself -- a forwarding mole sees exactly these
    bytes and nothing more.
    """

    id_field: bytes
    mac: bytes

    def encode(self) -> bytes:
        """Concatenate the two fields in wire order."""
        return self.id_field + self.mac

    @property
    def wire_len(self) -> int:
        return len(self.id_field) + len(self.mac)

    @classmethod
    def decode(cls, data: bytes, fmt: MarkFormat) -> "Mark":
        """Parse one mark laid out per ``fmt``.

        Raises:
            ValueError: if ``data`` is not exactly one mark long.
        """
        if len(data) != fmt.mark_len:
            raise ValueError(
                f"mark buffer has {len(data)} bytes, format expects {fmt.mark_len}"
            )
        return cls(id_field=bytes(data[: fmt.id_len]), mac=bytes(data[fmt.id_len :]))

    def matches_format(self, fmt: MarkFormat) -> bool:
        """Whether this mark's field sizes agree with ``fmt``."""
        return len(self.id_field) == fmt.id_len and len(self.mac) == fmt.mac_len
