"""repro: a full reproduction of "Catching 'Moles' in Sensor Networks".

Fan Ye, Hao Yang, Zhen Liu -- ICDCS 2007.

The package implements Probabilistic Nested Marking (PNM) -- a traceback
scheme that locates compromised sensor nodes injecting false data, even
when forwarding moles collude to manipulate packet marks -- together with
every substrate the paper depends on: the sensor-network and routing
models, a discrete-event simulator, the baseline marking schemes it
compares against, the full colluding-attack taxonomy, en-route filtering,
and the analytical models behind its evaluation.

Quickstart::

    from repro import Scenario, run_scenario

    result = run_scenario(
        Scenario(n_forwarders=20, scheme="pnm", attack="selective-drop"),
        num_packets=300,
    )
    print(result.outcome)          # "caught"
    print(result.suspect_members)  # the one-hop neighborhood holding a mole

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core import (
    ATTACK_NAMES,
    BuiltScenario,
    ExperimentResult,
    Scenario,
    build_scenario,
    run_scenario,
)
from repro.crypto import HmacProvider, KeyStore, NullMacProvider
from repro.marking import (
    SCHEME_CLASSES,
    ExtendedAMS,
    MarkingScheme,
    NaiveProbabilisticNested,
    NestedMarking,
    NoMarking,
    PartiallyNestedMarking,
    PNMMarking,
    PPMMarking,
    scheme_by_name,
)
from repro.net import Topology, grid_topology, linear_path_topology, random_topology
from repro.packets import Mark, MarkedPacket, MarkFormat, Report
from repro.sim import NetworkSimulation, PathPipeline
from repro.traceback import SuspectNeighborhood, TracebackSink, TracebackVerdict

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core API
    "Scenario",
    "ATTACK_NAMES",
    "BuiltScenario",
    "build_scenario",
    "ExperimentResult",
    "run_scenario",
    # Crypto
    "KeyStore",
    "HmacProvider",
    "NullMacProvider",
    # Packets
    "Report",
    "Mark",
    "MarkFormat",
    "MarkedPacket",
    # Schemes
    "MarkingScheme",
    "scheme_by_name",
    "SCHEME_CLASSES",
    "NoMarking",
    "PPMMarking",
    "ExtendedAMS",
    "NestedMarking",
    "NaiveProbabilisticNested",
    "PNMMarking",
    "PartiallyNestedMarking",
    # Network
    "Topology",
    "linear_path_topology",
    "grid_topology",
    "random_topology",
    # Simulation
    "PathPipeline",
    "NetworkSimulation",
    # Traceback
    "TracebackSink",
    "TracebackVerdict",
    "SuspectNeighborhood",
]
