"""Duplicate message suppression.

Legitimate forwarding nodes drop reports they have recently seen: redundant
copies waste energy, and replayed packets are byte-identical to their
originals (a mole cannot re-stamp a captured report without invalidating
its marks).  Sensor nodes have tiny memories, so the cache is a bounded
LRU keyed by a digest of the report bytes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.packets.report import Report

__all__ = ["DuplicateSuppressor"]


class DuplicateSuppressor:
    """Bounded-memory recently-seen-report cache.

    Args:
        capacity: number of report digests remembered (models the node's
            scarce RAM; eviction is least-recently-seen).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._seen: OrderedDict[bytes, None] = OrderedDict()
        self.duplicates_dropped = 0

    @staticmethod
    def _digest(report: Report) -> bytes:
        return hashlib.sha256(report.encode()).digest()[:8]

    def is_duplicate(self, report: Report) -> bool:
        """Check-and-record: True if ``report`` was seen recently.

        A hit refreshes the entry's recency and increments
        :attr:`duplicates_dropped` (callers drop on True).
        """
        digest = self._digest(report)
        if digest in self._seen:
            self._seen.move_to_end(digest)
            self.duplicates_dropped += 1
            return True
        self._seen[digest] = None
        if len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return False

    def __len__(self) -> int:
        return len(self._seen)

    def __repr__(self) -> str:
        return (
            f"DuplicateSuppressor(capacity={self.capacity}, "
            f"cached={len(self._seen)}, dropped={self.duplicates_dropped})"
        )
