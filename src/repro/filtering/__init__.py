"""En-route filtering substrate.

The paper positions traceback as a complement to en-route filtering
schemes (SEF and friends, Section 8): filtering passively drops bogus
reports; traceback actively locates their origin.  This package provides
the filtering side so examples can run both together, plus the replay
countermeasures sketched in Section 7:

* :class:`DuplicateSuppressor` -- per-node LRU suppression of repeated
  reports (why bogus reports must all differ, and the first defense
  against replays).
* :class:`FreshnessFilter` -- rejects reports with stale timestamps
  (a one-time-use sequence-number analogue).
* :mod:`repro.filtering.sef` -- a compact statistical en-route filtering
  implementation with a global key pool and probabilistic en-route MAC
  verification.
"""

from repro.filtering.freshness import FreshnessFilter
from repro.filtering.sef import (
    Endorsement,
    KeyPool,
    SefFilterForwarder,
    attach_endorsements,
    endorse,
    extract_endorsements,
)
from repro.filtering.seqnum import OneTimeSequenceFilter
from repro.filtering.suppression import DuplicateSuppressor

__all__ = [
    "DuplicateSuppressor",
    "FreshnessFilter",
    "OneTimeSequenceFilter",
    "KeyPool",
    "Endorsement",
    "attach_endorsements",
    "extract_endorsements",
    "endorse",
    "SefFilterForwarder",
]
