"""Timestamp-freshness filtering: the one-time sequence-number analogue.

Section 7 suggests thwarting replay attacks with "packet sequence numbers
that can be used one-time only".  Reports already carry a timestamp; a
forwarding node (or the sink) can therefore reject reports that are too far
behind the freshest traffic it has observed -- replays necessarily carry
the original, stale timestamp, since re-stamping would invalidate the
captured marks.
"""

from __future__ import annotations

from repro.packets.report import Report

__all__ = ["FreshnessFilter"]


class FreshnessFilter:
    """Rejects reports whose timestamp lags the observed maximum.

    Args:
        window: how many ticks behind the freshest accepted report a
            timestamp may be.  Must cover legitimate in-network latency
            plus clock skew; anything older is treated as a replay.
    """

    def __init__(self, window: int = 1000):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.window = window
        self._freshest: int | None = None
        self.rejected = 0

    def is_fresh(self, report: Report) -> bool:
        """Check-and-record: whether the report's timestamp is acceptable."""
        if self._freshest is not None and report.timestamp < self._freshest - self.window:
            self.rejected += 1
            return False
        if self._freshest is None or report.timestamp > self._freshest:
            self._freshest = report.timestamp
        return True

    @property
    def freshest_seen(self) -> int | None:
        return self._freshest

    def __repr__(self) -> str:
        return (
            f"FreshnessFilter(window={self.window}, "
            f"freshest={self._freshest}, rejected={self.rejected})"
        )
