"""A compact statistical en-route filtering (SEF) implementation.

SEF (Ye et al., INFOCOM 2004 -- reference [12] of the paper) drops forged
reports *en route* using a global key pool:

* The pool holds ``pool_size`` symmetric keys split into partitions; every
  node is pre-loaded with ``keys_per_node`` keys from one random partition.
* A legitimate event is witnessed by several nearby sensors; ``threshold``
  of them each attach an *endorsement* -- a MAC over the report under one
  of their pool keys, tagged with the key's index.  Endorsements must come
  from distinct partitions.
* A forwarding node that happens to hold one of the endorsing keys
  recomputes that MAC; a mismatch reveals forgery and the report is
  dropped.  A mole can only produce valid endorsements for the few keys it
  actually holds, so its forged reports are dropped probabilistically at
  every honest hop.

This gives the examples a real passive-defense baseline to contrast with
PNM's active traceback: filtering thins the attack traffic, PNM locates
its origin.

Endorsements ride inside the report's event field (``payload |
endorsement blob``), so SEF composes with any marking scheme without
touching mark wire formats.
"""

from __future__ import annotations

import hashlib
import hmac
import random
import struct
from dataclasses import dataclass

from repro.crypto.mac import MacProvider, constant_time_equal
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report
from repro.sim.behaviors import ForwardingBehavior

__all__ = [
    "KeyPool",
    "Endorsement",
    "attach_endorsements",
    "extract_endorsements",
    "endorse",
    "SefFilterForwarder",
]

# Endorsed event layout: [payload_len: u16][payload][count: u8][entries...]
# where each entry is [key_index: u16][mac_len: u8][mac].
_PAYLOAD_LEN = struct.Struct(">H")
_ENDO_HEADER = struct.Struct(">HB")
_ENDO_COUNT = struct.Struct(">B")


@dataclass(frozen=True)
class Endorsement:
    """One witness's MAC over a report under a key-pool key."""

    key_index: int
    mac: bytes


class KeyPool:
    """The global SEF key pool and per-node key assignments.

    Args:
        master_secret: seeds the pool keys deterministically.
        pool_size: total keys in the pool.
        partitions: number of equal partitions (endorsements must come
            from distinct partitions).
        keys_per_node: how many keys each node draws from its partition.
    """

    def __init__(
        self,
        master_secret: bytes,
        pool_size: int = 100,
        partitions: int = 10,
        keys_per_node: int = 5,
    ):
        if pool_size < partitions:
            raise ValueError(
                f"pool_size {pool_size} must be >= partitions {partitions}"
            )
        if pool_size % partitions != 0:
            raise ValueError(
                f"pool_size {pool_size} must divide evenly into "
                f"{partitions} partitions"
            )
        if keys_per_node < 1 or keys_per_node > pool_size // partitions:
            raise ValueError(
                f"keys_per_node must be in [1, {pool_size // partitions}], "
                f"got {keys_per_node}"
            )
        self.pool_size = pool_size
        self.partitions = partitions
        self.keys_per_node = keys_per_node
        self._keys = [
            hmac.new(
                master_secret, b"sef-pool-key" + idx.to_bytes(4, "big"), hashlib.sha256
            ).digest()
            for idx in range(pool_size)
        ]

    @property
    def partition_size(self) -> int:
        return self.pool_size // self.partitions

    def key(self, index: int) -> bytes:
        """The pool key at ``index`` (the sink knows all of them)."""
        return self._keys[index]

    def partition_of(self, index: int) -> int:
        """Which partition a key index belongs to."""
        return index // self.partition_size

    def assign_node_keys(self, node_id: int, rng: random.Random) -> dict[int, bytes]:
        """Draw a node's key subset: ``keys_per_node`` keys from one
        random partition, as in SEF's pre-deployment loading."""
        partition = rng.randrange(self.partitions)
        lo = partition * self.partition_size
        indices = rng.sample(range(lo, lo + self.partition_size), self.keys_per_node)
        return {idx: self._keys[idx] for idx in indices}


def attach_endorsements(
    report: Report,
    endorsements: list[Endorsement],
) -> Report:
    """Embed endorsements into the report's event field.

    The returned report's event is ``[payload_len][payload][count][entries]``
    so :func:`extract_endorsements` can split it back unambiguously.
    """
    if len(endorsements) > 0xFF:
        raise ValueError(f"too many endorsements: {len(endorsements)}")
    if len(report.event) > 0xFFFF:
        raise ValueError(f"payload too long: {len(report.event)}")
    blob = bytearray(_PAYLOAD_LEN.pack(len(report.event)))
    blob += report.event
    blob += _ENDO_COUNT.pack(len(endorsements))
    for endo in endorsements:
        blob += _ENDO_HEADER.pack(endo.key_index, len(endo.mac))
        blob += endo.mac
    return Report(
        event=bytes(blob),
        location=report.location,
        timestamp=report.timestamp,
    )


def extract_endorsements(report: Report) -> tuple[Report, list[Endorsement]]:
    """Split an endorsed report back into payload and endorsements.

    Raises:
        ValueError: if the event field is not a well-formed endorsed
            payload.
    """
    event = report.event
    if len(event) < _PAYLOAD_LEN.size + _ENDO_COUNT.size:
        raise ValueError("event too short for an endorsed payload")
    (payload_len,) = _PAYLOAD_LEN.unpack_from(event, 0)
    offset = _PAYLOAD_LEN.size
    if offset + payload_len + _ENDO_COUNT.size > len(event):
        raise ValueError("event too short for declared payload length")
    payload = event[offset : offset + payload_len]
    offset += payload_len
    (count,) = _ENDO_COUNT.unpack_from(event, offset)
    offset += _ENDO_COUNT.size
    endos = []
    for _ in range(count):
        if offset + _ENDO_HEADER.size > len(event):
            raise ValueError("truncated endorsement header")
        key_index, mac_len = _ENDO_HEADER.unpack_from(event, offset)
        offset += _ENDO_HEADER.size
        if offset + mac_len > len(event):
            raise ValueError("truncated endorsement MAC")
        endos.append(
            Endorsement(key_index=key_index, mac=bytes(event[offset : offset + mac_len]))
        )
        offset += mac_len
    if offset != len(event):
        raise ValueError(f"{len(event) - offset} trailing bytes after endorsements")
    bare = Report(
        event=bytes(payload),
        location=report.location,
        timestamp=report.timestamp,
    )
    return bare, endos


def endorse(
    payload_report: Report,
    witness_keys: list[tuple[int, bytes]],
    provider: MacProvider,
) -> Report:
    """Produce an endorsed report from ``threshold`` witness keys.

    Args:
        payload_report: the bare report (event payload only).
        witness_keys: ``(key_index, key)`` pairs, one per endorsing
            witness; caller ensures distinct partitions for full SEF
            semantics.
        provider: MAC provider.
    """
    base = payload_report.encode()
    endos = [
        Endorsement(key_index=idx, mac=provider.mac(key, b"sef-endorse" + base))
        for idx, key in witness_keys
    ]
    return attach_endorsements(payload_report, endos)


class SefFilterForwarder:
    """Wraps a forwarding behavior with SEF en-route verification.

    Args:
        inner: the behavior that runs if the packet passes the filter
            (typically an :class:`~repro.sim.behaviors.HonestForwarder`).
        node_keys: this node's ``{key_index: key}`` subset of the pool.
        provider: MAC provider.
        threshold: minimum endorsements a report must carry.
        pool: the global pool (for partition-distinctness checking).
    """

    def __init__(
        self,
        inner: ForwardingBehavior,
        node_keys: dict[int, bytes],
        provider: MacProvider,
        threshold: int,
        pool: KeyPool,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.inner = inner
        self.node_keys = dict(node_keys)
        self.provider = provider
        self.threshold = threshold
        self.pool = pool
        self.forged_dropped = 0
        self.malformed_dropped = 0

    @property
    def node_id(self) -> int:
        return self.inner.node_id

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Drop reports whose endorsements fail this node's checks."""
        try:
            bare, endos = extract_endorsements(packet.report)
        except ValueError:
            self.malformed_dropped += 1
            return None
        if not self._passes(bare, endos):
            self.forged_dropped += 1
            return None
        return self.inner.forward(packet)

    def _passes(self, bare: Report, endos: list[Endorsement]) -> bool:
        if len(endos) < self.threshold:
            return False
        partitions = {self.pool.partition_of(e.key_index) for e in endos}
        if len(partitions) < self.threshold:
            return False
        base = bare.encode()
        for endo in endos:
            key = self.node_keys.get(endo.key_index)
            if key is None:
                continue  # cannot check this endorsement; SEF lets it pass
            expected = self.provider.mac(key, b"sef-endorse" + base)
            if not constant_time_equal(expected, endo.mac):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"SefFilterForwarder(node={self.node_id}, "
            f"keys={len(self.node_keys)}, dropped={self.forged_dropped})"
        )
