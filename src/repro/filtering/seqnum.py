"""One-time sequence numbers: the Section 7 replay countermeasure.

"A more effective solution can leverage packet sequence numbers that can
be used one-time only."  The filter remembers, per claimed origin
location, which (timestamp, report-digest) pairs it has accepted inside a
sliding freshness window; re-presenting an already-used pair -- which is
exactly what a byte-identical replay must do, since re-stamping would
invalidate the captured marks -- is rejected.  Entries older than the
window are pruned, bounding memory like a sensor implementation would.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.packets.report import Report

__all__ = ["OneTimeSequenceFilter"]


class OneTimeSequenceFilter:
    """Sliding-window one-time-use filter over report identities.

    Args:
        window: how far behind the freshest accepted timestamp a report
            may be.  Anything older is rejected outright (stale); anything
            inside the window is accepted at most once.
    """

    def __init__(self, window: int = 1000):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.window = window
        self._seen: set[bytes] = set()
        self._order: deque[tuple[int, bytes]] = deque()
        self._freshest: int | None = None
        self.rejected_stale = 0
        self.rejected_reused = 0

    @staticmethod
    def _identity(report: Report) -> bytes:
        return hashlib.sha256(b"one-time" + report.encode()).digest()[:8]

    def _prune(self) -> None:
        assert self._freshest is not None
        horizon = self._freshest - self.window
        while self._order and self._order[0][0] < horizon:
            _ts, ident = self._order.popleft()
            self._seen.discard(ident)

    def accept(self, report: Report) -> bool:
        """Check-and-record: True exactly once per fresh report."""
        if (
            self._freshest is not None
            and report.timestamp < self._freshest - self.window
        ):
            self.rejected_stale += 1
            return False
        ident = self._identity(report)
        if ident in self._seen:
            self.rejected_reused += 1
            return False
        self._seen.add(ident)
        self._order.append((report.timestamp, ident))
        if self._freshest is None or report.timestamp > self._freshest:
            self._freshest = report.timestamp
            self._prune()
        return True

    @property
    def tracked(self) -> int:
        """Entries currently held (bounded by traffic within the window)."""
        return len(self._seen)

    def __repr__(self) -> str:
        return (
            f"OneTimeSequenceFilter(window={self.window}, tracked={self.tracked}, "
            f"stale={self.rejected_stale}, reused={self.rejected_reused})"
        )
