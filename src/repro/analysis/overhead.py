"""Marking overhead accounting.

PNM's whole point of being probabilistic is overhead: deterministic nested
marking costs one mark per hop, so a packet crossing ``n`` hops carries
``n`` marks; probabilistic marking with ``n * p = c`` carries ``c`` marks
on average regardless of path length (Section 4.2 fixes ``c = 3``).
"""

from __future__ import annotations

from repro.packets.marks import MarkFormat

__all__ = [
    "expected_marks_per_packet",
    "marking_overhead_bytes",
    "probability_for_target_marks",
]


def expected_marks_per_packet(n: int, p: float) -> float:
    """Average marks carried by a packet after ``n`` hops at probability ``p``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return n * p


def probability_for_target_marks(n: int, target_marks: float) -> float:
    """The marking probability that yields ``target_marks`` per packet.

    The paper's experiments "set the marking probability p such that a
    packet always carries 3 marks on average" -- i.e. ``p = 3 / n``,
    capped at 1 for very short paths.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if target_marks <= 0:
        raise ValueError(f"target_marks must be positive, got {target_marks}")
    return min(1.0, target_marks / n)


def marking_overhead_bytes(n: int, p: float, fmt: MarkFormat) -> float:
    """Expected mark bytes added to a packet crossing ``n`` hops."""
    return expected_marks_per_packet(n, p) * fmt.mark_len
