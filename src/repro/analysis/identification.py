"""Unequivocal-identification analysis (companion to Figures 6 and 7).

The sink has *unequivocally identified* the source once the precedence
graph leaves exactly one candidate most-upstream node: ``V_1`` has been
observed, and every other observed forwarder has acquired at least one
upstream edge.  Per packet:

* ``V_1`` is observed with probability ``p`` (it marks);
* ``V_j`` (j >= 2) acquires an upstream edge exactly when it marks *and*
  at least one of its ``j - 1`` upstream nodes marks the same packet:
  probability ``r_j = p * (1 - (1-p)^(j-1))``.

Treating the per-node events as independent across nodes (they share the
marking coins of upstream nodes, so this is an approximation -- accurate
in practice because the binding constraint, ``V_2``, involves few shared
coins) gives::

    P(identified within t) ~= (1 - (1-p)^t) * prod_{j>=2} (1 - (1-r_j)^t)

The expectation follows from ``E[T] = sum_{t>=0} (1 - P(T <= t))``.

Note ``V_2`` dominates: ``r_2 = p^2``, so identification needs on the
order of ``1/p^2`` packets -- this is why Figure 7's packet counts exceed
Figure 4's pure-collection counts, and why ~220 packets are needed at 40
hops (``p = 3/40``).
"""

from __future__ import annotations

__all__ = ["identification_probability", "expected_packets_to_identify"]


def _node_rates(n: int, p: float) -> list[float]:
    """Per-packet success rates for each node's identification condition."""
    rates = [p]  # V_1 only needs to be observed.
    for j in range(2, n + 1):
        rates.append(p * (1.0 - (1.0 - p) ** (j - 1)))
    return rates


def identification_probability(n: int, p: float, packets: int) -> float:
    """P(source unequivocally identified within ``packets`` packets).

    Args:
        n: number of forwarding nodes on the path.
        p: per-node marking probability.
        packets: packets received by the sink.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if packets < 0:
        raise ValueError(f"packets must be >= 0, got {packets}")
    if packets == 0:
        return 0.0
    prob = 1.0
    for rate in _node_rates(n, p):
        prob *= 1.0 - (1.0 - rate) ** packets
    return prob


def expected_packets_to_identify(
    n: int, p: float, tail_epsilon: float = 1e-9, max_packets: int = 10_000_000
) -> float:
    """E[packets] until unequivocal identification (numeric tail sum).

    Args:
        n: forwarding path length.
        p: marking probability.
        tail_epsilon: stop once the survival probability falls below this.
        max_packets: hard cap on the summation (guards tiny ``p``).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    rates = _node_rates(n, p)
    survivals = [1.0] * len(rates)  # (1 - r)^t per node, updated iteratively
    decay = [1.0 - r for r in rates]
    expectation = 0.0
    for _ in range(max_packets):
        # P(T > t) = 1 - prod_j (1 - survival_j)
        identified = 1.0
        for s in survivals:
            identified *= 1.0 - s
        tail = 1.0 - identified
        if tail < tail_epsilon:
            break
        expectation += tail
        for j, d in enumerate(decay):
            survivals[j] *= d
    return expectation
