"""Sink verification cost model (Section 4.2's feasibility argument).

Resolving anonymous IDs costs one hash per node per distinct message when
searching exhaustively.  The paper's numbers: a commodity CPU does ~2.5
million hashes per second, so building the table for a few-thousand-node
network takes milliseconds, and the sink can verify several hundred
packets per second -- far above the ~50 packets per second a Mica2-class
radio can deliver.  The topology-bounded search of Section 7 drops the
per-mark cost from ``O(N)`` to ``O(d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SinkCostModel", "MICA2_PACKETS_PER_SECOND", "PAPER_HASH_RATE"]

#: Paper-cited incoming packet rate limit (19.2 kbps Mica2 radio).
MICA2_PACKETS_PER_SECOND = 50.0

#: Paper-cited hash throughput (Athlon 1.6 GHz, ~2.5 M hashes/s).
PAPER_HASH_RATE = 2.5e6


@dataclass(frozen=True)
class SinkCostModel:
    """Analytical sink-side verification costs.

    Attributes:
        network_size: number of node keys the sink holds (``N``).
        hash_rate: hashes per second the sink sustains.
        avg_marks_per_packet: marks the sink verifies per packet
            (``n * p``, 3 in the paper's setup).
        avg_degree: average node degree ``d`` (for the bounded search).
    """

    network_size: int
    hash_rate: float = PAPER_HASH_RATE
    avg_marks_per_packet: float = 3.0
    avg_degree: float = 8.0

    def __post_init__(self) -> None:
        if self.network_size < 1:
            raise ValueError(f"network_size must be >= 1, got {self.network_size}")
        if self.hash_rate <= 0:
            raise ValueError(f"hash_rate must be positive, got {self.hash_rate}")
        if self.avg_marks_per_packet < 0:
            raise ValueError(
                f"avg_marks_per_packet must be >= 0, got {self.avg_marks_per_packet}"
            )
        if self.avg_degree < 1:
            raise ValueError(f"avg_degree must be >= 1, got {self.avg_degree}")

    def table_build_seconds(self) -> float:
        """Time to build one message's full anonymous-ID table (``N`` hashes)."""
        return self.network_size / self.hash_rate

    def hashes_per_packet(self, bounded: bool = False) -> float:
        """Hash operations to verify one packet's marks.

        Exhaustive: one table build (``N`` hashes) plus one MAC
        recomputation per mark.  Bounded: ``d`` anonymous-ID candidates
        per mark plus the MAC per mark.
        """
        macs = self.avg_marks_per_packet
        if bounded:
            return self.avg_marks_per_packet * self.avg_degree + macs
        return self.network_size + macs

    def packets_per_second(self, bounded: bool = False) -> float:
        """Verification throughput in packets per second."""
        return self.hash_rate / self.hashes_per_packet(bounded)

    def keeps_up_with_radio(
        self,
        incoming_rate: float = MICA2_PACKETS_PER_SECOND,
        bounded: bool = False,
    ) -> bool:
        """Whether verification outpaces the radio-limited delivery rate --
        the paper's feasibility claim."""
        if incoming_rate <= 0:
            raise ValueError(f"incoming_rate must be positive, got {incoming_rate}")
        return self.packets_per_second(bounded) >= incoming_rate
