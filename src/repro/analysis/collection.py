"""Mark-collection analysis (Section 6.1, Figure 4).

Each of the ``n`` forwarders marks each packet independently with
probability ``p``.  The probability that the sink has collected at least
one mark from *every* forwarder within ``L`` packets is::

    P(N <= L) = (1 - (1 - p)^L)^n

because node ``i``'s marks arrive as independent Bernoulli(p) trials per
packet, and the ``n`` nodes' processes are mutually independent.

The expected number of packets to collect all marks follows by
inclusion-exclusion over the maximum of ``n`` i.i.d. geometric variables::

    E[N] = sum_{k=1..n} C(n, k) (-1)^(k+1) / (1 - (1-p)^k)
"""

from __future__ import annotations

import math

__all__ = [
    "collection_probability",
    "packets_for_confidence",
    "expected_packets_all_marks",
]


def _check_np(n: int, p: float) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")


def collection_probability(n: int, p: float, packets: int) -> float:
    """P(all ``n`` forwarders' marks collected within ``packets`` packets).

    Args:
        n: number of forwarding nodes on the path.
        p: per-node marking probability.
        packets: number of packets received by the sink.
    """
    _check_np(n, p)
    if packets < 0:
        raise ValueError(f"packets must be >= 0, got {packets}")
    if packets == 0:
        return 0.0
    per_node = 1.0 - (1.0 - p) ** packets
    return per_node**n


def packets_for_confidence(n: int, p: float, confidence: float = 0.9) -> int:
    """Smallest packet count achieving ``confidence`` collection probability.

    Used to check the paper's reading of Figure 4: 13 packets for a 10-hop
    path at 90%, 33 for 20 hops, 54 for 30 hops (with ``n * p = 3``).
    """
    _check_np(n, p)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if p == 1.0:
        return 1
    # Invert (1 - (1-p)^L)^n >= confidence analytically, then fix rounding.
    per_node_target = confidence ** (1.0 / n)
    raw = math.log(1.0 - per_node_target) / math.log(1.0 - p)
    packets = max(1, math.ceil(raw))
    while collection_probability(n, p, packets) < confidence:
        packets += 1
    while packets > 1 and collection_probability(n, p, packets - 1) >= confidence:
        packets -= 1
    return packets


def expected_packets_all_marks(n: int, p: float) -> float:
    """E[packets] until every forwarder's mark has been collected."""
    _check_np(n, p)
    if p == 1.0:
        return 1.0
    q = 1.0 - p
    total = 0.0
    for k in range(1, n + 1):
        total += math.comb(n, k) * (-1) ** (k + 1) / (1.0 - q**k)
    return total
