"""Analytical models.

Closed-form and numerical companions to the simulations:

* :mod:`repro.analysis.collection` -- Section 6.1's mark-collection
  probability (Figure 4) and expected collection time.
* :mod:`repro.analysis.identification` -- an independent-nodes
  approximation of the Figure 6/7 "unequivocal identification" criterion.
* :mod:`repro.analysis.overhead` -- per-packet marking overhead in bytes.
* :mod:`repro.analysis.cost` -- the Section 4.2 sink verification cost
  model (anonymous-ID table builds vs. radio-limited packet rate).
"""

from repro.analysis.collection import (
    collection_probability,
    expected_packets_all_marks,
    packets_for_confidence,
)
from repro.analysis.cost import SinkCostModel
from repro.analysis.identification import (
    expected_packets_to_identify,
    identification_probability,
)
from repro.analysis.overhead import expected_marks_per_packet, marking_overhead_bytes

__all__ = [
    "collection_probability",
    "packets_for_confidence",
    "expected_packets_all_marks",
    "identification_probability",
    "expected_packets_to_identify",
    "expected_marks_per_packet",
    "marking_overhead_bytes",
    "SinkCostModel",
]
