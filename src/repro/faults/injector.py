"""The fault injector: arming a schedule on a live simulation.

A :class:`FaultInjector` binds a :class:`~repro.faults.schedule.FaultSchedule`
to a :class:`~repro.sim.network.NetworkSimulation`.  :meth:`FaultInjector.arm`
registers every event on the engine's virtual clock; as the run replays,
the injector applies each fault (failing nodes, installing per-link
model overrides) and reverts it on recovery, keeping its own applied-fault
log and the per-node / per-link *fault intervals* that the attribution
layer (:mod:`repro.faults.attribution`) later consults.

Energy depletion rides the simulation's transmission-listener hook: once
armed, every radio transmission is checked against the node's budget via
the metrics collector's energy model, and the node crashes (virtual-time
stamped) the moment the budget is exhausted -- no wall clock, no polling.

The injector also keeps the routing and service layers honest:

* on recovery it tells a repairing routing table
  (:class:`~repro.routing.repair.RepairingRoutingTable`) to re-admit the
  node, restoring pre-fault routes;
* on any node fault it invalidates ingest-service cache state derived
  from that node's key (:meth:`repro.service.SinkIngestService.invalidate_node`),
  so a crashed node's memoized resolution entries cannot linger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.network import NetworkSimulation

__all__ = ["AppliedFault", "FaultInjector"]


@dataclass(frozen=True)
class AppliedFault:
    """One fault (or recovery) the injector actually applied.

    Attributes:
        time: virtual time of application.
        kind: the schedule kind, or ``"deplete-crash"`` for a crash
            triggered by an exhausted energy budget.
        node: affected node, when node-scoped.
        edge: affected directed edge, when link-scoped.
    """

    time: float
    kind: str
    node: int | None = None
    edge: tuple[int, int] | None = None


class FaultInjector:
    """Applies and reverts scheduled faults on a network simulation.

    Args:
        sim: the simulation to inject into.  Its routing table may be a
            :class:`~repro.routing.repair.RepairingRoutingTable` (enables
            repair); its ``ingest`` may expose ``invalidate_node`` (cache
            hygiene on crashes).
        schedule: the faults to arm; validated against the simulation's
            topology.
    """

    def __init__(self, sim: NetworkSimulation, schedule: FaultSchedule):
        schedule.validate(sim.topology)
        self.sim = sim
        self.schedule = schedule
        self.applied: list[AppliedFault] = []
        self._armed = False
        self._budgets: dict[int, float] = {}
        # node -> [start, end] down intervals; end is +inf while down.
        self._node_intervals: dict[int, list[list[float]]] = {}
        # directed edge -> [start, end] degraded intervals.
        self._link_intervals: dict[tuple[int, int], list[list[float]]] = {}

    # Arming ------------------------------------------------------------------

    def arm(self) -> int:
        """Register every scheduled event on the simulation clock.

        Call once, before :meth:`NetworkSimulation.run`.

        Returns:
            The number of events armed.

        Raises:
            RuntimeError: if armed twice.
            ValueError: if an event lies in the simulation's past.
        """
        if self._armed:
            raise RuntimeError("injector is already armed")
        self._armed = True
        for event in self.schedule:
            self.sim.sim.schedule_at(
                event.time, lambda e=event: self._apply(e)
            )
        if any(e.kind == "deplete" for e in self.schedule):
            self.sim.transmission_listeners.append(self._on_transmission)
        return len(self.schedule)

    # Application -------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == "crash":
            self._fail_node(event.node, "crash")
        elif event.kind == "recover":
            self._recover_node(event.node)
        elif event.kind == "deplete":
            assert event.node is not None and event.budget_joules is not None
            self._budgets[event.node] = event.budget_joules
            self._log(event.kind, node=event.node)
        elif event.kind == "degrade-link":
            assert event.edge is not None and event.link is not None
            u, v = event.edge
            self.sim.links.set_override(u, v, event.link)
            self._open_interval(self._link_intervals, (u, v))
            self._log(event.kind, edge=(u, v))
        elif event.kind == "restore-link":
            assert event.edge is not None
            u, v = event.edge
            if self.sim.links.clear_override(u, v):
                self._close_interval(self._link_intervals, (u, v))
                self._log(event.kind, edge=(u, v))
        elif event.kind == "region-outage":
            assert event.center is not None and event.radius is not None
            cx, cy = event.center
            affected = sorted(
                node
                for node in self.sim.topology.sensor_nodes()
                if math.hypot(
                    self.sim.topology.position(node)[0] - cx,
                    self.sim.topology.position(node)[1] - cy,
                )
                <= event.radius
            )
            for node in affected:
                self._fail_node(node, "region-outage")
                if event.duration is not None:
                    self.sim.sim.schedule_at(
                        event.time + event.duration,
                        lambda n=node: self._recover_node(n),
                    )

    def _fail_node(self, node: int | None, kind: str) -> None:
        assert node is not None
        if self.sim.node_is_down(node):
            return
        self.sim.fail_node(node)
        self._open_interval(self._node_intervals, node)
        self._log(kind, node=node)
        # A dead node's cached resolver state must not linger in the
        # ingest service; its key is not revoked (the node is honest),
        # but its marks stop arriving and hot-set slots are precious.
        invalidate = getattr(self.sim.ingest, "invalidate_node", None)
        if invalidate is not None:
            invalidate(node)

    def _recover_node(self, node: int | None) -> None:
        assert node is not None
        if not self.sim.node_is_down(node):
            return
        self.sim.restore_node(node)
        self._close_interval(self._node_intervals, node)
        self._log("recover", node=node)
        mark_alive = getattr(self.sim.routing, "mark_alive", None)
        if mark_alive is not None:
            mark_alive(node)

    def _on_transmission(self, node: int, packet_len: int) -> None:
        budget = self._budgets.get(node)
        if budget is None:
            return
        if self.sim.metrics.energy_spent(node) >= budget:
            del self._budgets[node]
            self._fail_node(node, "deplete-crash")

    # Bookkeeping -------------------------------------------------------------

    def _log(
        self,
        kind: str,
        node: int | None = None,
        edge: tuple[int, int] | None = None,
    ) -> None:
        self.applied.append(
            AppliedFault(time=self.sim.sim.now, kind=kind, node=node, edge=edge)
        )
        self.sim.obs.inc("faults_applied_total", kind=kind)

    def _open_interval(self, intervals: dict, key: object) -> None:
        intervals.setdefault(key, []).append([self.sim.sim.now, math.inf])

    def _close_interval(self, intervals: dict, key: object) -> None:
        spans = intervals.get(key)
        if spans and spans[-1][1] == math.inf:
            spans[-1][1] = self.sim.sim.now

    # Queries (the attribution layer's view) ----------------------------------

    def node_was_down(self, node: int, time: float, slack: float = 0.0) -> bool:
        """Whether ``node`` was failed at virtual ``time`` (+/- ``slack``).

        The slack absorbs boundary effects: a packet that reached a node
        an instant before its crash died *to* the crash.
        """
        return any(
            start - slack <= time <= end + slack
            for start, end in self._node_intervals.get(node, ())
        )

    def link_was_degraded(
        self, from_node: int, to_node: int, time: float, slack: float = 0.0
    ) -> bool:
        """Whether the directed link carried an override at ``time``."""
        return any(
            start - slack <= time <= end + slack
            for start, end in self._link_intervals.get((from_node, to_node), ())
        )

    def node_had_degraded_link(
        self, node: int, time: float, slack: float = 0.0
    ) -> bool:
        """Whether any link into or out of ``node`` was degraded at ``time``."""
        return any(
            node in edge and self.link_was_degraded(*edge, time, slack)
            for edge in sorted(self._link_intervals)
        )

    def faulted_nodes(self) -> list[int]:
        """Every node that was down at some point, sorted ascending."""
        return sorted(self._node_intervals)

    def node_down_intervals(self, node: int) -> list[tuple[float, float]]:
        """The closed-open down intervals recorded for ``node``."""
        return [
            (start, end) for start, end in self._node_intervals.get(node, ())
        ]

    def counts(self) -> dict[str, int]:
        """Applied faults per kind, deterministically ordered."""
        out: dict[str, int] = {}
        for fault in self.applied:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return {kind: out[kind] for kind in sorted(out)}

    def __repr__(self) -> str:
        return (
            f"FaultInjector({len(self.schedule)} scheduled, "
            f"{len(self.applied)} applied, armed={self._armed})"
        )
