"""Sink-side drop-site attribution: benign faults vs. mole suspicion.

The paper's traceback (Section 4) assumes a static network, where any
systematic packet disappearance points at a mole.  Under churn that
inference breaks: crashed nodes, drained batteries, and degraded links
all kill packets without any adversary.  This module separates the two.

:func:`attribute_drops` classifies every drop site the tracer observed:

* ``fault`` drops -- packets the simulator explicitly killed at a failed
  node or severed route (trace kind ``fault``); benign by construction.
* ``benign`` drops -- intentional drops at a node that a known fault
  interval explains (the node was down or an incident link was degraded
  around the event time), or that a fault-free **baseline** run of the
  same workload also produced (honest en-route filtering).
* ``suspicious`` drops -- the unexplained excess.  These are the only
  drop sites that feed accusations.

:func:`accusation_report` then combines the evidence streams the way a
deployed sink would: *tamper evidence* (invalid MACs, which benign
faults cannot forge -- crashing a node never breaks a key) activates the
traceback verdict, and suspicious drop sites add their nodes.  Honest
nodes accused by either route are **false accusations**; the report
quantifies their rate.  With every node honest both streams are
structurally empty -- no fault schedule forges a MAC and every drop is
fault-explained -- so the false-accusation rate is exactly zero, the
invariant the property suite (``tests/test_properties``) pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injector import FaultInjector
from repro.net.topology import Topology
from repro.sim.tracing import PacketTracer
from repro.traceback.sink import TracebackSink, TracebackVerdict
from repro.watchdog.fusion import WatchdogSinkLog, tamper_corroboration_zone

__all__ = [
    "DropAttribution",
    "AccusationReport",
    "FusedAccusationReport",
    "attribute_drops",
    "accusation_report",
    "build_accusation_report",
    "fused_accusation_report",
]

#: Default half-width (virtual seconds) of the window around a fault
#: interval inside which a drop still counts as fault-explained; absorbs
#: packets caught mid-flight at crash/recovery boundaries.
DEFAULT_SLACK = 0.5


@dataclass(frozen=True)
class DropAttribution:
    """Per-node classification of every observed drop site.

    All mappings are keyed by node in ascending order (deterministic
    merge contract, RL004).

    Attributes:
        fault_drops: node -> packets the simulator killed there due to an
            injected fault (dead node, severed route).
        benign_drops: node -> intentional drops explained by a fault
            interval or by the fault-free baseline.
        suspicious_drops: node -> unexplained drops; accusation input.
        repairs: route repairs observed during the run.
    """

    fault_drops: dict[int, int] = field(default_factory=dict)
    benign_drops: dict[int, int] = field(default_factory=dict)
    suspicious_drops: dict[int, int] = field(default_factory=dict)
    repairs: int = 0

    def suspicious_nodes(self) -> list[int]:
        """Nodes with at least one unexplained drop, sorted ascending."""
        return sorted(self.suspicious_drops)

    @property
    def total_fault(self) -> int:
        """Packets killed by injected faults."""
        return sum(self.fault_drops.values())

    @property
    def total_benign(self) -> int:
        """Intentional drops explained away as benign."""
        return sum(self.benign_drops.values())

    @property
    def total_suspicious(self) -> int:
        """Drops left unexplained."""
        return sum(self.suspicious_drops.values())

    def summary(self) -> dict[str, int]:
        """Headline totals for printing/logging."""
        return {
            "fault_drops": self.total_fault,
            "benign_drops": self.total_benign,
            "suspicious_drops": self.total_suspicious,
            "repairs": self.repairs,
        }


@dataclass(frozen=True)
class AccusationReport:
    """Who got accused, and how many accusations hit honest nodes.

    Attributes:
        accused: accused node IDs, sorted ascending.
        honest: honest (non-mole) sensor IDs, sorted ascending.
        false_accusations: accused honest nodes, sorted ascending.
        false_accusation_rate: ``|false| / |honest|`` (0.0 when there are
            no honest nodes to accuse).
        tamper_evidence: whether any accusation came from invalid MACs.
    """

    accused: tuple[int, ...]
    honest: tuple[int, ...]
    false_accusations: tuple[int, ...]
    false_accusation_rate: float
    tamper_evidence: bool


@dataclass(frozen=True)
class FusedAccusationReport:
    """An :class:`AccusationReport` extended with watchdog evidence.

    The first five attributes mirror :class:`AccusationReport` exactly;
    :attr:`accused` is the fused set.  Watchdog accusations are claims,
    not proof (a lying watchdog fabricates them freely), so a claim is
    **confirmed** only against a node PNM evidence independently
    suspects -- inside the tamper corroboration zone
    (:func:`repro.watchdog.fusion.tamper_corroboration_zone`) or at an
    unexplained drop site.  Everything else is **rejected**.  In any
    honest deployment both corroboration sources are structurally empty
    (benign faults forge no MACs and every drop is fault-explained), so
    no fabrication can ever raise the false-accusation rate above the
    PNM-only report's -- the invariant
    ``tests/test_properties/test_watchdog_fusion.py`` pins.

    Attributes:
        accused: fused accused set (PNM accusations plus confirmed
            watchdog claims), sorted ascending.
        honest: honest (non-mole) sensor IDs, sorted ascending.
        false_accusations: accused honest nodes, sorted ascending.
        false_accusation_rate: ``|false| / |honest|``.
        tamper_evidence: whether any accusation came from invalid MACs.
        watchdog_claimed: every distinct node a delivered accusation
            named, sorted ascending.
        watchdog_confirmed: the corroborated subset that joined
            :attr:`accused`.
        watchdog_rejected: the discarded remainder.
    """

    accused: tuple[int, ...]
    honest: tuple[int, ...]
    false_accusations: tuple[int, ...]
    false_accusation_rate: float
    tamper_evidence: bool
    watchdog_claimed: tuple[int, ...]
    watchdog_confirmed: tuple[int, ...]
    watchdog_rejected: tuple[int, ...]


def attribute_drops(
    tracer: PacketTracer,
    injector: FaultInjector | None = None,
    baseline: dict[int, int] | None = None,
    slack: float = DEFAULT_SLACK,
) -> DropAttribution:
    """Classify every drop site in ``tracer`` as fault, benign, or suspect.

    Args:
        tracer: the faulted run's packet trace.
        injector: the injector that drove the run; supplies the fault
            intervals.  ``None`` means no faults were injected.
        baseline: drop counts per node from a fault-free run of the same
            workload (:meth:`PacketTracer.drop_locations`); drops up to
            the baseline count at a node are honest filtering, not
            mole activity.
        slack: tolerance (virtual seconds) around fault intervals.
    """
    fault_drops = tracer.fault_locations()
    benign: dict[int, int] = {}
    unexplained: dict[int, int] = {}
    for event in tracer.events:
        if event.kind != "drop":
            continue
        fault_explained = injector is not None and (
            injector.node_was_down(event.node, event.time, slack)
            or injector.node_had_degraded_link(event.node, event.time, slack)
        )
        bucket = benign if fault_explained else unexplained
        bucket[event.node] = bucket.get(event.node, 0) + 1

    suspicious: dict[int, int] = {}
    allowance = baseline if baseline is not None else {}
    for node in sorted(unexplained):
        count = unexplained[node]
        allowed = min(count, allowance.get(node, 0))
        if allowed:
            benign[node] = benign.get(node, 0) + allowed
        if count > allowed:
            suspicious[node] = count - allowed

    return DropAttribution(
        fault_drops=fault_drops,
        benign_drops={node: benign[node] for node in sorted(benign)},
        suspicious_drops={node: suspicious[node] for node in sorted(suspicious)},
        repairs=sum(tracer.repair_locations().values()),
    )


def accusation_report(
    sink: TracebackSink,
    attribution: DropAttribution,
    moles: frozenset[int] | set[int] = frozenset(),
) -> AccusationReport:
    """Combine tamper and drop-site evidence into accusations.

    The sink's traceback verdict only becomes an accusation when backed
    by *tamper evidence* (at least one invalid MAC): benign faults never
    forge MACs, so an honest-but-churning network produces none, and a
    bare route reconstruction -- which always has *some* most upstream
    node, typically the source -- must not convict anyone on its own.
    Suspicious (unexplained-excess) drop sites accuse their nodes
    directly.

    Args:
        sink: the run's traceback sink.
        attribution: the drop classification from :func:`attribute_drops`.
        moles: ground-truth mole IDs; every other sensor is honest.

    Returns:
        The accusations and the honest-node false-accusation rate.
    """
    tamper = sink.tampered_packets > 0
    return build_accusation_report(
        verdict=sink.verdict() if tamper else None,
        tampered_packets=sink.tampered_packets,
        topology=sink.topology,
        attribution=attribution,
        moles=moles,
    )


def build_accusation_report(
    verdict: TracebackVerdict | None,
    tampered_packets: int,
    topology: Topology,
    attribution: DropAttribution,
    moles: frozenset[int] | set[int] = frozenset(),
) -> AccusationReport:
    """The sink-free core of :func:`accusation_report`.

    Takes an already-computed verdict instead of a live sink, so callers
    that only hold merged evidence -- the cluster coordinator merging N
    shards' summaries -- build byte-identical reports through the exact
    code path the single-sink form uses.  ``verdict`` may be ``None``
    when ``tampered_packets`` is zero (it is ignored without tamper
    evidence either way).
    """
    accused: set[int] = set(attribution.suspicious_drops)
    tamper = tampered_packets > 0
    if tamper and verdict is not None:
        if verdict.identified and verdict.suspect is not None:
            accused.add(verdict.suspect.center)
    honest = sorted(
        node
        for node in topology.sensor_nodes()
        if node not in moles
    )
    false = [node for node in sorted(accused) if node in set(honest)]
    rate = len(false) / len(honest) if honest else 0.0
    return AccusationReport(
        accused=tuple(sorted(accused)),
        honest=tuple(honest),
        false_accusations=tuple(false),
        false_accusation_rate=rate,
        tamper_evidence=tamper,
    )


def fused_accusation_report(
    sink: TracebackSink,
    attribution: DropAttribution,
    watchdog_log: WatchdogSinkLog | None,
    moles: frozenset[int] | set[int] = frozenset(),
) -> FusedAccusationReport:
    """Fuse watchdog accusations into the PNM accusation report.

    Watchdog evidence can only *accelerate* conviction of nodes PNM
    independently suspects, never convict on its own: a delivered
    accusation is confirmed when its target sits inside the tamper
    corroboration zone (one hop around any observed tamper stop) or at a
    suspicious (unexplained-excess) drop site, and is rejected otherwise.
    With ``watchdog_log`` ``None`` or empty the fused report carries
    exactly the PNM-only accusations -- the disabled-watchdog parity the
    property suite pins byte-for-byte.

    Args:
        sink: the run's traceback sink.
        attribution: the drop classification from :func:`attribute_drops`.
        watchdog_log: the watchdog layer's delivered-accusation log, or
            ``None`` when the layer is disabled.
        moles: ground-truth mole IDs; every other sensor is honest.
    """
    base = accusation_report(sink, attribution, moles=moles)
    claimed = (
        tuple(watchdog_log.accused_nodes()) if watchdog_log is not None else ()
    )
    if claimed:
        zone = tamper_corroboration_zone(sink.evidence(), sink.topology)
        zone.update(attribution.suspicious_drops)
        confirmed = tuple(node for node in claimed if node in zone)
    else:
        confirmed = ()
    rejected = tuple(node for node in claimed if node not in set(confirmed))
    accused = sorted(set(base.accused) | set(confirmed))
    honest_set = set(base.honest)
    false = tuple(node for node in accused if node in honest_set)
    rate = len(false) / len(base.honest) if base.honest else 0.0
    return FusedAccusationReport(
        accused=tuple(accused),
        honest=base.honest,
        false_accusations=false,
        false_accusation_rate=rate,
        tamper_evidence=base.tamper_evidence,
        watchdog_claimed=claimed,
        watchdog_confirmed=confirmed,
        watchdog_rejected=rejected,
    )
