"""Declarative fault schedules: what breaks, where, and when.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records, each pinned to a virtual timestamp on the simulation clock.
Schedules are plain data -- building one performs no side effects; the
:class:`~repro.faults.injector.FaultInjector` arms it on a simulation.

Five fault kinds cover the benign-failure taxonomy the dynamic-network
literature exercises:

``crash`` / ``recover``
    A node dies (stops injecting, forwarding, and receiving) and later
    comes back.
``deplete``
    Energy depletion: from the event time on, the node carries a radio
    energy budget; it crashes the moment its cumulative transmission
    energy (per the metrics collector's
    :class:`~repro.sim.metrics.EnergyModel`) exceeds the budget.
``degrade-link`` / ``restore-link``
    One *directed* link swaps in a replacement
    :class:`~repro.net.links.LinkModel` (delay or loss ramp) and later
    reverts to the deployment default.
``region-outage``
    Every sensor within ``radius`` of ``center`` crashes (a storm, a
    fire, a bulldozer); with a ``duration`` the region recovers
    wholesale afterwards.

Randomized churn comes from :meth:`FaultSchedule.random_churn`, which is
fully determined by the injected ``random.Random`` -- the simulation
reproducibility contract (RL002).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.net.links import LinkModel
from repro.net.topology import Topology

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultSchedule"]

#: Recognised fault kinds, in tie-break precedence order (recoveries
#: apply before same-instant failures so a flapping node ends down).
FAULT_KINDS = (
    "recover",
    "restore-link",
    "crash",
    "deplete",
    "degrade-link",
    "region-outage",
)

_NODE_KINDS = ("crash", "recover", "deplete")
_LINK_KINDS = ("degrade-link", "restore-link")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure or recovery.

    Exactly the fields relevant to ``kind`` are set; construction
    validates the combination.

    Attributes:
        time: virtual timestamp at which the event applies.
        kind: one of :data:`FAULT_KINDS`.
        node: target node for node-kind events.
        edge: directed ``(from_node, to_node)`` for link-kind events.
        link: replacement model for ``degrade-link``.
        center: outage epicenter for ``region-outage``.
        radius: outage radius for ``region-outage``.
        duration: optional outage length for ``region-outage``; the
            affected nodes recover at ``time + duration``.
        budget_joules: radio energy budget for ``deplete``.
    """

    time: float
    kind: str
    node: int | None = None
    edge: tuple[int, int] | None = None
    link: LinkModel | None = None
    center: tuple[float, float] | None = None
    radius: float | None = None
    duration: float | None = None
    budget_joules: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in _NODE_KINDS and self.node is None:
            raise ValueError(f"{self.kind} event needs a node")
        if self.kind in _LINK_KINDS:
            if self.edge is None:
                raise ValueError(f"{self.kind} event needs an edge")
            if self.edge[0] == self.edge[1]:
                raise ValueError(f"self-loop edge {self.edge}")
        if self.kind == "degrade-link" and self.link is None:
            raise ValueError("degrade-link event needs a replacement LinkModel")
        if self.kind == "deplete":
            if self.budget_joules is None or self.budget_joules <= 0:
                raise ValueError(
                    f"deplete event needs a positive budget_joules, "
                    f"got {self.budget_joules}"
                )
        if self.kind == "region-outage":
            if self.center is None or self.radius is None:
                raise ValueError("region-outage event needs center and radius")
            if self.radius <= 0:
                raise ValueError(f"radius must be > 0, got {self.radius}")
            if self.duration is not None and self.duration <= 0:
                raise ValueError(f"duration must be > 0, got {self.duration}")

    def sort_key(self) -> tuple[float, int, int, tuple[int, int]]:
        """Deterministic total order: time, kind precedence, then target."""
        return (
            self.time,
            FAULT_KINDS.index(self.kind),
            self.node if self.node is not None else -1,
            self.edge if self.edge is not None else (-1, -1),
        )


class FaultSchedule:
    """An immutable-by-convention, time-ordered list of fault events.

    Builder methods return ``self`` so schedules compose fluently::

        schedule = (
            FaultSchedule()
            .crash(5.0, node=7)
            .recover(12.0, node=7)
            .degrade_link(3.0, 4, 3, LinkModel(loss_prob=0.6))
        )

    Args:
        events: initial events in any order; kept sorted by
            :meth:`FaultEvent.sort_key`.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: list[FaultEvent] = sorted(
            events, key=FaultEvent.sort_key
        )

    # Builders ----------------------------------------------------------------

    def add(self, event: FaultEvent) -> FaultSchedule:
        """Insert one event, keeping time order."""
        self._events.append(event)
        self._events.sort(key=FaultEvent.sort_key)
        return self

    def crash(self, time: float, node: int) -> FaultSchedule:
        """Crash ``node`` at ``time``."""
        return self.add(FaultEvent(time=time, kind="crash", node=node))

    def recover(self, time: float, node: int) -> FaultSchedule:
        """Bring ``node`` back up at ``time``."""
        return self.add(FaultEvent(time=time, kind="recover", node=node))

    def deplete(
        self, time: float, node: int, budget_joules: float
    ) -> FaultSchedule:
        """Arm an energy budget on ``node`` at ``time`` (crash on exhaustion)."""
        return self.add(
            FaultEvent(
                time=time, kind="deplete", node=node, budget_joules=budget_joules
            )
        )

    def degrade_link(
        self,
        time: float,
        from_node: int,
        to_node: int,
        link: LinkModel,
        symmetric: bool = False,
    ) -> FaultSchedule:
        """Swap the ``from_node -> to_node`` link model at ``time``.

        With ``symmetric`` the reverse direction degrades identically.
        """
        self.add(
            FaultEvent(
                time=time, kind="degrade-link", edge=(from_node, to_node), link=link
            )
        )
        if symmetric:
            self.add(
                FaultEvent(
                    time=time,
                    kind="degrade-link",
                    edge=(to_node, from_node),
                    link=link,
                )
            )
        return self

    def restore_link(
        self,
        time: float,
        from_node: int,
        to_node: int,
        symmetric: bool = False,
    ) -> FaultSchedule:
        """Revert a degraded link to the deployment default at ``time``."""
        self.add(
            FaultEvent(time=time, kind="restore-link", edge=(from_node, to_node))
        )
        if symmetric:
            self.add(
                FaultEvent(
                    time=time, kind="restore-link", edge=(to_node, from_node)
                )
            )
        return self

    def region_outage(
        self,
        time: float,
        center: tuple[float, float],
        radius: float,
        duration: float | None = None,
    ) -> FaultSchedule:
        """Crash every sensor within ``radius`` of ``center`` at ``time``."""
        return self.add(
            FaultEvent(
                time=time,
                kind="region-outage",
                center=center,
                radius=radius,
                duration=duration,
            )
        )

    # Generators --------------------------------------------------------------

    @classmethod
    def random_churn(
        cls,
        topology: Topology,
        rate: float,
        duration: float,
        rng: random.Random,
        mean_downtime: float = 2.0,
        protect: Iterable[int] = (),
    ) -> FaultSchedule:
        """A seeded crash/recover churn schedule over a deployment.

        Draws roughly ``rate * duration * num_sensors`` crash events
        uniformly over ``[0, duration)``; each crashed node recovers
        after an exponentially distributed downtime with the given mean
        (capped inside the run so every crash gets a matching recovery
        event, possibly after ``duration``).

        Args:
            topology: the deployment; victims are its sensor nodes.
            rate: expected crashes per node per unit virtual time.
            duration: horizon over which crashes are drawn.
            rng: injected randomness -- the schedule is a pure function
                of this generator's state (RL002).
            mean_downtime: mean seconds a crashed node stays down.
            protect: nodes never crashed (e.g. the traffic sources whose
                delivery ratio the experiment measures).

        Raises:
            ValueError: on a negative rate or non-positive duration.
        """
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if mean_downtime <= 0:
            raise ValueError(f"mean_downtime must be > 0, got {mean_downtime}")
        protected = set(protect)
        victims = [n for n in topology.sensor_nodes() if n not in protected]
        schedule = cls()
        if not victims or rate == 0:
            return schedule
        expected = rate * duration * len(victims)
        # Deterministic event count: the integer part plus one Bernoulli
        # draw for the fraction, so tiny rates still sometimes churn.
        count = int(expected) + (1 if rng.random() < expected % 1 else 0)
        for _ in range(count):
            node = rng.choice(victims)
            start = rng.uniform(0, duration)
            downtime = rng.expovariate(1.0 / mean_downtime)
            schedule.crash(start, node)
            schedule.recover(start + downtime, node)
        return schedule

    # Introspection -----------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """All events in time order."""
        return tuple(self._events)

    def merge(self, other: FaultSchedule) -> FaultSchedule:
        """A new schedule combining this one's events with ``other``'s."""
        return FaultSchedule([*self._events, *other._events])

    def validate(self, topology: Topology) -> None:
        """Check every target exists in ``topology`` and spares the sink.

        Raises:
            ValueError: on an unknown node/edge or a sink-targeting event.
        """
        nodes = set(topology.nodes())
        for event in self._events:
            if event.node is not None:
                if event.node == topology.sink:
                    raise ValueError(
                        f"fault at t={event.time} targets the sink; the sink "
                        "is trusted and assumed always up"
                    )
                if event.node not in nodes:
                    raise ValueError(
                        f"fault at t={event.time} targets unknown node {event.node}"
                    )
            if event.edge is not None:
                u, v = event.edge
                if not topology.has_edge(u, v):
                    raise ValueError(
                        f"fault at t={event.time} targets non-edge ({u}, {v})"
                    )

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        kinds = [e.kind for e in self._events]
        return (
            f"FaultSchedule({len(self._events)} events: "
            + ", ".join(
                f"{kind}={kinds.count(kind)}"
                for kind in FAULT_KINDS
                if kind in kinds
            )
            + ")"
        )
