"""Fault injection and network dynamics for the PNM reproduction.

The paper proves one-hop traceback precision for a *static* network
(Section 2.1); real deployments churn -- nodes crash, batteries drain,
links fade, routes get repaired.  This package stress-tests whether the
mole hunt survives benign failures without framing honest nodes:

* :mod:`repro.faults.schedule` -- a declarative
  :class:`~repro.faults.schedule.FaultSchedule` of
  :class:`~repro.faults.schedule.FaultEvent` records (crash/recover,
  energy depletion, per-link degradation, regional outages) at virtual
  timestamps, plus a seeded random-churn generator.
* :mod:`repro.faults.injector` -- the
  :class:`~repro.faults.injector.FaultInjector` that arms a schedule on a
  :class:`~repro.sim.network.NetworkSimulation`, applies and reverts
  faults on the engine's virtual clock, and keeps the per-node/per-link
  fault intervals attribution needs.
* :mod:`repro.faults.attribution` -- sink-side drop-site analysis
  separating fault-explained drop points from mole-suspect ones, and the
  honest-node false-accusation accounting the ``faults-sweep``
  experiment reports.

Everything is deterministic given the injected RNG and runs on the
discrete-event engine's virtual clock -- no wall-clock reads, no shared
``random`` stream (RL002/RL006 enforced by ``python -m repro.lint``).
"""

from repro.faults.attribution import (
    AccusationReport,
    DropAttribution,
    FusedAccusationReport,
    accusation_report,
    attribute_drops,
    build_accusation_report,
    fused_accusation_report,
)
from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "AppliedFault",
    "DropAttribution",
    "AccusationReport",
    "FusedAccusationReport",
    "attribute_drops",
    "accusation_report",
    "build_accusation_report",
    "fused_accusation_report",
]
