"""Marking schemes.

Six schemes span the paper's design space, from the null baseline to full
PNM:

===================  =====  ===========  ==============  ==============
Scheme               Marks  ID on wire   MAC covers      Paper role
===================  =====  ===========  ==============  ==============
``NoMarking``        never  --           --              null baseline
``PPMMarking``       p      plain        nothing         Internet PPM baseline
``ExtendedAMS``      p      plain        report + ID     Section 3 baseline
``NestedMarking``    1.0    plain        whole prefix    Section 4.1
``NaiveProb...``     p      plain        whole prefix    Section 4.2 strawman
``PNMMarking``       p      anonymous    whole prefix    the paper's scheme
``AlgebraicMark...`` 1.0    accumulator  report + accum  dynamic-network ext.
===================  =====  ===========  ==============  ==============

``AlgebraicMarking`` (the arXiv:0908.0078 extension, see
:mod:`repro.algebraic`) is the odd one out: it *replaces* a single
constant-size accumulator per hop instead of appending, so its sink side
is stateful across topology changes.
"""

from repro.algebraic.marking import AlgebraicMarking
from repro.marking.ams import ExtendedAMS
from repro.marking.base import MarkingScheme, NodeContext
from repro.marking.nested import NaiveProbabilisticNested, NestedMarking
from repro.marking.plain import NoMarking, PPMMarking
from repro.marking.pnm import PNMMarking
from repro.marking.weakened import PartiallyNestedMarking

__all__ = [
    "MarkingScheme",
    "NodeContext",
    "NoMarking",
    "PPMMarking",
    "ExtendedAMS",
    "NestedMarking",
    "NaiveProbabilisticNested",
    "PNMMarking",
    "PartiallyNestedMarking",
    "AlgebraicMarking",
    "scheme_by_name",
    "SCHEME_CLASSES",
]

#: Registry of scheme classes keyed by their short names.
SCHEME_CLASSES: dict[str, type[MarkingScheme]] = {
    cls.name: cls
    for cls in (
        NoMarking,
        PPMMarking,
        ExtendedAMS,
        NestedMarking,
        NaiveProbabilisticNested,
        PNMMarking,
        PartiallyNestedMarking,
        AlgebraicMarking,
    )
}


def scheme_by_name(name: str, **kwargs) -> MarkingScheme:
    """Instantiate a scheme from its registry name.

    Args:
        name: one of ``none``, ``ppm``, ``ams``, ``nested``, ``naive-pnm``,
            ``pnm``, ``partial-nested``, ``algebraic``.
        **kwargs: forwarded to the scheme constructor (e.g. ``mark_prob``).

    Raises:
        KeyError: for an unknown scheme name.
    """
    try:
        cls = SCHEME_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEME_CLASSES))
        raise KeyError(f"unknown scheme {name!r}; known schemes: {known}") from None
    return cls(**kwargs)
