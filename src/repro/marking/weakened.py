"""A deliberately under-protective scheme for Theorem 3's necessity proof.

Theorem 3: *any* marking scheme whose MACs protect fewer fields than
nested marking is not consecutive traceable.  :class:`PartiallyNestedMarking`
is the canonical counterexample used in the ablation benches: it looks
almost nested -- each MAC covers the original report, **the ID fields of
every previous mark**, and the marker's own ID -- but omits the previous
marks' MAC bytes.

A mole can therefore corrupt an upstream mark's MAC bytes
(:class:`~repro.adversary.attacks.UnprotectedBitAlteringAttack`): every
downstream MAC still verifies (it never covered those bytes), while the
victim's own mark fails, so the backward trace stops at an innocent node
and cannot proceed -- exactly the failure Figure 3 illustrates.

Do not deploy this scheme; it exists to make the necessity argument
empirical.
"""

from __future__ import annotations

from repro.crypto.mac import constant_time_equal
from repro.marking.base import NodeContext
from repro.marking.nested import NestedMarking
from repro.packets.marks import Mark
from repro.packets.packet import MarkedPacket

__all__ = ["PartiallyNestedMarking"]


class PartiallyNestedMarking(NestedMarking):
    """Nested marking minus protection of previous MAC bytes."""

    name = "partial-nested"

    def _mac_input(self, packet: MarkedPacket, upto: int, id_field: bytes) -> bytes:
        """Report, previous ID fields only, and the new ID."""
        parts = [packet.report_wire]
        parts.extend(mark.id_field for mark in packet.marks[:upto])
        parts.append(id_field)
        return b"".join(parts)

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        id_field = self.fmt.encode_node_id(written_id)
        mac = ctx.provider.mac(
            ctx.key, self._mac_input(packet, len(packet.marks), id_field)
        )
        return Mark(id_field=id_field, mac=mac)

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider,
    ) -> bool:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return False
        if mark.id_field != self.fmt.encode_node_id(node_id):
            return False
        expected = provider.mac(
            key, self._mac_input(packet, mark_index, mark.id_field)
        )
        return constant_time_equal(expected, mark.mac)
