"""Marking-scheme interface.

A marking scheme defines three things:

1. the wire layout of its marks (:class:`~repro.packets.marks.MarkFormat`);
2. the *node side*: what an honest forwarding node appends to a packet
   (possibly probabilistically);
3. the *sink side*: how a single mark is verified, i.e. which real node IDs
   could have produced a given mark and whether a candidate's key validates
   it over the exact received bytes.

The traceback engine (:mod:`repro.traceback`) is scheme-agnostic: it scans
marks backwards, asks the scheme to verify each one, and builds routes from
the verified chains.  Adversaries (:mod:`repro.adversary`) also go through
this interface when they forge or replicate marks using compromised keys.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket

__all__ = ["NodeContext", "MarkingScheme"]


@dataclass
class NodeContext:
    """Everything a forwarding node needs to mark a packet.

    Attributes:
        node_id: the node's real ID.
        key: the secret key it shares with the sink.
        provider: MAC/anonymous-ID provider.
        rng: the node's private random stream (drives the marking coin).
        prev_hop: the authenticated identity of the neighbor this node
            receives from on the stable route -- available only in
            deployments running pairwise neighbor authentication
            (Section 7's precision extension); ``None`` otherwise.
    """

    node_id: int
    key: bytes
    provider: MacProvider
    rng: random.Random
    prev_hop: int | None = None


class MarkingScheme(abc.ABC):
    """Abstract base for all marking schemes.

    Attributes:
        name: short registry name (e.g. ``"pnm"``).
        fmt: wire layout of this scheme's marks.
        mark_prob: probability that an honest forwarder marks a packet.
        verification_policy: how the sink treats invalid marks.  Nested
            schemes use ``"suffix"`` -- scanning backwards, only the
            contiguous suffix of valid marks is trusted (Section 4.1's
            procedure), because a valid mark guarantees everything before
            it arrived untampered *at that marker*, not that it is
            attributable.  Non-nested schemes use ``"independent"`` --
            every individually valid mark is used, which is how AMS/PPM
            actually operate (and part of why they are vulnerable).
    """

    name: str = "abstract"
    verification_policy: str = "suffix"

    def __init__(self, fmt: MarkFormat, mark_prob: float):
        if not 0.0 <= mark_prob <= 1.0:
            raise ValueError(f"mark_prob must be in [0, 1], got {mark_prob}")
        self.fmt = fmt
        self.mark_prob = mark_prob

    # Node side --------------------------------------------------------------

    def on_forward(self, ctx: NodeContext, packet: MarkedPacket) -> MarkedPacket:
        """Honest forwarding behavior: maybe append this node's mark.

        The marking coin is always drawn (even when ``mark_prob`` is 1) so
        that honest nodes consume identical randomness across schemes,
        keeping paired experiment runs comparable.
        """
        if ctx.rng.random() < self.mark_prob:
            return packet.with_mark(self.make_mark(ctx, packet))
        return packet

    def make_mark(
        self,
        ctx: NodeContext,
        packet: MarkedPacket,
        claimed_id: int | None = None,
    ) -> Mark:
        """Construct the mark this scheme's rules produce for ``packet``.

        Args:
            ctx: identity and key material to mark with.  Adversaries pass
                contexts holding compromised keys here -- e.g. identity
                swapping builds a context with another mole's ID and key.
            packet: the packet *as received* (the mark protects its bytes,
                for schemes that protect anything).
            claimed_id: if given, the ID *written into the mark* differs
                from the ID used in MAC computation -- an inherently
                invalid mark, used by mark-insertion/altering attacks.
        """
        written_id = ctx.node_id if claimed_id is None else claimed_id
        return self._build_mark(ctx, packet, written_id)

    @abc.abstractmethod
    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        """Scheme-specific mark construction (see :meth:`make_mark`)."""

    # Sink side ---------------------------------------------------------------

    def build_resolution_table(
        self,
        packet: MarkedPacket,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
    ) -> object | None:
        """Precompute per-packet state for :meth:`candidate_marker_ids`.

        Anonymous-ID schemes override this to build the ``anonymous ID ->
        real IDs`` lookup table once per distinct message (the Section 4.2
        exhaustive search); plain-ID schemes need no table and return
        ``None``.  The returned object is opaque to callers and must be
        passed back via the ``table`` argument.
        """
        return None

    @abc.abstractmethod
    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        """Real node IDs that could have written mark ``mark_index``.

        For plain-ID schemes this decodes the ID field; for anonymous-ID
        schemes it searches ``search_ids`` (or the whole keystore) for keys
        whose anonymous ID matches the field -- or consults ``table`` if the
        caller precomputed one with :meth:`build_resolution_table`.
        Candidates are *unverified*: the caller must confirm each with
        :meth:`verify_mark_as`.
        """

    @abc.abstractmethod
    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        """Whether ``node_id``'s key validates mark ``mark_index`` exactly
        as received (over the exact wire prefix the mark claims to protect).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(p={self.mark_prob}, fmt={self.fmt})"
