"""Nested marking (Section 4.1) and its naive probabilistic extension.

In nested marking, forwarder ``V_i`` appends its ID and
``MAC_i = H_{k_i}(M_{i-1} | i)`` where ``M_{i-1}`` is the **entire message
received from the previous hop** -- report plus all earlier marks.  Every
mark therefore protects all marks before it: tampering with any upstream
ID, MAC, or their order invalidates every downstream legitimate MAC.  The
paper proves this makes the scheme *consecutive traceable* and hence
*one-hop precise* (Theorems 1-2), and that protecting any fewer fields
breaks both properties (Theorem 3).

:class:`NestedMarking` is the deterministic variant (every forwarder marks
every packet; single-packet traceback, but ``n`` marks of overhead).

:class:`NaiveProbabilisticNested` is Section 4.2's "incorrect extension":
the same nested marks left only with probability ``p`` and with **plain
text IDs**.  Because a colluding mole can read which upstream nodes marked
each packet, it can selectively drop exactly the packets whose marks would
implicate it -- leading the sink to an innocent node.  It is implemented
to reproduce that attack in the security-matrix experiment.
"""

from __future__ import annotations

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider, constant_time_equal
from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket

__all__ = ["NestedMarking", "NaiveProbabilisticNested"]


class NestedMarking(MarkingScheme):
    """Basic nested marking: deterministic, plain IDs, nested MACs."""

    name = "nested"

    def __init__(self, id_len: int = 2, mac_len: int = 4):
        super().__init__(MarkFormat(id_len=id_len, mac_len=mac_len), mark_prob=1.0)

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        id_field = self.fmt.encode_node_id(written_id)
        # H_{k_i}(M_{i-1} | i): the MAC covers the packet exactly as
        # received -- report plus every existing mark -- plus the new ID.
        mac = ctx.provider.mac(ctx.key, packet.wire() + id_field)
        return Mark(id_field=id_field, mac=mac)

    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return []
        node_id = self.fmt.decode_node_id(mark.id_field)
        return [node_id] if node_id in keystore else []

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return False
        if mark.id_field != self.fmt.encode_node_id(node_id):
            return False
        # Recompute over the received prefix: everything before this mark.
        prefix = packet.prefix_wire(mark_index)
        expected = provider.mac(key, prefix + mark.id_field)
        return constant_time_equal(expected, mark.mac)


class NaiveProbabilisticNested(NestedMarking):
    """Section 4.2's incorrect extension: probabilistic nested marks with
    plain-text IDs (vulnerable to selective dropping)."""

    name = "naive-pnm"

    def __init__(self, mark_prob: float, id_len: int = 2, mac_len: int = 4):
        super().__init__(id_len=id_len, mac_len=mac_len)
        if not 0.0 <= mark_prob <= 1.0:
            raise ValueError(f"mark_prob must be in [0, 1], got {mark_prob}")
        self.mark_prob = mark_prob
