"""Unauthenticated baselines: no marking, and Savage-style plain marking.

:class:`PPMMarking` models the probabilistic packet marking of Savage et
al. (SIGCOMM 2000) transplanted to the sensor setting: each forwarder
appends its plain-text ID with probability ``p`` and there is no
cryptographic protection whatsoever.  (We use the append-multiple-marks
variant, like the paper's extended AMS, rather than the single-slot
overwrite of the IP header version -- strictly more information for the
sink, and still trivially defeated by a forwarding mole.)

:class:`NoMarking` is the null scheme: packets carry no provenance at all,
so the sink only ever knows its own delivering neighbor.
"""

from __future__ import annotations

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider
from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket

__all__ = ["PPMMarking", "NoMarking"]


class PPMMarking(MarkingScheme):
    """Plain-text probabilistic marking with no authentication."""

    name = "ppm"
    verification_policy = "independent"

    def __init__(self, mark_prob: float = 1.0, id_len: int = 2):
        super().__init__(MarkFormat(id_len=id_len, mac_len=0), mark_prob)

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        return Mark(id_field=self.fmt.encode_node_id(written_id), mac=b"")

    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return []
        node_id = self.fmt.decode_node_id(mark.id_field)
        return [node_id] if node_id in keystore else []

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        # Nothing to verify: any well-formed mark naming a known node is
        # accepted.  This is precisely the weakness of plain marking.
        mark = packet.marks[mark_index]
        return (
            mark.matches_format(self.fmt)
            and mark.id_field == self.fmt.encode_node_id(node_id)
        )


class NoMarking(PPMMarking):
    """The null scheme: honest nodes never mark."""

    name = "none"

    def __init__(self, id_len: int = 2):
        super().__init__(mark_prob=0.0, id_len=id_len)
