"""Extended Authenticated Marking Scheme (AMS) baseline.

Song & Perrig's AMS (INFOCOM 2001) authenticates each router's mark with a
keyed hash.  Section 3 of the paper extends it to the sensor setting: a
packet carries multiple marks, one per marking node, each of the form
``H_{k_i}(S | i)`` -- in our notation a MAC over the *original report* and
the marker's ID.  (The destination field is dropped because the sink is
well known.)

Crucially, an AMS mark does **not** protect the marks left by previous
nodes.  Each mark verifies or fails independently, so a forwarding mole can
remove, re-order, or selectively preserve upstream marks without
invalidating anything -- the attacks Section 3 uses to defeat it.  This
scheme exists as the strongest Internet-style baseline for the security
matrix experiment.
"""

from __future__ import annotations

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider, constant_time_equal
from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket

__all__ = ["ExtendedAMS"]


class ExtendedAMS(MarkingScheme):
    """Authenticated marks over the original report only (non-nested)."""

    name = "ams"
    verification_policy = "independent"

    def __init__(
        self, mark_prob: float = 1.0, id_len: int = 2, mac_len: int = 4
    ):
        super().__init__(MarkFormat(id_len=id_len, mac_len=mac_len), mark_prob)

    def _mac_input(self, packet: MarkedPacket, id_field: bytes) -> bytes:
        # H_{k_i}(S | i): only the original report and the marker's ID are
        # covered -- previous marks are deliberately NOT included.
        return packet.report_wire + id_field

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        id_field = self.fmt.encode_node_id(written_id)
        mac = ctx.provider.mac(ctx.key, self._mac_input(packet, id_field))
        return Mark(id_field=id_field, mac=mac)

    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return []
        node_id = self.fmt.decode_node_id(mark.id_field)
        return [node_id] if node_id in keystore else []

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return False
        if mark.id_field != self.fmt.encode_node_id(node_id):
            return False
        expected = provider.mac(key, self._mac_input(packet, mark.id_field))
        return constant_time_equal(expected, mark.mac)
