"""Probabilistic Nested Marking (PNM) -- the paper's full scheme.

Each forwarder marks with probability ``p``; its mark is::

    M_i = M_{i-1} | i' | H_{k_i}(M_{i-1} | i')      where  i' = H'_{k_i}(M | i)

``i'`` is a per-message *anonymous ID*: it depends on the node's secret key
and the original report ``M``, so a colluding mole -- which lacks the keys
of uncompromised nodes -- cannot tell which nodes have marked a packet and
therefore cannot selectively drop the packets that would implicate it
(defeating attack 6 of the taxonomy).  Because ``i'`` is bound to ``M``,
the mapping changes with every distinct report and cannot be accumulated
over time by the adversary.

The sink, which knows every node's key, resolves anonymous IDs by building
the ``i -> i'`` table for the report (Section 4.2's exhaustive search) or,
when it knows the topology, by searching only the one-hop neighbors of the
previously verified node (the ``O(d)`` optimization of Section 7).
Resolution is confirmed by verifying the nested MAC, so anonymous-ID
collisions from truncation cannot cause misattribution.
"""

from __future__ import annotations

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider, constant_time_equal
from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket

__all__ = ["PNMMarking"]

# Real node IDs are fed to H' with a fixed-width encoding, independent of
# the on-wire id_len, so anonymity does not depend on wire-format choices.
_ANON_INPUT_ID_LEN = 8


def _anon_input(report_wire: bytes, node_id: int) -> bytes:
    """The ``M | i`` input to the anonymous-ID function ``H'``."""
    return report_wire + node_id.to_bytes(_ANON_INPUT_ID_LEN, "big")


class PNMMarking(MarkingScheme):
    """Probabilistic nested marking with anonymous IDs."""

    name = "pnm"

    def __init__(self, mark_prob: float, anon_id_len: int = 4, mac_len: int = 4):
        super().__init__(
            MarkFormat(id_len=anon_id_len, mac_len=mac_len, anonymous=True),
            mark_prob,
        )

    def anonymous_id(
        self, provider: MacProvider, key: bytes, report_wire: bytes, node_id: int
    ) -> bytes:
        """Compute ``i' = H'_{k_i}(M | i)`` for this scheme's wire format."""
        anon = provider.anon_id(key, _anon_input(report_wire, node_id))
        if len(anon) != self.fmt.id_len:
            raise ValueError(
                f"provider anon_id length {len(anon)} does not match "
                f"wire format id_len {self.fmt.id_len}"
            )
        return anon

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        anon = self.anonymous_id(
            ctx.provider, ctx.key, packet.report_wire, written_id
        )
        # H_{k_i}(M_{i-1} | i'): nested MAC over the packet as received
        # plus the anonymous ID being appended.
        mac = ctx.provider.mac(ctx.key, packet.wire() + anon)
        return Mark(id_field=anon, mac=mac)

    def build_resolution_table(
        self,
        packet: MarkedPacket,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
    ) -> dict[bytes, list[int]]:
        """The sink's per-message ``anonymous ID -> real IDs`` table.

        Truncated anonymous IDs can collide, so a table entry may hold
        several candidate real IDs; MAC verification disambiguates.
        """
        ids = keystore.node_ids() if search_ids is None else search_ids
        report_wire = packet.report_wire
        table: dict[bytes, list[int]] = {}
        for node_id in ids:
            key = keystore.get(node_id)
            if key is None:
                # The search space may include keyless nodes (e.g. the sink
                # when a topology-bounded ball touches it); skip them.
                continue
            anon = provider.anon_id(key, _anon_input(report_wire, node_id))
            table.setdefault(anon, []).append(node_id)
        return table

    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return []
        if table is None:
            table = self.build_resolution_table(
                packet, keystore, provider, search_ids
            )
        assert isinstance(table, dict)
        return list(table.get(mark.id_field, ()))

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return False
        expected_anon = provider.anon_id(
            key, _anon_input(packet.report_wire, node_id)
        )
        if mark.id_field != expected_anon:
            return False
        prefix = packet.prefix_wire(mark_index)
        expected_mac = provider.mac(key, prefix + mark.id_field)
        return constant_time_equal(expected_mac, mark.mac)
