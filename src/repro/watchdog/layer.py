"""The overhearing layer: radio taps, scoring, and accusation relay.

A :class:`WatchdogLayer` attaches to a
:class:`~repro.sim.network.NetworkSimulation` (its ``watchdog``
argument) and is notified of every radio transmission.  For each one it
resolves, per the :class:`~repro.net.overhear.OverhearModel`, which
neighbors overheard the frame; overhearing watchers run their
:class:`~repro.watchdog.monitor.WatchdogMonitor` checks, and a score
crossing the accusation threshold emits a
:class:`~repro.watchdog.accusation.LocalAccusation` relayed hop-by-hop
toward the sink through the routing tree -- with real per-hop
transmission delays, link-loss draws, dead-node checks, and energy
accounting (the simulation's transmission listeners fire for every relay
hop).  Relays are best-effort: a lost or suppressed accusation is simply
gone, and detection falls back to PNM traceback.

The layer draws all its randomness from its **own** RNG, never the
simulation's: enabling the watchdog consumes no draw the packet path
would have made, so the data-plane trajectory -- deliveries, losses,
marks, verdicts -- is bit-for-bit identical with the watchdog on or off.
That isolation is what makes detection-latency comparisons apples-to-
apples and keeps the PNM-only output byte-identical when the layer is
disabled (pinned by ``tests/test_properties/test_watchdog_fusion.py``).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.adversary.watchdog import AccusationSuppressor, LyingWatchdog
from repro.net.overhear import OverhearModel
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import report_key as _report_key
from repro.packets.packet import MarkedPacket
from repro.routing.base import RoutingError
from repro.watchdog.accusation import (
    ACCUSATION_WIRE_LEN,
    DeliveredAccusation,
    LocalAccusation,
)
from repro.watchdog.fusion import WatchdogSinkLog
from repro.watchdog.monitor import NeighborScore, WatchdogConfig, WatchdogMonitor

__all__ = ["WatchdogLayer"]


class WatchdogLayer:
    """Deployment-wide overhearing, scoring, and accusation transport.

    Args:
        model: who can overhear whom, and how reliably.
        config: accumulator semantics shared by every monitor.
        rng: drives overhear and relay-loss draws; independent of the
            simulation RNG by design (see module docstring).  Defaults to
            a deterministically seeded generator.
        liars: compromised watchers that frame honest neighbors instead
            of monitoring (:class:`~repro.adversary.watchdog.LyingWatchdog`).
        suppressors: colluding relays that drop accusations protecting
            their partners
            (:class:`~repro.adversary.watchdog.AccusationSuppressor`).
        obs: observability provider; ``None`` resolves to the process
            default.
    """

    def __init__(
        self,
        model: OverhearModel,
        config: WatchdogConfig | None = None,
        rng: random.Random | None = None,
        liars: Iterable[LyingWatchdog] = (),
        suppressors: Iterable[AccusationSuppressor] = (),
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.model = model
        self.config = config if config is not None else WatchdogConfig()
        self.rng = rng if rng is not None else random.Random("watchdog")
        self.obs = resolve_provider(obs)
        self.monitors: dict[int, WatchdogMonitor] = {}
        # Hot-path copies of the config scalars the inlined bookkeeping
        # in :meth:`on_transmission` needs (every monitor this layer
        # creates shares ``self.config``, so these are authoritative).
        self._timeout = self.config.pending_timeout
        self._max_pending = self.config.max_pending
        self.sink_log = WatchdogSinkLog()
        self.emitted: list[LocalAccusation] = []
        self.suppressed: list[LocalAccusation] = []
        self.lost: list[LocalAccusation] = []
        self._liars = {liar.watcher: liar for liar in liars}
        self._liar_overhears: dict[int, int] = dict.fromkeys(self._liars, 0)
        self._liar_fired: set[int] = set()
        self._suppressors = {s.node: s.protects for s in suppressors}
        self._sim = None
        self._sink = model.topology.sink
        # Report-digest memo: the same report is re-keyed at every hop
        # of its journey, so one digest per report, not per transmission.
        # Keyed by object id -- the memo pins the report itself so the id
        # cannot be recycled while its entry is alive.
        self._keys: dict[int, tuple[object, bytes]] = {}
        # Overhears are counted locally on the hot path and flushed to
        # the provider once per run in :meth:`finalize`.  The bound hot
        # path keeps its own closure-local count; ``_flush_overhears``
        # folds it in here before the provider sees it.
        self._overhears = 0
        self._flush_overhears = None

    def attach(self, sim) -> None:
        """Bind to the simulation that will feed transmissions in.

        Binding also specializes the per-transmission hot path: a
        closure with the simulation, caches, and config scalars
        pre-resolved shadows :meth:`on_transmission` on the instance.
        The plain method remains the readable reference implementation
        (and the pre-attach behavior); the two are pinned equivalent by
        ``tests/test_watchdog/test_layer.py``.  Swap ``rng``, ``obs`` or
        the adversary sets only *before* attaching -- the closure binds
        them once.
        """
        self._sim = sim
        self._bind_hot_path()

    def _bind_hot_path(self) -> None:
        sim = self._sim
        model = self.model
        sink = self._sink
        monitors = self.monitors
        liars = self._liars
        config = self.config
        timeout = config.pending_timeout
        max_pending = config.max_pending
        flag_llr = config.flag_llr
        consistent_llr = config.consistent_llr
        score_floor = config.score_floor
        threshold = config.threshold
        links = model.links
        tracer = sim.tracer
        node_is_down = sim.node_is_down
        # NetworkSimulation mutates its down-node set in place, so the
        # bound set stays live; membership beats a method call per
        # watcher.  Fall back to the method for simulation doubles.
        down_nodes = getattr(sim, "_down", None)
        if not isinstance(down_nodes, set):
            down_nodes = None
        rng_random = self.rng.random
        obs_inc = self.obs.inc
        monitor_for = self.monitor_for
        emit = self._emit
        liar_overheard = self._liar_overheard
        has_liars = bool(liars)
        # Every (watcher, watched) pending queue gets a shared one-slot
        # *lower bound* on its oldest entry's timestamp.  The hot path
        # probes ``box[0] <= now - timeout`` instead of materializing an
        # iterator over the queue; only when the bound ages past the
        # timeout does it pay for a real head lookup (and re-tightens the
        # bound).  Soundness: the box only ever holds a past head time or
        # a past ``now``, and virtual time is monotone, so the bound never
        # exceeds the true head timestamp -- a stale bound can cost a
        # spurious probe, never a missed expiry.
        boxes: dict[tuple[int, int], list[float]] = {}
        # packed (sender, receiver) -> (cert_monitor, cert_queue,
        # cert_box, steps): the static part of the per-transmission
        # resolution with every dict lookup already paid.  The cert
        # triple drives the sender's certain-path insert (cert_monitor
        # is None when the receiver is the sink or the sender is a lying
        # watcher); each step is ``(watcher, monitor, out_queue,
        # out_box, in_queue, in_box, can_track_inbound, prob, is_liar)``
        # -- for liar steps the monitor slot carries the LyingWatchdog
        # itself.  Watchers that can neither track the receiver's
        # inbound nor ever hold a pending for the sender (their queue
        # was never created) are dropped at build time; that is sound
        # because *every* queue creation goes through a plan build,
        # which invalidates the plans of the watched sender below.
        # Rebuilt wholesale whenever the link table's version moves
        # (fault-injected overrides); monitors, queues, and boxes are
        # stable objects, so a rebuild re-resolves the same state.
        plans: dict[int, tuple] = {}
        plans_version = links.version
        overhears = 0

        def queue_for(monitor: WatchdogMonitor, watched: int) -> dict:
            """Get-or-create ``monitor``'s pending queue for ``watched``.

            Creation means ``watched``'s transmissions now have a watcher
            holding checkable evidence, so any plan built while the queue
            did not exist (and which therefore dropped the step) is stale:
            invalidate every plan whose sender is ``watched``.
            """
            queue = monitor._pending.get(watched)
            if queue is None:
                queue = monitor._pending[watched] = {}
                for edge in [e for e in plans if e >> 20 == watched]:
                    del plans[edge]
            return queue

        def build_plan(sender: int, receiver: int) -> tuple:
            watchable = receiver != sink
            cmon = cq = cbox = None
            if watchable and (not has_liars or sender not in liars):
                cmon = monitor_for(sender)
                cq = queue_for(cmon, receiver)
                cbox = boxes.setdefault((sender, receiver), [0.0])
            neighbors = model.neighbor_set(receiver) if watchable else ()
            steps = []
            for watcher in model.watchers_of(sender):
                if watcher == sender:
                    continue
                prob = model.overhear_prob(sender, watcher)
                if has_liars and watcher in liars:
                    steps.append(
                        (
                            watcher,
                            liars[watcher],
                            None,
                            None,
                            None,
                            None,
                            False,
                            prob,
                            True,
                        )
                    )
                    continue
                can_track = (
                    watchable and watcher != receiver and watcher in neighbors
                )
                monitor = monitors.get(watcher)
                out_q = (
                    None if monitor is None else monitor._pending.get(sender)
                )
                if out_q is None and not can_track:
                    # Dead step: nothing to check now, and queue creation
                    # invalidates this plan if that ever changes.
                    continue
                if monitor is None:
                    monitor = monitor_for(watcher)
                out_box = (
                    boxes.setdefault((watcher, sender), [0.0])
                    if out_q is not None
                    else None
                )
                in_q = in_box = None
                if can_track:
                    in_q = queue_for(monitor, receiver)
                    in_box = boxes.setdefault((watcher, receiver), [0.0])
                steps.append(
                    (
                        watcher,
                        monitor,
                        out_q,
                        out_box,
                        in_q,
                        in_box,
                        can_track,
                        prob,
                        False,
                    )
                )
            return (cmon, cq, cbox, tuple(steps))

        def flush_overhears() -> None:
            nonlocal overhears
            self._overhears += overhears
            overhears = 0

        self._flush_overhears = flush_overhears

        def hot(
            now: float,
            sender: int,
            receiver: int,
            packet: MarkedPacket,
            _score=NeighborScore,
        ) -> None:
            nonlocal overhears, plans_version
            report = packet.report
            # Frame identity: the pinned object id, not the report
            # digest.  Every pending entry holds the report itself, so a
            # live entry's id cannot be recycled; reports are frozen and
            # ride the whole path as one object, making object identity
            # and content identity coincide -- without hashing bytes (or
            # SipHash per-process randomization) on the hot path.
            key = id(report)
            if links.version != plans_version:
                plans.clear()
                plans_version = links.version
            # Node ids are small non-negative ints, so one packed int
            # hashes cheaper than a tuple key.
            edge = (sender << 20) | receiver
            plan = plans.get(edge)
            if plan is None:
                plan = plans[edge] = build_plan(sender, receiver)
            cmon = plan[0]
            cutoff = now - timeout
            if cmon is not None:
                # Inlined WatchdogMonitor.record_inbound (certain path).
                cq = plan[1]
                cbox = plan[2]
                if cq:
                    if cbox[0] <= cutoff:
                        cmon._expire_queue(now, receiver, cq)
                        cbox[0] = cq[next(iter(cq))][1] if cq else now
                    if len(cq) >= max_pending:
                        del cq[next(iter(cq))]
                        cmon._score_missing(receiver)
                else:
                    cbox[0] = now
                cq[key] = (packet.marks, now, report)
                if cmon.maybe_due:
                    for accusation in cmon.accusations_due(now):
                        emit(accusation)
            for (
                watcher,
                monitor,
                out_q,
                out_box,
                in_q,
                in_box,
                can_track,
                prob,
                is_liar,
            ) in plan[3]:
                if is_liar:
                    if (
                        watcher in down_nodes
                        if down_nodes is not None
                        else node_is_down(watcher)
                    ):
                        continue
                    if prob < 1.0 and (prob <= 0.0 or rng_random() >= prob):
                        continue
                    overhears += 1
                    if tracer is not None:
                        tracer.record(now, "overhear", watcher, report)
                    liar_overheard(now, monitor)
                    continue
                if not can_track and not out_q:
                    continue
                if (
                    watcher in down_nodes
                    if down_nodes is not None
                    else node_is_down(watcher)
                ):
                    continue
                if prob < 1.0 and (prob <= 0.0 or rng_random() >= prob):
                    continue
                overhears += 1
                if tracer is not None:
                    tracer.record(now, "overhear", watcher, report)
                if out_q:
                    # Inlined WatchdogMonitor.record_outbound.
                    if out_box[0] <= cutoff:
                        monitor._expire_queue(now, sender, out_q)
                        out_box[0] = (
                            out_q[next(iter(out_q))][1] if out_q else now
                        )
                    hit = out_q.pop(key, None)
                    if hit is not None:
                        scores = monitor.scores
                        entry = scores.get(sender)
                        if entry is None:
                            entry = scores[sender] = _score()
                        entry.observations += 1
                        inbound_marks = hit[0]
                        inbound_len = len(inbound_marks)
                        marks = packet.marks
                        appended = len(marks) - inbound_len
                        # ``marks is inbound_marks`` is the no-mark honest
                        # forwarding (the tuple rides through unchanged):
                        # an identity hit needs no slice allocation.
                        if marks is inbound_marks or (
                            (appended == 0 or appended == 1)
                            and marks[:inbound_len] == inbound_marks
                        ):
                            slid = entry.score + consistent_llr
                            entry.score = (
                                slid if slid > score_floor else score_floor
                            )
                        else:
                            entry.flagged += 1
                            entry.score += flag_llr
                            if (
                                entry.score >= threshold
                                and not entry.accused
                            ):
                                monitor.maybe_due = True
                            obs_inc("watchdog_flags_total")
                            if tracer is not None:
                                tracer.record(now, "flag", watcher, report)
                if can_track:
                    # Inlined WatchdogMonitor.record_inbound (overheard
                    # inbound for the receiver).
                    if in_q:
                        if in_box[0] <= cutoff:
                            monitor._expire_queue(now, receiver, in_q)
                            in_box[0] = (
                                in_q[next(iter(in_q))][1] if in_q else now
                            )
                        if len(in_q) >= max_pending:
                            del in_q[next(iter(in_q))]
                            monitor._score_missing(receiver)
                    else:
                        in_box[0] = now
                    in_q[key] = (packet.marks, now, report)
                if monitor.maybe_due:
                    for accusation in monitor.accusations_due(now):
                        emit(accusation)

        self.on_transmission = hot  # type: ignore[method-assign]

    def monitor_for(self, watcher: int) -> WatchdogMonitor:
        """The (lazily created) monitor running on ``watcher``."""
        monitor = self.monitors.get(watcher)
        if monitor is None:
            monitor = WatchdogMonitor(watcher_id=watcher, config=self.config)
            self.monitors[watcher] = monitor
        return monitor

    # Radio taps --------------------------------------------------------------

    def on_transmission(
        self, now: float, sender: int, receiver: int, packet: MarkedPacket
    ) -> None:
        """Process one data-plane transmission (called by the simulator).

        The sender itself always knows what it handed to ``receiver``
        (it transmitted the frame); every other radio neighbor overhears
        it probabilistically.  Watchers check the frame as ``sender``'s
        *outbound* against their pending record of what ``sender``
        received, and record it as ``receiver``'s *inbound* -- unless the
        receiver is the sink, whose deliveries are terminal.

        A watcher the frame carries no actionable information for is
        skipped before the overhear draw: it must either hold a pending
        inbound for ``sender`` (so the frame is checkable outbound
        evidence) or be able to track the receiver's inbound.  Modeling
        any other reception would only burn simulation time.
        """
        sim = self._sim
        model = self.model
        monitors = self.monitors
        liars = self._liars
        tracer = sim.tracer if sim is not None else None
        node_down = sim.node_is_down if sim is not None else None
        # Report digest, memoized inline by object identity (the memo
        # pins the report so its id cannot be recycled while cached).
        report = packet.report
        keys = self._keys
        rid = id(report)
        entry = keys.get(rid)
        if entry is None:
            if len(keys) > 64:
                keys.clear()
            key = _report_key(report)
            keys[rid] = (report, key)
        else:
            key = entry[1]
        receiver_watchable = receiver != self._sink
        if receiver_watchable and sender not in liars:
            monitor = monitors.get(sender)
            if monitor is None:
                monitor = self.monitor_for(sender)
            # Inlined WatchdogMonitor.record_inbound (the certain-path
            # insert runs once per transmission; keep the two in sync).
            pend = monitor._pending
            queue = pend.get(receiver)
            if queue is None:
                queue = pend[receiver] = {}
            elif queue:
                if queue[next(iter(queue))][1] <= now - self._timeout:
                    monitor._expire_queue(now, receiver, queue)
                if len(queue) >= self._max_pending:
                    del queue[next(iter(queue))]
                    monitor._score_missing(receiver)
            queue[key] = (packet.marks, now, report)
            if monitor.maybe_due:
                for accusation in monitor.accusations_due(now):
                    self._emit(accusation)
        receiver_neighbors = (
            model.neighbor_set(receiver) if receiver_watchable else ()
        )
        # Overhear probabilities, read through the model's version-keyed
        # cache without a method call per watcher.
        links = model.links
        probs = model._probs
        if links.version != model._probs_version:
            probs.clear()
            model._probs_version = links.version
        rng_random = self.rng.random
        watchers = model._watchers.get(sender)
        if watchers is None:
            watchers = model.watchers_of(sender)
        for watcher in watchers:
            if watcher == sender:
                continue
            monitor = monitors.get(watcher)
            pending = None if monitor is None else monitor._pending.get(sender)
            # Only track the receiver's inbound if this watcher can also
            # overhear the receiver's *outbound* -- i.e. they are radio
            # neighbors.  Without the gate, a watcher two hops upstream
            # would bank pendings it can never match, and their expiry
            # would read as "missing" evidence against an honest node.
            can_track_inbound = (
                receiver_watchable
                and watcher != receiver
                and watcher in receiver_neighbors
            )
            if not can_track_inbound and not pending and watcher not in liars:
                continue
            if node_down is not None and node_down(watcher):
                continue
            prob = probs.get((sender, watcher))
            if prob is None:
                prob = model.overhear_prob(sender, watcher)
            if prob < 1.0 and (prob <= 0.0 or rng_random() >= prob):
                continue
            self._overhears += 1
            if tracer is not None:
                tracer.record(now, "overhear", watcher, report)
            if liars:
                liar = liars.get(watcher)
                if liar is not None:
                    self._liar_overheard(now, liar)
                    continue
            if monitor is None:
                monitor = self.monitor_for(watcher)
            if pending:
                outcome = monitor.record_outbound(now, sender, packet, key)
                if outcome is False:
                    self.obs.inc("watchdog_flags_total")
                    self._trace(now, "flag", watcher, packet)
            if can_track_inbound:
                monitor.record_inbound(now, receiver, packet, key)
            if monitor.maybe_due:
                for accusation in monitor.accusations_due(now):
                    self._emit(accusation)

    def finalize(self, now: float) -> None:
        """End-of-run flush: expire pendings, emit overdue accusations.

        Called by :meth:`NetworkSimulation.run` after the event queue
        drains; any accusations emitted here schedule relay events the
        simulation drains with one more pass.
        """
        if self._flush_overhears is not None:
            self._flush_overhears()
        if self._overhears:
            self.obs.inc("watchdog_overhears_total", float(self._overhears))
            self._overhears = 0
        for watcher in sorted(self.monitors):
            monitor = self.monitors[watcher]
            monitor.expire_all(now)
            for accusation in monitor.accusations_due(now):
                self._emit(accusation)

    # Accusation transport ----------------------------------------------------

    def _liar_overheard(self, now: float, liar: LyingWatchdog) -> None:
        self._liar_overhears[liar.watcher] += 1
        if liar.watcher in self._liar_fired:
            return
        if self._liar_overhears[liar.watcher] < liar.after_overhears:
            return
        self._liar_fired.add(liar.watcher)
        # A plausible-looking fabrication: threshold-crossing score,
        # observation counts a real detection could have produced.
        self._emit(
            LocalAccusation(
                watcher=liar.watcher,
                accused=liar.victim,
                score=self.config.threshold + self.config.flag_llr,
                observations=liar.after_overhears,
                flagged=2,
                missing=0,
                emitted_at=now,
            )
        )

    def _emit(self, accusation: LocalAccusation) -> None:
        self.emitted.append(accusation)
        self.obs.inc("watchdog_accusations_emitted_total")
        self._relay(accusation, accusation.watcher, hops=0)

    def _relay(self, accusation: LocalAccusation, node: int, hops: int) -> None:
        """Forward ``accusation`` one hop toward the sink, best-effort."""
        sim = self._sim
        if sim is None:
            raise RuntimeError("WatchdogLayer.attach was never called")
        if node == self.model.topology.sink:
            self._deliver(accusation, hops)
            return
        if sim.node_is_down(node):
            self._lose(accusation)
            return
        protected = self._suppressors.get(node)
        if protected is not None and accusation.accused in protected:
            self.suppressed.append(accusation)
            self.obs.inc("watchdog_accusations_suppressed_total")
            return
        try:
            next_hop = sim.routing.next_hop(node)
        except RoutingError:
            self._lose(accusation)
            return
        # The relay hop costs real radio energy and rides the real link:
        # loss kills the accusation (no acks or retries for control
        # traffic), and serialization delays its arrival.
        for listener in sim.transmission_listeners:
            listener(node, ACCUSATION_WIRE_LEN)
        link = sim.links.model_for(node, next_hop)
        if not link.is_delivered(self.rng):
            self._lose(accusation)
            return
        delay = link.transmission_delay(ACCUSATION_WIRE_LEN)
        sim.sim.schedule(
            delay, lambda: self._relay(accusation, next_hop, hops + 1)
        )

    def _deliver(self, accusation: LocalAccusation, hops: int) -> None:
        sim = self._sim
        delivered = DeliveredAccusation(
            accusation=accusation, delivered_at=sim.sim.now, hops=hops
        )
        self.sink_log.receive(delivered)
        self.obs.inc("watchdog_accusations_delivered_total")
        self.obs.observe("watchdog_accusation_delay_seconds", delivered.latency)
        self.obs.observe("watchdog_accusation_hops", float(hops))

    def _lose(self, accusation: LocalAccusation) -> None:
        self.lost.append(accusation)
        self.obs.inc("watchdog_accusations_lost_total")

    def _trace(self, now: float, kind: str, node: int, packet: MarkedPacket) -> None:
        sim = self._sim
        if sim is not None and sim.tracer is not None:
            sim.tracer.record(now, kind, node, packet.report)

    def __repr__(self) -> str:
        return (
            f"WatchdogLayer(monitors={len(self.monitors)}, "
            f"emitted={len(self.emitted)}, delivered={len(self.sink_log)})"
        )
