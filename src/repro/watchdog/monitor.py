"""Per-watcher consistency checking and likelihood accumulation.

A watcher pairs two overheard radio frames for each packet a watched
neighbor handles: the frame *delivered to* the neighbor (what it should
forward) and the frame the neighbor *transmits onward* (what it actually
forwarded).  Frames pair by report digest -- the content identity that
survives marking (:func:`repro.obs.spans.report_key`) -- and the pair is
**consistent** exactly when honest forwarding explains it: the report is
unchanged and the outbound mark list extends the inbound one by at most
one appended mark (probabilistic schemes legitimately skip marking; no
honest behavior removes, reorders, or rewrites existing marks).  The
check is pure structural comparison of overheard bytes: no new crypto,
and in particular the watcher never needs other nodes' keys.

Evidence accumulates per watched neighbor as a log-likelihood-ratio
style score (arXiv:1011.3879 derives the increments from channel
statistics; here they are explicit configuration).  Inconsistent
forwardings add a large positive increment, overheard-but-consistent
ones decay the score slightly, and forwardings the watcher waited for
but never overheard add a small positive increment -- small because a
missed overhear is also explained by the watcher's own lossy
promiscuous channel.  Crossing :attr:`WatchdogConfig.threshold` emits a
:class:`~repro.watchdog.accusation.LocalAccusation` (once per accused
neighbor per watcher).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.spans import report_key
from repro.packets.packet import MarkedPacket
from repro.watchdog.accusation import LocalAccusation

__all__ = ["WatchdogConfig", "NeighborScore", "WatchdogMonitor"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Tunable semantics of the watchdog's likelihood accumulator.

    Attributes:
        threshold: score at which a watcher accuses a neighbor.  With the
            defaults, two flagged forwardings convict; missed overhears
            alone need eight -- deliberately slower, because they are
            also explained by the watcher's own lossy channel.
        flag_llr: score increment for an inconsistent forwarding
            (tamper-grade evidence: honest forwarding never explains it).
        consistent_llr: (negative) increment for a consistent forwarding;
            bounded below by ``score_floor`` so long good behavior cannot
            bank unlimited credit against future misbehavior.
        missing_llr: increment when a pending inbound expires without an
            overheard matching outbound (dropping or suppression).
        score_floor: lower bound on any neighbor's score.
        pending_timeout: virtual seconds a watcher remembers an inbound
            frame while waiting for the matching outbound.
        max_pending: per-neighbor cap on remembered inbound frames; the
            oldest is evicted (and scored as missing) beyond it.
    """

    threshold: float = 4.0
    flag_llr: float = 2.0
    consistent_llr: float = -0.1
    missing_llr: float = 0.5
    score_floor: float = -2.0
    pending_timeout: float = 5.0
    max_pending: int = 64

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")
        if self.flag_llr <= 0:
            raise ValueError(f"flag_llr must be > 0, got {self.flag_llr}")
        if self.missing_llr < 0:
            raise ValueError(f"missing_llr must be >= 0, got {self.missing_llr}")
        if self.consistent_llr > 0:
            raise ValueError(
                f"consistent_llr must be <= 0, got {self.consistent_llr}"
            )
        if self.pending_timeout <= 0:
            raise ValueError(
                f"pending_timeout must be > 0, got {self.pending_timeout}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


@dataclass(slots=True)
class NeighborScore:
    """Running evidence one watcher holds against one neighbor.

    Attributes:
        score: accumulated log-likelihood score.
        observations: overheard forwardings checked (consistent + flagged).
        flagged: inconsistent forwardings observed.
        missing: expected forwardings never overheard.
        accused: whether an accusation was already emitted.
    """

    score: float = 0.0
    observations: int = 0
    flagged: int = 0
    missing: int = 0
    accused: bool = False


# A pending inbound frame awaiting its outbound counterpart is a bare
# ``(marks, recorded_at, report)`` tuple: one is built per transmission,
# so the hot path gets tuple-packing instead of a dataclass __init__.
# The report rides along to *pin* it alive: the layer's bound hot path
# keys queues by ``id(report)`` (cheaper than digest keys and immune to
# per-process hash randomization), which is sound only while the entry
# holds a reference -- a live object's id cannot be recycled.
_Pending = tuple[tuple, float, object]


class WatchdogMonitor:
    """One node's view of every neighbor it watches.

    A plain ``__slots__`` class rather than a dataclass: monitor state is
    touched several times per overheard transmission, and slot access
    stays off the instance-dict path.

    Args:
        watcher_id: the node running this monitor.
        config: accumulator semantics shared across the deployment.
    """

    __slots__ = (
        "watcher_id",
        "config",
        "scores",
        "_pending",
        "maybe_due",
        "_threshold",
        "_flag_llr",
        "_consistent_llr",
        "_missing_llr",
        "_score_floor",
        "_timeout",
        "_max_pending",
    )

    def __init__(
        self, watcher_id: int, config: WatchdogConfig | None = None
    ) -> None:
        self.watcher_id = watcher_id
        self.config = config if config is not None else WatchdogConfig()
        self.scores: dict[int, NeighborScore] = {}
        # watched -> frame identity -> pending inbound (insertion-ordered,
        # so eviction drops the oldest).  The identity is the report
        # digest on the method path, the pinned ``id(report)`` on the
        # layer's bound hot path; a queue only ever sees one keying.
        self._pending: dict[int, dict[bytes | int, _Pending]] = {}
        # Set whenever a score update crosses the accusation threshold;
        # lets the hot path skip :meth:`accusations_due` entirely.
        self.maybe_due = False
        # Hot-path copies of the (frozen) config scalars: a plain slot is
        # one load, the dataclass attribute chain is two per access, and
        # record_* run once per overhear.
        config = self.config
        self._threshold = config.threshold
        self._flag_llr = config.flag_llr
        self._consistent_llr = config.consistent_llr
        self._missing_llr = config.missing_llr
        self._score_floor = config.score_floor
        self._timeout = config.pending_timeout
        self._max_pending = config.max_pending

    def __repr__(self) -> str:
        return (
            f"WatchdogMonitor(watcher_id={self.watcher_id}, "
            f"watched={len(self.scores)})"
        )

    def score_for(self, watched: int) -> NeighborScore:
        """The (live) evidence record for ``watched``."""
        return self.scores.setdefault(watched, NeighborScore())

    def pending_count(self, watched: int) -> int:
        """Inbound frames still awaiting ``watched``'s forwarding."""
        return len(self._pending.get(watched, {}))

    def record_inbound(
        self,
        now: float,
        watched: int,
        packet: MarkedPacket,
        key: bytes | int | None = None,
    ) -> None:
        """Note a frame delivered to ``watched`` (it should forward this).

        Called both when the watcher overhears a transmission addressed
        to ``watched`` and when the watcher *is* the transmitter (a
        sender knows with certainty what it handed to its next hop).
        ``key`` is the frame's identity under whichever keying the
        caller uses consistently: the report digest by default, or the
        pinned ``id(report)`` the layer's bound hot path prefers.
        Callers that fan one frame out to several monitors pass it to
        avoid re-deriving per watcher.
        """
        queue = self._pending.get(watched)
        if queue is None:
            queue = self._pending[watched] = {}
        elif queue:
            # Inline head-staleness probe: entries are in virtual-time
            # order, so one lookup decides whether the sweep is needed.
            if queue[next(iter(queue))][1] <= now - self._timeout:
                self._expire_queue(now, watched, queue)
            if len(queue) >= self._max_pending:
                del queue[next(iter(queue))]
                self._score_missing(watched)
        queue[key if key is not None else report_key(packet.report)] = (
            packet.marks,
            now,
            packet.report,
        )

    def record_outbound(
        self,
        now: float,
        watched: int,
        packet: MarkedPacket,
        key: bytes | int | None = None,
    ) -> bool | None:
        """Check an overheard forwarding by ``watched``; score it.

        ``key`` is the frame's precomputed identity (see
        :meth:`record_inbound`).

        Returns:
            ``True`` for a consistent forwarding, ``False`` for a flagged
            (inconsistent) one, ``None`` when the frame matches no pending
            inbound (the watcher missed the inbound, or the report itself
            was rewritten en route -- either way there is nothing sound to
            compare against, so no score moves).
        """
        queue = self._pending.get(watched)
        if not queue:
            return None
        if queue[next(iter(queue))][1] <= now - self._timeout:
            self._expire_queue(now, watched, queue)
        pending = queue.pop(
            key if key is not None else report_key(packet.report), None
        )
        if pending is None:
            return None
        entry = self.scores.get(watched)
        if entry is None:
            entry = self.scores[watched] = NeighborScore()
        entry.observations += 1
        inbound_marks = pending[0]
        inbound_len = len(inbound_marks)
        appended = len(packet.marks) - inbound_len
        consistent = (
            appended in (0, 1)
            and packet.marks[:inbound_len] == inbound_marks
        )
        if consistent:
            entry.score = max(
                self._score_floor, entry.score + self._consistent_llr
            )
            return True
        entry.flagged += 1
        entry.score += self._flag_llr
        if entry.score >= self._threshold and not entry.accused:
            self.maybe_due = True
        return False

    def expire_all(self, now: float) -> None:
        """Expire every timed-out pending frame (end-of-run flush)."""
        for watched in sorted(self._pending):
            self._expire(now, watched)

    def accusations_due(self, now: float) -> list[LocalAccusation]:
        """Neighbors whose score crossed the threshold, not yet accused."""
        self.maybe_due = False
        due = []
        for watched in sorted(self.scores):
            entry = self.scores[watched]
            if entry.accused or entry.score < self.config.threshold:
                continue
            entry.accused = True
            due.append(
                LocalAccusation(
                    watcher=self.watcher_id,
                    accused=watched,
                    score=entry.score,
                    observations=entry.observations,
                    flagged=entry.flagged,
                    missing=entry.missing,
                    emitted_at=now,
                )
            )
        return due

    def _expire(self, now: float, watched: int) -> None:
        queue = self._pending.get(watched)
        if queue:
            self._expire_queue(now, watched, queue)

    def _expire_queue(
        self, now: float, watched: int, queue: dict[bytes | int, _Pending]
    ) -> None:
        cutoff = now - self._timeout
        # Entries are inserted in virtual-time order, so the stale prefix
        # is contiguous: pop from the front until one is young enough.
        # O(expired) amortized instead of a full scan per record call.
        while queue:
            key = next(iter(queue))
            if queue[key][1] > cutoff:
                break
            del queue[key]
            self._score_missing(watched)

    def _score_missing(self, watched: int) -> None:
        entry = self.score_for(watched)
        entry.missing += 1
        entry.score = max(
            self._score_floor, entry.score + self._missing_llr
        )
        if entry.score >= self._threshold and not entry.accused:
            self.maybe_due = True
