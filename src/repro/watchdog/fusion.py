"""Sink-side watchdog state: the accusation log and detection tracking.

Two pieces live here:

* :class:`WatchdogSinkLog` -- the sink's record of every accusation that
  survived the hop-by-hop relay.  It is deliberately *not* trusted on its
  own: accusations are unauthenticated radio messages an adversary can
  fabricate (lying watchdog) or suppress (colluding relay).  Conviction
  requires corroboration.
* :func:`tamper_corroboration_zone` -- the set of nodes PNM evidence
  *independently* suspects: every observed tamper stop is, by consecutive
  traceability (Theorem 2), within one hop downstream of a manipulating
  mole, so the union of the stops' closed neighborhoods bounds where a
  tampering mole can be.  A watchdog accusation is confirmed only inside
  this zone (plus unexplained drop sites, added by
  :func:`repro.faults.attribution.fused_accusation_report`) -- watchdog
  evidence accelerates PNM conviction but never convicts on its own,
  which keeps the honest false-accusation rate exactly 0.0 even under
  framing.
* :class:`DetectionProbe` -- wraps a sink to measure detection latency in
  delivered packets, comparing PNM-only *stable* conviction against the
  fused path.  "Stable" means the verdict holds from that packet through
  the end of the run: a momentary verdict the sink later recants is not a
  detection.  The fused conviction is monotone by construction (stops and
  accusations only accumulate), so its first hit is already stable.
"""

from __future__ import annotations

from repro.net.topology import Topology
from repro.packets.packet import MarkedPacket
from repro.traceback.sink import SinkEvidence, TracebackSink
from repro.watchdog.accusation import DeliveredAccusation

__all__ = ["WatchdogSinkLog", "DetectionProbe", "tamper_corroboration_zone"]


class WatchdogSinkLog:
    """Accusations that reached the sink, in delivery order."""

    def __init__(self) -> None:
        self.delivered: list[DeliveredAccusation] = []

    def receive(self, delivered: DeliveredAccusation) -> None:
        """Record one accusation the relay handed over."""
        self.delivered.append(delivered)

    def accused_nodes(self) -> list[int]:
        """Distinct accused node IDs, sorted ascending."""
        return sorted({d.accusation.accused for d in self.delivered})

    def accusers_of(self, node: int) -> list[int]:
        """Distinct watchers that accused ``node``, sorted ascending."""
        return sorted(
            {
                d.accusation.watcher
                for d in self.delivered
                if d.accusation.accused == node
            }
        )

    def __len__(self) -> int:
        return len(self.delivered)

    def __repr__(self) -> str:
        return f"WatchdogSinkLog(delivered={len(self.delivered)})"


def tamper_corroboration_zone(
    evidence: SinkEvidence, topology: Topology
) -> set[int]:
    """Nodes PNM's tamper evidence independently suspects.

    The union of the closed neighborhoods of every observed tamper stop
    (excluding the sink).  Empty exactly when no packet ever failed MAC
    verification -- so in any honest deployment, under any benign churn,
    no watchdog accusation can be corroborated through this zone.
    """
    zone: set[int] = set()
    for stop, _count in evidence.tamper_stops:
        if stop == topology.sink:
            continue
        zone |= topology.closed_neighborhood(stop)
    zone.discard(topology.sink)
    return zone


class DetectionProbe:
    """Sink wrapper measuring detection latency in delivered packets.

    Drop-in for the ``sink`` argument of
    :class:`~repro.sim.network.NetworkSimulation` (it only needs
    ``receive``): delegates every packet to the wrapped sink, then checks
    both detection conditions against the ground-truth ``moles``:

    * **PNM-only**: the sink's verdict is tamper-backed, identified, and
      its suspect neighborhood contains a true mole.
    * **Fused**: a delivered watchdog accusation names a true mole inside
      the current :func:`tamper_corroboration_zone`.

    Args:
        sink: the real traceback sink.
        log: the watchdog layer's sink log (may stay empty).
        moles: ground-truth mole IDs.
    """

    def __init__(
        self,
        sink: TracebackSink,
        log: WatchdogSinkLog,
        moles: frozenset[int] | set[int],
    ):
        self.sink = sink
        self.log = log
        self.moles = frozenset(moles)
        self.delivered_count = 0
        #: Per delivered packet: did the PNM-only condition hold?
        self.pnm_hits: list[bool] = []
        #: First delivered-packet index (1-based) with a corroborated
        #: watchdog conviction, or ``None``.
        self.corroborated_first: int | None = None
        #: First delivered-packet index (1-based) at which *any*
        #: watchdog accusation (corroborated or not) had reached the
        #: sink, or ``None``.  The accusation->fusion latency SLO is
        #: ``fused_detection() - first_accusation``.
        self.first_accusation: int | None = None

    def receive(self, packet: MarkedPacket, delivering_node: int):
        """Feed one delivered packet through the sink, then re-check."""
        verification = self.sink.receive(packet, delivering_node)
        self.delivered_count += 1
        self._check()
        return verification

    def _check(self) -> None:
        verdict = self.sink.verdict()
        pnm_hit = (
            self.sink.tampered_packets > 0
            and verdict.identified
            and verdict.suspect is not None
            and bool(verdict.suspect.members & self.moles)
        )
        self.pnm_hits.append(pnm_hit)
        if self.first_accusation is None and len(self.log):
            self.first_accusation = self.delivered_count
        if self.corroborated_first is None and len(self.log):
            zone = tamper_corroboration_zone(
                self.sink.evidence(), self.sink.topology
            )
            confirmed = {
                node for node in self.log.accused_nodes() if node in zone
            }
            if confirmed & self.moles:
                self.corroborated_first = self.delivered_count

    def pnm_stable_detection(self) -> int | None:
        """First packet index from which PNM-only stays correct to the end.

        ``None`` when the last verdict is wrong (no stable detection).
        A verdict that flickers onto the mole and off again does not
        count until its final onset.
        """
        if not self.pnm_hits or not self.pnm_hits[-1]:
            return None
        index = len(self.pnm_hits)
        while index > 1 and self.pnm_hits[index - 2]:
            index -= 1
        return index

    def fused_detection(self) -> int | None:
        """First packet index at which the fused report convicts a mole.

        The earlier of the corroborated-accusation hit and the PNM stable
        detection (the fused report contains the PNM accusation too).
        """
        candidates = [
            c
            for c in (self.corroborated_first, self.pnm_stable_detection())
            if c is not None
        ]
        return min(candidates) if candidates else None

    def accusation_fusion_latency(self) -> int | None:
        """Delivered packets between first accusation and fused conviction.

        The paper-metric SLO behind ``accusation_fusion_latency`` in
        :func:`repro.obs.telemetry.compute_cluster_slo`: how long
        watchdog evidence sat at the sink before fusion convicted.
        ``None`` unless both events happened; clamped at 0 when PNM
        alone convicted before the first accusation arrived.
        """
        fused = self.fused_detection()
        if fused is None or self.first_accusation is None:
            return None
        return max(0, fused - self.first_accusation)

    def __repr__(self) -> str:
        return (
            f"DetectionProbe(delivered={self.delivered_count}, "
            f"pnm={self.pnm_stable_detection()}, fused={self.fused_detection()})"
        )
