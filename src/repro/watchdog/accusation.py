"""Local accusations: what a watcher tells the sink about a neighbor.

An accusation is deliberately tiny -- watcher, accused, the evidence
score that crossed the threshold and its breakdown -- because it travels
hop-by-hop over the same slow radios as data packets
(:class:`~repro.watchdog.layer.WatchdogLayer` relays it through the
routing tree with real link-loss draws and transmission delays).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LocalAccusation", "DeliveredAccusation", "ACCUSATION_WIRE_LEN"]

#: Bytes on the wire per accusation message: two node IDs, a quantized
#: score, and the observation/flag counters.  Small by design -- the
#: watchdog's control traffic must not dominate the data traffic whose
#: integrity it guards.
ACCUSATION_WIRE_LEN = 12


@dataclass(frozen=True)
class LocalAccusation:
    """One watcher's claim that a neighbor misbehaves.

    Attributes:
        watcher: the accusing node.
        accused: the neighbor it accuses.
        score: the accumulated log-likelihood score at emission time.
        observations: overheard forwardings checked for this neighbor.
        flagged: checks that came back inconsistent (tamper-grade).
        missing: forwardings the watcher waited for but never overheard.
        emitted_at: virtual time the accusation left the watcher.
    """

    watcher: int
    accused: int
    score: float
    observations: int
    flagged: int
    missing: int
    emitted_at: float


@dataclass(frozen=True)
class DeliveredAccusation:
    """An accusation that survived the relay to the sink.

    Attributes:
        accusation: the original local accusation.
        delivered_at: virtual time it reached the sink.
        hops: relay hops it traversed.
    """

    accusation: LocalAccusation
    delivered_at: float
    hops: int

    @property
    def latency(self) -> float:
        """Virtual seconds between emission and delivery."""
        return self.delivered_at - self.accusation.emitted_at
