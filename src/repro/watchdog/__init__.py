"""In-network misbehavior detection by radio overhearing.

The Algebraic Watchdog line of work (arXiv:1011.3879, arXiv:1007.2088)
observes that wireless is a broadcast medium: a node's neighbors hear
the frames it forwards and can check them against the frames it
received, catching manipulation within O(1) hops of the mole -- long
before PNM traceback has accumulated enough marked packets at the sink.

This package adds that substrate to the reproduction:

* :class:`~repro.watchdog.monitor.WatchdogMonitor` -- per-watcher
  consistency checks over overheard frames (pure structural comparison;
  no new crypto) feeding a per-neighbor log-likelihood score with a
  configurable accusation threshold
  (:class:`~repro.watchdog.monitor.WatchdogConfig`).
* :class:`~repro.watchdog.layer.WatchdogLayer` -- deployment-wide glue:
  taps every simulated transmission through the
  :class:`~repro.net.overhear.OverhearModel`, relays threshold-crossing
  :class:`~repro.watchdog.accusation.LocalAccusation` messages
  hop-by-hop to the sink, and hosts the layer's adversaries (lying
  watchdogs, colluding suppressors --
  :mod:`repro.adversary.watchdog`).
* :class:`~repro.watchdog.fusion.WatchdogSinkLog` and
  :class:`~repro.watchdog.fusion.DetectionProbe` -- the sink-side log
  and detection-latency instrumentation.  Accusations alone convict
  nobody: :func:`repro.faults.attribution.fused_accusation_report`
  confirms them only against nodes PNM evidence independently suspects,
  preserving the honest false-accusation == 0.0 invariant.

See ``docs/watchdog.md`` for the model and threat discussion.
"""

from repro.watchdog.accusation import (
    ACCUSATION_WIRE_LEN,
    DeliveredAccusation,
    LocalAccusation,
)
from repro.watchdog.fusion import (
    DetectionProbe,
    WatchdogSinkLog,
    tamper_corroboration_zone,
)
from repro.watchdog.layer import WatchdogLayer
from repro.watchdog.monitor import NeighborScore, WatchdogConfig, WatchdogMonitor

__all__ = [
    "ACCUSATION_WIRE_LEN",
    "LocalAccusation",
    "DeliveredAccusation",
    "WatchdogConfig",
    "WatchdogMonitor",
    "NeighborScore",
    "WatchdogLayer",
    "WatchdogSinkLog",
    "DetectionProbe",
    "tamper_corroboration_zone",
]
