"""Notification-based traceback: ICMP-traceback-style messages.

Each forwarder, with probability ``q``, sends the sink a *separate*
notification message for a packet it forwards, naming itself, its previous
hop and the report digest (Bellovin's iTrace, transplanted).  The sink
stitches (prev_hop -> node) assertions into a path.

The paper's two objections, measurable here:

* **signaling cost**: every notification is an extra packet that must
  itself be forwarded to the sink, multiplying radio traffic.
* **abuse**: iTrace notifications are unauthenticated -- a mole forges
  notifications naming an innocent node as the origin
  (:class:`ForgingNotificationMole`), directly framing it.  Adding a MAC
  (``authenticated=True``) stops forgery but not withholding
  (:class:`SilentNotificationMole`), and the per-message cost remains.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider, constant_time_equal
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report
from repro.sim.behaviors import ForwardingBehavior

__all__ = [
    "Notification",
    "NotifyingForwarder",
    "SilentNotificationMole",
    "ForgingNotificationMole",
    "NotificationSink",
]

#: Wire size of one notification message: ids (2+2), digest (8), and a
#: report-style header -- what the radio actually pays per notification.
NOTIFICATION_BYTES = 2 + 2 + 8 + 8


def notification_digest(report: Report) -> bytes:
    """Content identity of the notified report."""
    return hashlib.sha256(b"notify-digest" + report.encode()).digest()[:8]


@dataclass(frozen=True)
class Notification:
    """One traceback notification message.

    Attributes:
        node_id: the forwarder announcing itself.
        prev_hop: where it received the packet from (the path assertion).
        digest: report identity.
        mac: authentication tag (empty when the deployment runs the
            unauthenticated iTrace variant).
    """

    node_id: int
    prev_hop: int
    digest: bytes
    mac: bytes = b""

    def mac_input(self) -> bytes:
        """The bytes an authenticated notification's MAC covers."""
        return (
            b"notification"
            + self.node_id.to_bytes(2, "big")
            + self.prev_hop.to_bytes(2, "big")
            + self.digest
        )


class NotifyingForwarder:
    """An honest forwarder that probabilistically notifies the sink.

    Notifications are collected out of band by a
    :class:`NotificationSink`; in a full deployment each one would be a
    packet routed to the sink, so the sink also accounts their bytes.

    Args:
        inner: the wrapped forwarding behavior.
        prev_hop: the node it receives from on the (stable) route.
        sink: the notification collector.
        notify_prob: per-packet notification probability ``q``.
        rng: the node's random stream.
        key: node key; when given, notifications carry a MAC.
        provider: MAC provider (required with ``key``).
    """

    def __init__(
        self,
        inner: ForwardingBehavior,
        prev_hop: int,
        sink: "NotificationSink",
        notify_prob: float,
        rng: random.Random,
        key: bytes | None = None,
        provider: MacProvider | None = None,
    ):
        if not 0.0 <= notify_prob <= 1.0:
            raise ValueError(f"notify_prob must be in [0, 1], got {notify_prob}")
        if key is not None and provider is None:
            raise ValueError("authenticated notifications need a provider")
        self.inner = inner
        self.prev_hop = prev_hop
        self.sink = sink
        self.notify_prob = notify_prob
        self.rng = rng
        self.key = key
        self.provider = provider
        self.notifications_sent = 0

    @property
    def node_id(self) -> int:
        return self.inner.node_id

    def _notify(self, report: Report) -> None:
        digest = notification_digest(report)
        mac = b""
        if self.key is not None:
            assert self.provider is not None
            draft = Notification(self.node_id, self.prev_hop, digest)
            mac = self.provider.mac(self.key, draft.mac_input())
        self.sink.deliver(
            Notification(
                node_id=self.node_id,
                prev_hop=self.prev_hop,
                digest=digest,
                mac=mac,
            )
        )
        self.notifications_sent += 1

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Forward, then notify the sink with probability ``q``."""
        result = self.inner.forward(packet)
        if result is not None and self.rng.random() < self.notify_prob:
            self._notify(packet.report)
        return result


class SilentNotificationMole(NotifyingForwarder):
    """A mole that forwards attack traffic but never notifies."""

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Forward without ever notifying."""
        return self.inner.forward(packet)


class ForgingNotificationMole(NotifyingForwarder):
    """A mole that injects forged notifications framing a victim.

    For every attack packet it forwards, it also emits a notification
    claiming ``frame_victim`` received the packet from ``frame_prev`` --
    placing the victim on (indeed, upstream of) the reconstructed path.
    Without authentication the sink cannot tell; with authentication the
    forged MAC never verifies (the mole lacks the victim's key).

    The mole also keeps notifying honestly under its own name: announcing
    itself as a mid-path *forwarder* is harmless (forwarders are not
    suspects) and not doing so would make it stick out as an apparent
    origin.
    """

    def __init__(self, *args, frame_victim: int, frame_prev: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.frame_victim = frame_victim
        self.frame_prev = frame_prev

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Forward, notify honestly, and inject the framing forgery."""
        result = super().forward(packet)  # honest blend-in notifications
        if result is not None:
            digest = notification_digest(packet.report)
            mac = b""
            if self.key is not None:
                assert self.provider is not None
                # Best the mole can do: MAC with its OWN key.
                draft = Notification(self.frame_victim, self.frame_prev, digest)
                mac = self.provider.mac(self.key, draft.mac_input())
            self.sink.deliver(
                Notification(
                    node_id=self.frame_victim,
                    prev_hop=self.frame_prev,
                    digest=digest,
                    mac=mac,
                )
            )
            self.notifications_sent += 1
        return result


class NotificationSink:
    """Collects notifications and reconstructs per-report paths.

    Args:
        authenticated: whether notifications must carry a valid MAC to be
            accepted (the hardened iTrace variant).
        keystore: node keys for MAC verification.
        provider: MAC provider.
    """

    def __init__(
        self,
        authenticated: bool = False,
        keystore: KeyStore | None = None,
        provider: MacProvider | None = None,
    ):
        if authenticated and (keystore is None or provider is None):
            raise ValueError("authenticated mode needs keystore and provider")
        self.authenticated = authenticated
        self.keystore = keystore
        self.provider = provider
        self.accepted: list[Notification] = []
        self.rejected = 0
        self.bytes_received = 0

    def deliver(self, notification: Notification) -> None:
        """Receive one notification message (verifying it if required)."""
        self.bytes_received += NOTIFICATION_BYTES
        if self.authenticated:
            assert self.keystore is not None and self.provider is not None
            key = self.keystore.get(notification.node_id)
            if key is None:
                self.rejected += 1
                return
            expected = self.provider.mac(key, notification.mac_input())
            if not constant_time_equal(expected, notification.mac):
                self.rejected += 1
                return
        self.accepted.append(notification)

    def edges_for(self, report: Report) -> set[tuple[int, int]]:
        """All asserted ``(prev_hop, node)`` edges for one report."""
        digest = notification_digest(report)
        return {
            (n.prev_hop, n.node_id)
            for n in self.accepted
            # Content-addressing, not authentication: both digests are
            # computed from public report bytes, so timing is harmless.
            if n.digest == digest  # lint: disable=RL001
        }

    def most_upstream(self, reports: list[Report]) -> int | None:
        """The apparent origin across the notified edges of many reports.

        A node is upstream of another if some edge chain links them; the
        apparent origin is a node that appears as a ``prev_hop`` but never
        as a notified forwarder's... strictly, never as an edge head.
        Returns the smallest such node for determinism, or ``None``
        without evidence.
        """
        heads: set[int] = set()
        tails: set[int] = set()
        for report in reports:
            for prev, node in self.edges_for(report):
                tails.add(prev)
                heads.add(node)
        origins = tails - heads
        if not origins:
            return None
        return min(origins)
