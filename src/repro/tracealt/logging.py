"""Logging-based traceback: SPIE-style per-node packet digests.

Each node records a digest of every report it forwards in a bounded Bloom
filter (sensor nodes have tiny memories, so the filter is the whole
storage story).  To trace a packet, the sink asks its own neighbors "did
you forward this report?" and walks the "yes" answers upstream, querying
each implicated node's neighbors in turn.

What the paper's critique predicts, and this module lets you measure:

* **storage**: the Bloom filter competes with application memory; sizing
  it down raises the false-positive rate, which creates phantom trace
  branches.
* **signaling**: a trace costs ``O(path length x degree)`` query/reply
  messages per traced packet -- radio traffic marking never spends.
* **trust**: queries are answered by the nodes themselves.  A mole simply
  *denies* (:class:`DenyingLogMole`), truncating the trace at its
  downstream neighbor; unlike nested marks, nothing binds an answer to
  the evidence.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.net.topology import Topology
from repro.packets.packet import MarkedPacket
from repro.packets.report import Report
from repro.sim.behaviors import ForwardingBehavior

__all__ = [
    "BloomFilter",
    "PacketLog",
    "LoggingNode",
    "DenyingLogMole",
    "LoggingTracer",
    "TraceResult",
]


class BloomFilter:
    """A classic Bloom filter over byte strings.

    Args:
        size_bits: filter width.  SPIE suggests sizing for the per-epoch
            packet volume; the default fits a few hundred packets at ~1%
            false positives.
        num_hashes: hash functions (derived from one SHA-256 call).
    """

    def __init__(self, size_bits: int = 4096, num_hashes: int = 4):
        if size_bits < 8:
            raise ValueError(f"size_bits must be >= 8, got {size_bits}")
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.size_bits = size_bits
        self.num_hashes = num_hashes
        self._bits = bytearray(size_bits // 8 + (size_bits % 8 > 0))
        self.items_added = 0

    def _positions(self, item: bytes) -> list[int]:
        digest = hashlib.sha256(item).digest()
        positions = []
        for k in range(self.num_hashes):
            chunk = digest[4 * k : 4 * k + 4]
            positions.append(int.from_bytes(chunk, "big") % self.size_bits)
        return positions

    def add(self, item: bytes) -> None:
        """Insert ``item`` into the filter."""
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self.items_added += 1

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item)
        )

    @property
    def storage_bytes(self) -> int:
        """RAM the filter occupies on the node."""
        return len(self._bits)

    def false_positive_rate(self) -> float:
        """Expected FP rate at the current fill level."""
        if self.items_added == 0:
            return 0.0
        exponent = -self.num_hashes * self.items_added / self.size_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes


def report_digest(report: Report) -> bytes:
    """The content identity of a report (marks change hop to hop)."""
    return hashlib.sha256(b"log-digest" + report.encode()).digest()[:8]


class PacketLog:
    """A node's forwarded-packet log."""

    def __init__(self, size_bits: int = 4096, num_hashes: int = 4):
        self._filter = BloomFilter(size_bits=size_bits, num_hashes=num_hashes)

    def record(self, report: Report) -> None:
        """Log that this node forwarded ``report``."""
        self._filter.add(report_digest(report))

    def has_forwarded(self, report: Report) -> bool:
        """Whether the log (possibly falsely, per Bloom FP) holds the report."""
        return report_digest(report) in self._filter

    @property
    def storage_bytes(self) -> int:
        return self._filter.storage_bytes

    @property
    def packets_logged(self) -> int:
        return self._filter.items_added

    def false_positive_rate(self) -> float:
        """Expected false-positive rate at the current fill level."""
        return self._filter.false_positive_rate()


class LoggingNode:
    """Wraps a forwarding behavior with SPIE-style logging.

    Honest nodes log every report they forward and answer queries
    truthfully.
    """

    def __init__(self, inner: ForwardingBehavior, log: PacketLog | None = None):
        self.inner = inner
        self.log = log if log is not None else PacketLog()

    @property
    def node_id(self) -> int:
        return self.inner.node_id

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Forward via the wrapped behavior, logging what went through."""
        result = self.inner.forward(packet)
        if result is not None:
            self.log.record(packet.report)
        return result

    def answer_query(self, report: Report) -> bool:
        """Truthful reply to "did you forward this report?"."""
        return self.log.has_forwarded(report)


class DenyingLogMole(LoggingNode):
    """A mole that forwards attack traffic but denies having seen it.

    Nothing in the query protocol binds the answer to evidence, so denial
    is free -- the trace dies at the mole and can never reach the source
    upstream of it.
    """

    def answer_query(self, report: Report) -> bool:
        return False


@dataclass
class TraceResult:
    """Outcome of one logging trace.

    Attributes:
        chains: maximal upstream chains of "yes" answers, each ordered
            sink-nearest first.
        most_upstream: the farthest implicated node of the longest chain
            (``None`` if nobody admitted forwarding).
        queries_sent: query messages spent (the control-traffic cost).
        replies_received: reply messages spent.
    """

    chains: list[list[int]] = field(default_factory=list)
    most_upstream: int | None = None
    queries_sent: int = 0
    replies_received: int = 0

    @property
    def control_messages(self) -> int:
        return self.queries_sent + self.replies_received


class LoggingTracer:
    """The sink-side recursive query protocol.

    Args:
        topology: the deployment (the sink queries radio neighbors).
        nodes: every node's :class:`LoggingNode` (or mole subclass).
    """

    def __init__(self, topology: Topology, nodes: dict[int, LoggingNode]):
        self.topology = topology
        self.nodes = nodes

    def trace(self, report: Report) -> TraceResult:
        """Walk "yes" answers upstream from the sink.

        Breadth-first from the sink's neighbors; each implicated node's
        unvisited neighbors are queried in turn.  Every query costs one
        message and one reply (replies are sent even for "no" -- silence
        is indistinguishable from loss on a radio).
        """
        result = TraceResult()
        visited: set[int] = {self.topology.sink}
        implicated: dict[int, int | None] = {}  # node -> downstream it extends

        frontier: list[int] = [self.topology.sink]
        while frontier:
            next_frontier: list[int] = []
            for at in frontier:
                for nbr in sorted(self.topology.neighbors(at)):
                    if nbr in visited:
                        continue
                    visited.add(nbr)
                    node = self.nodes.get(nbr)
                    result.queries_sent += 1
                    result.replies_received += 1
                    if node is not None and node.answer_query(report):
                        implicated[nbr] = at if at != self.topology.sink else None
                        next_frontier.append(nbr)
            frontier = next_frontier

        result.chains = self._chains(implicated)
        if result.chains:
            longest = max(result.chains, key=len)
            result.most_upstream = longest[-1]
        return result

    @staticmethod
    def _chains(implicated: dict[int, int | None]) -> list[list[int]]:
        """Reconstruct maximal chains from the downstream-pointer map."""
        children: dict[int | None, list[int]] = {}
        for node, downstream in implicated.items():
            children.setdefault(downstream, []).append(node)

        chains: list[list[int]] = []

        def walk(node: int, prefix: list[int]) -> None:
            path = prefix + [node]
            nexts = sorted(children.get(node, ()))
            if not nexts:
                chains.append(path)
                return
            for nxt in nexts:
                walk(nxt, path)

        for root in sorted(children.get(None, ())):
            walk(root, [])
        return chains
