"""Edge-sampling probabilistic packet marking (Savage et al., ref. [8]).

The original IP-traceback PPM, faithfully single-slot: every packet carries
exactly one ``(start, end, distance)`` edge field.  Each forwarder flips a
coin with probability ``p``:

* heads -- it *overwrites* the slot with ``start = itself``, ``end``
  empty, ``distance = 0``;
* tails -- if ``distance == 0`` it writes itself into ``end`` (completing
  the edge its upstream neighbor started), and either way increments
  ``distance``.

Over many packets the sink collects edges at every distance; since a
packet marked by a node ``d`` hops out arrives with ``distance = d``, the
edges sort into a path.  The scheme is beautiful for the Internet -- fixed
per-packet overhead, no keys -- and exactly as fragile as Section 3
predicts in a sensor network: the slot is unauthenticated *mutable* state,
so a forwarding mole can overwrite it every packet with a fabricated edge,
placing any victim at any distance.  :class:`EdgeForgingMole` does just
that.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, replace

from repro.packets.packet import MarkedPacket
from repro.sim.behaviors import ForwardingBehavior

__all__ = [
    "EdgeSample",
    "EdgeSamplingForwarder",
    "EdgeForgingMole",
    "EdgeSamplingSink",
    "EDGE_SLOT_BYTES",
]

#: Wire cost of the single marking slot: start (2) + end (2) + distance (1).
EDGE_SLOT_BYTES = 5

#: Sentinel for an empty start/end field.
EMPTY = -1


@dataclass(frozen=True)
class EdgeSample:
    """The packet's single marking slot.

    Attributes:
        start: node that began the edge (``EMPTY`` if never marked).
        end: node that completed the edge (``EMPTY`` while dangling).
        distance: hops travelled since ``start`` marked.
    """

    start: int = EMPTY
    end: int = EMPTY
    distance: int = 0

    @property
    def is_empty(self) -> bool:
        """Whether no forwarder has marked the slot yet."""
        return self.start == EMPTY

    @property
    def is_complete(self) -> bool:
        """Whether both endpoints of the edge are filled in."""
        return self.start != EMPTY and self.end != EMPTY


class EdgeSamplingForwarder:
    """An honest forwarder running the edge-sampling algorithm.

    The slot rides out of band of the mark list (``slots`` keyed by packet
    identity on the shared channel object) to keep the existing packet
    type untouched; byte accounting uses :data:`EDGE_SLOT_BYTES`.

    Args:
        inner: wrapped behavior (typically a no-marking honest forwarder).
        channel: shared slot store, one per simulation.
        mark_prob: the sampling probability ``p``.
        rng: the node's random stream.
    """

    def __init__(
        self,
        inner: ForwardingBehavior,
        channel: "EdgeSamplingSink",
        mark_prob: float,
        rng: random.Random,
    ):
        if not 0.0 < mark_prob <= 1.0:
            raise ValueError(f"mark_prob must be in (0, 1], got {mark_prob}")
        self.inner = inner
        self.channel = channel
        self.mark_prob = mark_prob
        self.rng = rng

    @property
    def node_id(self) -> int:
        return self.inner.node_id

    def _update_slot(self, slot: EdgeSample) -> EdgeSample:
        if self.rng.random() < self.mark_prob:
            return EdgeSample(start=self.node_id, end=EMPTY, distance=0)
        if slot.is_empty:
            return slot
        if slot.distance == 0:
            return EdgeSample(
                start=slot.start, end=self.node_id, distance=1
            )
        return replace(slot, distance=slot.distance + 1)

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Apply the edge-sampling coin to the packet's slot, then forward."""
        result = self.inner.forward(packet)
        if result is None:
            return None
        self.channel.update_slot(packet, self._update_slot)
        return result


class EdgeForgingMole(EdgeSamplingForwarder):
    """A mole that overwrites the slot with a fabricated distant edge.

    Every packet leaves the mole claiming it was marked by
    ``fake_start -> fake_end`` at ``fake_distance`` hops upstream --
    nothing authenticates the slot, so the sink's reconstruction roots the
    path at the victim.
    """

    def __init__(
        self,
        *args,
        fake_start: int,
        fake_end: int,
        fake_distance: int,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.fake_start = fake_start
        self.fake_end = fake_end
        self.fake_distance = fake_distance

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Forward while planting the forged edge into the slot."""
        result = self.inner.forward(packet)
        if result is None:
            return None
        self.channel.update_slot(
            packet,
            lambda _slot: EdgeSample(
                start=self.fake_start,
                end=self.fake_end,
                distance=self.fake_distance,
            ),
        )
        return result


class EdgeSamplingSink:
    """Carries per-packet slots in flight and reconstructs the path.

    Doubles as the "channel" (slot storage keyed by packet object
    identity; single-threaded simulations hand each packet through
    unchanged) and as the collector.
    """

    def __init__(self) -> None:
        self._slots: dict[int, EdgeSample] = {}
        self.collected: list[EdgeSample] = []
        self.bytes_overhead = 0

    def update_slot(self, packet: MarkedPacket, fn) -> None:
        """Apply a forwarder's slot transition for ``packet``."""
        key = id(packet.report)
        self._slots[key] = fn(self._slots.get(key, EdgeSample()))

    def deliver(self, packet: MarkedPacket) -> EdgeSample:
        """Take delivery of a packet: collect and clear its slot."""
        key = id(packet.report)
        slot = self._slots.pop(key, EdgeSample())
        self.collected.append(slot)
        self.bytes_overhead += EDGE_SLOT_BYTES
        return slot

    def reconstruct_path(self, min_support: int = 2) -> list[int]:
        """Order collected edges by distance into a sink-rooted path.

        For each distance level, the most frequently sampled ``start``
        node (with at least ``min_support`` sightings) is taken as the
        path node at that depth; reconstruction stops at the first level
        with no supported candidate.  Returns nodes nearest-first.
        """
        by_distance: dict[int, Counter[int]] = {}
        for slot in self.collected:
            if slot.is_empty:
                continue
            by_distance.setdefault(slot.distance, Counter())[slot.start] += 1
        path: list[int] = []
        for distance in range(0, max(by_distance, default=-1) + 1):
            counts = by_distance.get(distance)
            if not counts:
                break
            node, support = counts.most_common(1)[0]
            if support < min_support:
                break
            path.append(node)
        return path

    def apparent_origin(self, min_support: int = 2) -> int | None:
        """The deepest supported path node: who the sink would blame."""
        path = self.reconstruct_path(min_support=min_support)
        return path[-1] if path else None
