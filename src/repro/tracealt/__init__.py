"""Alternative traceback approaches (Section 8 related work).

Besides packet marking, two traceback families exist; the paper argues
against both for sensor networks, and this package implements them so the
argument can be measured rather than asserted:

* :mod:`repro.tracealt.logging` -- **logging** (hash-based IP traceback /
  SPIE [Snoeren et al.]): every node stores digests of recently forwarded
  packets in a Bloom filter; the sink reconstructs a packet's path by
  recursively querying neighbors "did you forward this?".  Costs per-node
  storage plus a query/reply control protocol that moles can subvert by
  lying.
* :mod:`repro.tracealt.notification` -- **notification** (ICMP traceback
  [Bellovin]): each forwarder probabilistically sends the sink a separate
  message naming itself and its previous hop for a packet.  Costs extra
  messages; unauthenticated notifications are trivially forgeable by
  moles, and even authenticated ones can be withheld.
* :mod:`repro.tracealt.edge_sampling` -- the original Savage et al.
  **edge-sampling PPM** with its single overwritable mark slot: elegant on
  the Internet, trivially forged by a forwarding mole in a sensor network.

The comparison experiment (:mod:`repro.experiments.approaches`) tabulates
per-packet bytes, per-node storage, control messages, and colluding-mole
outcomes for all four approaches.
"""

from repro.tracealt.edge_sampling import (
    EdgeForgingMole,
    EdgeSample,
    EdgeSamplingForwarder,
    EdgeSamplingSink,
)
from repro.tracealt.logging import (
    BloomFilter,
    DenyingLogMole,
    LoggingNode,
    LoggingTracer,
    PacketLog,
)
from repro.tracealt.notification import (
    ForgingNotificationMole,
    Notification,
    NotificationSink,
    NotifyingForwarder,
    SilentNotificationMole,
)

__all__ = [
    "EdgeSample",
    "EdgeSamplingForwarder",
    "EdgeForgingMole",
    "EdgeSamplingSink",
    "BloomFilter",
    "PacketLog",
    "LoggingNode",
    "DenyingLogMole",
    "LoggingTracer",
    "Notification",
    "NotifyingForwarder",
    "SilentNotificationMole",
    "ForgingNotificationMole",
    "NotificationSink",
]
