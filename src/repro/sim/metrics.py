"""Simulation metrics: traffic, bytes, and a simple energy proxy.

False data injection "wastes energy and bandwidth resources along the
forwarding path" (Section 1); the examples quantify that waste and the
savings from catching the mole.  Radio transmission dominates sensor energy
budgets, so the energy proxy here is linear in transmitted bytes plus a
fixed per-packet cost -- standard first-order mote modelling.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MetricsCollector", "EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """First-order radio energy model.

    Attributes:
        joules_per_byte: marginal cost per transmitted byte.
        joules_per_packet: fixed per-transmission overhead (preamble,
            radio wakeup).
    """

    joules_per_byte: float = 1.6e-6
    joules_per_packet: float = 2.4e-5

    def transmission_cost(self, packet_len: int) -> float:
        """Joules to transmit one packet of ``packet_len`` bytes."""
        if packet_len < 0:
            raise ValueError(f"packet_len must be >= 0, got {packet_len}")
        return self.joules_per_packet + self.joules_per_byte * packet_len


@dataclass
class MetricsCollector:
    """Accumulates per-node and network-wide counters during a run."""

    energy_model: EnergyModel = field(default_factory=EnergyModel)
    packets_injected: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    packets_lost: int = 0
    packets_faulted: int = 0
    transmissions: Counter = field(default_factory=Counter)
    bytes_transmitted: Counter = field(default_factory=Counter)
    delivery_delays: list[float] = field(default_factory=list)

    def record_injection(self) -> None:
        """A source generated one packet."""
        self.packets_injected += 1

    def record_transmission(self, node_id: int, packet_len: int) -> None:
        """``node_id`` pushed ``packet_len`` bytes onto the radio."""
        self.transmissions[node_id] += 1
        self.bytes_transmitted[node_id] += packet_len

    def record_delivery(self, delay: float) -> None:
        """A packet reached the sink after ``delay`` seconds in flight."""
        self.packets_delivered += 1
        self.delivery_delays.append(delay)

    def record_drop(self) -> None:
        """A node (honest filter or mole) intentionally dropped a packet."""
        self.packets_dropped += 1

    def record_loss(self) -> None:
        """The radio link lost a transmission."""
        self.packets_lost += 1

    def record_fault(self) -> None:
        """A packet died to an injected fault (dead node, no route left)."""
        self.packets_faulted += 1

    def delivery_ratio(self) -> float:
        """Delivered / injected packets (1.0 when nothing was injected)."""
        if not self.packets_injected:
            return 1.0
        return self.packets_delivered / self.packets_injected

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_transmitted.values())

    @property
    def total_transmissions(self) -> int:
        return sum(self.transmissions.values())

    def energy_spent(self, node_id: int | None = None) -> float:
        """Total radio energy in joules, network-wide or for one node."""
        if node_id is not None:
            return (
                self.energy_model.joules_per_packet * self.transmissions[node_id]
                + self.energy_model.joules_per_byte
                * self.bytes_transmitted[node_id]
            )
        return (
            self.energy_model.joules_per_packet * self.total_transmissions
            + self.energy_model.joules_per_byte * self.total_bytes
        )

    def mean_delivery_delay(self) -> float:
        """Average source-to-sink latency over delivered packets."""
        if not self.delivery_delays:
            return 0.0
        return sum(self.delivery_delays) / len(self.delivery_delays)

    def summary(self) -> dict[str, float]:
        """A flat dict of headline numbers for printing/logging."""
        return {
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "packets_lost": self.packets_lost,
            "packets_faulted": self.packets_faulted,
            "total_transmissions": self.total_transmissions,
            "total_bytes": self.total_bytes,
            "delivery_ratio": self.delivery_ratio(),
            "energy_joules": self.energy_spent(),
            "mean_delivery_delay_s": self.mean_delivery_delay(),
        }

    def publish(self, obs: Any) -> None:
        """Mirror the headline counters into an obs provider's registry.

        Called once at the end of a run (per-event mirroring would double
        the hot path for no benefit); gauges are used because a fresh
        publish must overwrite, not accumulate.
        """
        for name, value in sorted(self.summary().items()):
            obs.set_gauge(f"sim_{name}", value)
