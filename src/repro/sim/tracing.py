"""Structured simulation tracing: per-packet journey logs.

Debugging a traceback failure usually means asking "what happened to
packet 37 between V4 and the sink?"  A :class:`PacketTracer` attached to a
:class:`~repro.sim.network.NetworkSimulation` records every lifecycle
event with its virtual timestamp, and can reconstruct any packet's journey
or summarize drop locations.

Packets are tracked by the digest of their report (the content identity
that survives marking).  When given a span :class:`~repro.obs.Tracer`,
the tracer doubles as the simulation side of cross-layer tracing: every
lifecycle event also becomes a chained span keyed by the same digest, so
the ingest service and sink can continue the packet's trace without ever
touching simulator state.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from repro.obs.spans import Tracer, report_key as _packet_key
from repro.packets.report import Report

__all__ = ["TraceEvent", "PacketTracer"]

#: Event kinds emitted by the simulator.  ``fault`` marks a packet that
#: died to an injected failure (dead node, no surviving route) rather
#: than to filtering or mole activity; ``repair`` marks the packet whose
#: retries triggered a route repair at that node.  ``overhear`` and
#: ``flag`` come from the watchdog layer (:mod:`repro.watchdog`): a
#: watcher heard a neighbor's transmission, and a watcher caught an
#: inconsistent forwarding, respectively.
EVENT_KINDS = (
    "inject",
    "forward",
    "drop",
    "loss",
    "deliver",
    "fault",
    "repair",
    "overhear",
    "flag",
)


@dataclass(frozen=True)
class TraceEvent:
    """One step of a packet's journey.

    Attributes:
        time: virtual time of the event.
        kind: one of ``inject``, ``forward``, ``drop``, ``loss``,
            ``deliver``.
        node: where it happened (the acting node; for ``deliver`` the
            delivering neighbor).
        packet_key: content identity of the packet.
    """

    time: float
    kind: str
    node: int
    packet_key: bytes

    def as_dict(self) -> dict[str, object]:
        """The event as a JSON-ready dict (packet key hex-encoded)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "packet": self.packet_key.hex(),
        }


class PacketTracer:
    """Collects :class:`TraceEvent` records during a simulation run.

    Args:
        max_events: hard cap to bound memory in very long runs; the
            oldest events are NOT evicted -- recording simply stops, and
            :attr:`truncated` is set, because partial journeys are worse
            than a loud flag.
        spans: optional span tracer; when set, every recorded event is
            also emitted as a zero-duration chained span at the packet's
            virtual timestamp, keyed by the packet's report digest.  The
            journey log itself (:meth:`journey`, :meth:`to_json`) is
            unchanged by the bridge.
    """

    def __init__(self, max_events: int = 100_000, spans: Tracer | None = None):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.spans = spans
        self.events: list[TraceEvent] = []
        self.truncated = False

    def record(self, time: float, kind: str, node: int, report: Report) -> None:
        """Append one event (called by the simulator)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        key = _packet_key(report)
        if self.spans is not None:
            self.spans.event(key, kind, time=time, node=node)
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(
            TraceEvent(time=time, kind=kind, node=node, packet_key=key)
        )

    # Queries -----------------------------------------------------------------

    def journey(self, report: Report) -> list[TraceEvent]:
        """Every event for one packet, in time order."""
        key = _packet_key(report)
        return [e for e in self.events if e.packet_key == key]

    def fate(self, report: Report) -> str:
        """How the packet's story ended: last event kind, or ``"unknown"``."""
        events = self.journey(report)
        return events[-1].kind if events else "unknown"

    def _locations(self, kind: str) -> dict[int, int]:
        """Node -> events of ``kind`` there, ascending node order.

        Deterministic sorted order on purpose: these summaries feed merge
        and attribution logic, which must not depend on event insertion
        order (the RL004 determinism contract).
        """
        counter = Counter(e.node for e in self.events if e.kind == kind)
        return {node: counter[node] for node in sorted(counter)}

    def drop_locations(self) -> dict[int, int]:
        """Node -> intentional drops there (filtering or mole activity)."""
        return self._locations("drop")

    def loss_locations(self) -> dict[int, int]:
        """Node -> radio losses on that node's transmissions."""
        return self._locations("loss")

    def fault_locations(self) -> dict[int, int]:
        """Node -> packets that died there to an injected failure."""
        return self._locations("fault")

    def repair_locations(self) -> dict[int, int]:
        """Node -> route repairs triggered by that node's retries."""
        return self._locations("repair")

    def counts(self) -> dict[str, int]:
        """Events per kind."""
        counter = Counter(e.kind for e in self.events)
        return {kind: counter.get(kind, 0) for kind in EVENT_KINDS}

    def format_journey(self, report: Report) -> str:
        """A human-readable one-packet trace."""
        events = self.journey(report)
        if not events:
            return "(no events recorded for this packet)"
        lines = [
            f"t={e.time:9.4f} {e.kind:8s} @ node {e.node}" for e in events
        ]
        return "\n".join(lines)

    def to_json(self, indent: int | None = None) -> str:
        """The full trace as JSON: events, per-kind counts, summaries.

        Locations are keyed by node in ascending order and events appear
        in recording (time) order, so equal runs serialize byte-identically.
        """
        payload = {
            "max_events": self.max_events,
            "truncated": self.truncated,
            "counts": self.counts(),
            "drop_locations": self.drop_locations(),
            "loss_locations": self.loss_locations(),
            "fault_locations": self.fault_locations(),
            "repair_locations": self.repair_locations(),
            "events": [e.as_dict() for e in self.events],
        }
        return json.dumps(payload, indent=indent)

    def __len__(self) -> int:
        return len(self.events)
