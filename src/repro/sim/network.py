"""Discrete-event simulation of a full sensor deployment.

Wires together a topology, a routing table, per-node forwarding behaviors,
a link model and one or more report sources, delivering surviving packets
to a :class:`~repro.traceback.sink.TracebackSink`.  Used by the examples
and integration tests; the paper's figure experiments use the faster
:class:`~repro.sim.pipeline.PathPipeline` since they only vary path length.

Beyond the paper's static-network assumption, the simulation supports
*benign dynamics* for the fault subsystem (:mod:`repro.faults`): nodes can
be failed and restored mid-run (:meth:`NetworkSimulation.fail_node`),
individual links can carry degraded models
(:class:`~repro.net.links.LinkTable` overrides), and a sender whose next
hop stopped responding retries with bounded backoff before declaring the
hop dead and asking the routing layer for a repair
(:class:`~repro.routing.repair.RepairingRoutingTable`).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping

from repro.net.links import LinkModel, LinkTable
from repro.net.topology import Topology
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.packets.packet import MarkedPacket
from repro.routing.base import RoutingError, RoutingTable
from repro.routing.repair import RepairPolicy
from repro.sim.behaviors import ForwardingBehavior
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.sources import ReportSource
from repro.sim.tracing import PacketTracer
from repro.traceback.sink import TracebackSink

__all__ = ["NetworkSimulation"]


class NetworkSimulation:
    """Event-driven packet forwarding over a deployment.

    Args:
        topology: the deployment graph.
        routing: next-hop table toward the sink.  A
            :class:`~repro.routing.repair.RepairingRoutingTable` enables
            route repair when a next hop is declared dead.
        behaviors: forwarding behavior for every non-sink node that may
            carry traffic (honest forwarders and moles alike).
        sink: the traceback sink.
        link: per-hop delay/loss model -- either one
            :class:`~repro.net.links.LinkModel` for every hop (the
            backward-compatible path) or a
            :class:`~repro.net.links.LinkTable` with per-edge overrides.
        rng: drives link losses and source jitter.
        metrics: optional shared metrics collector.
        suspicious: predicate choosing which delivered packets are fed to
            traceback (Section 7, "Background Traffic"); default: all.
        tracer: optional :class:`~repro.sim.tracing.PacketTracer` that
            records every packet lifecycle event for debugging.
        ingest: optional ingest pipeline (anything with
            ``submit(packet, delivering_node)``, e.g.
            :class:`repro.service.SinkIngestService`).  When set,
            suspicious deliveries are submitted there instead of calling
            ``sink.receive`` inline, and :meth:`run` flushes the pipeline
            after the event queue drains so the sink's verdict reflects
            every delivered packet.
        repair: retry/backoff policy for dead-next-hop detection; the
            default :class:`~repro.routing.repair.RepairPolicy` applies.
        obs: observability provider; ``None`` resolves to the process
            default.  :meth:`run` publishes the run's metrics summary into
            its registry once the event queue drains; per-packet spans
            come through the ``tracer``'s span bridge
            (:class:`~repro.sim.tracing.PacketTracer`).
        watchdog: optional overhearing layer
            (:class:`repro.watchdog.WatchdogLayer`).  When set, every
            radio transmission is offered to it for overhearing, and
            :meth:`run` finalizes it (expiring pending observations and
            draining accusation relays) after the data traffic drains.
            The layer draws from its own RNG, so enabling it never
            perturbs the data-plane trajectory.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingTable,
        behaviors: Mapping[int, ForwardingBehavior],
        sink: TracebackSink,
        link: LinkModel | LinkTable | None = None,
        rng: random.Random | None = None,
        metrics: MetricsCollector | None = None,
        suspicious: Callable[[MarkedPacket], bool] | None = None,
        tracer: PacketTracer | None = None,
        ingest: object | None = None,
        repair: RepairPolicy | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
        watchdog: object | None = None,
    ):
        self.topology = topology
        self.routing = routing
        self.behaviors = dict(behaviors)
        self.sink = sink
        if isinstance(link, LinkTable):
            self.links = link
        else:
            self.links = LinkTable(default=link)
        self.rng = rng if rng is not None else random.Random(0)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.suspicious = suspicious if suspicious is not None else (lambda _: True)
        self.tracer = tracer
        self.ingest = ingest
        self.obs = resolve_provider(obs)
        self.repair_policy = repair if repair is not None else RepairPolicy()
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.attach(self)
        # Direct reference to the layer's (attach-specialized) tap: the
        # transmit path calls it once per radio frame, so skip the
        # two-step attribute chain there.
        self._watchdog_tap = (
            watchdog.on_transmission if watchdog is not None else None
        )
        self.sim = Simulator()
        self.delivered: list[MarkedPacket] = []
        self._quarantined: set[int] = set()
        self._down: set[int] = set()
        #: Callbacks fired after every radio transmission with
        #: ``(node_id, packet_len)`` -- the fault injector's energy
        #: bookkeeping hook.
        self.transmission_listeners: list[Callable[[int, int], None]] = []

    @property
    def link(self) -> LinkModel:
        """The default link model (backward-compatible accessor)."""
        return self.links.default

    # Isolation ---------------------------------------------------------------

    def quarantine(self, node_ids: set[int]) -> None:
        """Stop accepting transmissions from ``node_ids``.

        Models the paper's fight-back step: neighbors are notified not to
        forward traffic from identified moles (Section 2.2).  Quarantined
        nodes' transmissions are dropped by their neighbors, cutting the
        attack traffic off at its first hop.
        """
        self._quarantined |= set(node_ids)

    @property
    def quarantined(self) -> frozenset[int]:
        return frozenset(self._quarantined)

    # Liveness ----------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Take ``node_id`` down (crash or energy depletion).

        A down node neither injects, forwards, nor receives; packets in
        flight toward it die on arrival, and senders detect the silence
        through the retry/backoff policy.

        Raises:
            ValueError: if the sink is targeted -- the sink is trusted
                and assumed always up (Section 2.2).
        """
        if node_id == self.topology.sink:
            raise ValueError("the sink cannot fail")
        self._down.add(node_id)

    def restore_node(self, node_id: int) -> None:
        """Bring a previously failed node back up."""
        self._down.discard(node_id)

    def node_is_down(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently failed."""
        return node_id in self._down

    @property
    def down_nodes(self) -> frozenset[int]:
        """All currently failed nodes."""
        return frozenset(self._down)

    # Traffic scheduling ------------------------------------------------------

    def add_periodic_source(
        self,
        source: ReportSource,
        interval: float,
        count: int,
        start: float = 0.0,
        jitter: float = 0.0,
    ) -> None:
        """Schedule ``count`` injections from ``source`` every ``interval``.

        Args:
            source: the injecting node's report generator.
            interval: seconds between consecutive reports.
            count: total reports to inject.
            start: virtual time of the first injection.
            jitter: uniform +/- jitter applied to each interval.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")

        def inject(remaining: int) -> None:
            self._inject(source)
            if remaining > 1:
                delay = interval
                if jitter:
                    delay = max(1e-9, interval + self.rng.uniform(-jitter, jitter))
                self.sim.schedule(delay, lambda: inject(remaining - 1))

        if count > 0:
            self.sim.schedule_at(start, lambda: inject(count))

    def _inject(self, source: ReportSource) -> None:
        if source.node_id in self._down:
            # A crashed sensor generates nothing; the injection slot is
            # simply skipped (no energy spent, no trace event).
            return
        packet = source.next_packet(timestamp=int(self.sim.now * 1000))
        self.metrics.record_injection()
        self._trace("inject", source.node_id, packet)
        self._transmit(source.node_id, packet, injected_at=self.sim.now)

    def _trace(self, kind: str, node: int, packet: MarkedPacket) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, kind, node, packet.report)

    # Forwarding --------------------------------------------------------------

    def _transmit(
        self,
        from_node: int,
        packet: MarkedPacket,
        injected_at: float,
        attempt: int = 0,
    ) -> None:
        """Send ``packet`` from ``from_node`` toward its next hop.

        ``attempt`` counts retransmissions toward the *current* next hop;
        it resets to zero after a successful route repair.
        """
        if from_node in self._quarantined:
            # Neighbors ignore transmissions from quarantined nodes; the
            # packet dies at this hop without consuming downstream energy.
            self.metrics.record_drop()
            return
        if from_node in self._down:
            # The node crashed while this packet sat in its send queue.
            self.metrics.record_fault()
            self._trace("fault", from_node, packet)
            return
        try:
            next_hop = self.routing.next_hop(from_node)
        except RoutingError:
            # Churn cut this node off from the sink entirely.
            self.metrics.record_fault()
            self._trace("fault", from_node, packet)
            return
        if next_hop != self.topology.sink and next_hop in self._down:
            self._retry_or_repair(from_node, next_hop, packet, injected_at, attempt)
            return
        self.metrics.record_transmission(from_node, packet.wire_len)
        self._notify_transmission(from_node, packet.wire_len)
        tap = self._watchdog_tap
        if tap is not None:
            # The frame is on the air: neighbors may overhear it whether
            # or not the directed link delivers it.
            tap(self.sim.now, from_node, next_hop, packet)
        model = self.links.model_for(from_node, next_hop)
        if not model.is_delivered(self.rng):
            self.metrics.record_loss()
            self._trace("loss", from_node, packet)
            return
        delay = model.transmission_delay(packet.wire_len)
        self.sim.schedule(
            delay,
            lambda: self._arrive(next_hop, from_node, packet, injected_at),
        )

    def _retry_or_repair(
        self,
        from_node: int,
        next_hop: int,
        packet: MarkedPacket,
        injected_at: float,
        attempt: int,
    ) -> None:
        """Handle an unresponsive next hop: backoff retries, then repair."""
        if attempt < self.repair_policy.max_retries:
            # The failed attempt still cost a transmission (no ack came
            # back); retry after backoff in case the hop recovers.
            self.metrics.record_transmission(from_node, packet.wire_len)
            self._notify_transmission(from_node, packet.wire_len)
            tap = self._watchdog_tap
            if tap is not None:
                tap(self.sim.now, from_node, next_hop, packet)
            self.sim.schedule(
                self.repair_policy.backoff_delay(attempt),
                lambda: self._transmit(
                    from_node, packet, injected_at, attempt=attempt + 1
                ),
            )
            return
        mark_dead = getattr(self.routing, "mark_dead", None)
        if mark_dead is not None:
            mark_dead(next_hop)
            self._trace("repair", from_node, packet)
            # Re-enter with a fresh attempt budget; if the repaired route
            # starts with another dead hop the cycle repeats, and it
            # terminates because every repair removes one distinct node.
            self._transmit(from_node, packet, injected_at, attempt=0)
            return
        # Static routing cannot recover: the packet dies to the fault.
        self.metrics.record_fault()
        self._trace("fault", from_node, packet)

    def _notify_transmission(self, node_id: int, packet_len: int) -> None:
        for listener in self.transmission_listeners:
            listener(node_id, packet_len)

    def _arrive(
        self,
        node: int,
        from_node: int,
        packet: MarkedPacket,
        injected_at: float,
    ) -> None:
        if node == self.topology.sink:
            self._deliver(packet, delivering_node=from_node, injected_at=injected_at)
            return
        if node in self._down:
            # The receiver crashed while the packet was in flight.
            self.metrics.record_fault()
            self._trace("fault", node, packet)
            return
        behavior = self.behaviors.get(node)
        if behavior is None:
            raise KeyError(
                f"node {node} is on a forwarding path but has no behavior"
            )
        forwarded = behavior.forward(packet)
        if forwarded is None:
            self.metrics.record_drop()
            self._trace("drop", node, packet)
            return
        self._trace("forward", node, forwarded)
        self._transmit(node, forwarded, injected_at)

    def _deliver(
        self, packet: MarkedPacket, delivering_node: int, injected_at: float
    ) -> None:
        self.metrics.record_delivery(delay=self.sim.now - injected_at)
        self._trace("deliver", delivering_node, packet)
        self.delivered.append(packet)
        if self.suspicious(packet):
            if self.ingest is not None:
                self.ingest.submit(packet, delivering_node)
            else:
                self.sink.receive(packet, delivering_node)

    # Execution ---------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain scheduled traffic (see :meth:`Simulator.run`).

        When an ingest pipeline is attached, it is flushed afterwards so
        every delivered packet has reached the sink.
        """
        self.sim.run(until=until, max_events=max_events)
        if self.watchdog is not None:
            # Expiring pending observations may emit final accusations
            # whose relays need one more drain of the event queue.
            self.watchdog.finalize(self.sim.now)
            self.sim.run(max_events=max_events)
        if self.ingest is not None:
            flush = getattr(self.ingest, "flush", None)
            if flush is not None:
                flush()
        if self.obs.enabled:
            self.metrics.publish(self.obs)

    def __repr__(self) -> str:
        return (
            f"NetworkSimulation({self.topology!r}, now={self.sim.now:.3f}, "
            f"delivered={len(self.delivered)})"
        )
