"""Forwarding behaviors: what a node does with a packet in transit.

Every node on a forwarding path -- honest or mole -- is modelled as a
:class:`ForwardingBehavior`: a function from the received packet to the
packet it sends on (or ``None`` to drop).  Honest nodes run the deployed
marking scheme plus optional duplicate suppression; moles
(:mod:`repro.adversary`) substitute arbitrary manipulations.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.packet import MarkedPacket

__all__ = ["ForwardingBehavior", "HonestForwarder"]


@runtime_checkable
class ForwardingBehavior(Protocol):
    """A node's packet-handling function.

    Attributes:
        node_id: the node this behavior runs on.
    """

    node_id: int

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Process a received packet.

        Returns:
            The packet to transmit to the next hop, or ``None`` to drop it.
        """
        ...


class HonestForwarder:
    """A legitimate node: apply the marking scheme, forward everything.

    Args:
        ctx: the node's identity and key material.
        scheme: the deployed marking scheme.
        suppressor: optional duplicate suppressor
            (:class:`repro.filtering.DuplicateSuppressor`); duplicates are
            dropped before marking, which is the paper's first line of
            defense against replay attacks (Section 7).
    """

    def __init__(
        self,
        ctx: NodeContext,
        scheme: MarkingScheme,
        suppressor: object | None = None,
    ):
        self.ctx = ctx
        self.scheme = scheme
        self.suppressor = suppressor

    @property
    def node_id(self) -> int:
        return self.ctx.node_id

    def forward(self, packet: MarkedPacket) -> MarkedPacket | None:
        """Suppress duplicates, then apply the marking scheme."""
        if self.suppressor is not None and self.suppressor.is_duplicate(
            packet.report
        ):
            return None
        return self.scheme.on_forward(self.ctx, packet)

    def __repr__(self) -> str:
        return f"HonestForwarder(node={self.node_id}, scheme={self.scheme.name})"
