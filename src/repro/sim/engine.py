"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, action)`` triples in a binary heap; the
sequence number makes simultaneous events fire in scheduling order, so runs
are fully deterministic given deterministic actions.  Actions are plain
callables; cancellation is handled by tombstoning the event handle.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Simulator", "EventHandle"]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Single-threaded event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` at ``now + delay``.

        Raises:
            ValueError: if ``delay`` is negative (time travels forward only).
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, clock is already at {self.now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._queue)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action()
            self.events_processed += 1
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain the queue.

        Args:
            until: stop once the clock would pass this time (events at
                exactly ``until`` still fire).
            max_events: safety valve against runaway event cascades.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
            fired += 1
        if until is not None:
            self.now = max(self.now, until)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now:.6f}, pending={self.pending()})"
