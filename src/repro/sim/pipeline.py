"""Synchronous path pipeline: the paper's evaluation harness.

The paper's experiments are parameterized purely by the forwarding path --
``n`` intermediate nodes between a source and the sink -- so most runs do
not need a full event-driven network.  :class:`PathPipeline` pushes each
packet through an ordered list of forwarding behaviors and hands survivors
to the sink, recording bytes/transmission metrics along the way.

Behaviors are the same objects the discrete-event simulator uses, so moles
and marking schemes behave identically in both execution models.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.packets.packet import MarkedPacket
from repro.sim.behaviors import ForwardingBehavior
from repro.sim.metrics import MetricsCollector
from repro.sim.sources import ReportSource
from repro.sim.tracing import PacketTracer
from repro.traceback.sink import TracebackSink
from repro.traceback.verify import PacketVerification

__all__ = ["PathPipeline"]


class PathPipeline:
    """Pushes packets along a fixed forwarding path into a traceback sink.

    Args:
        source: the injecting node (mole or honest).
        forwarders: behaviors in path order -- ``V_1`` (the source's next
            hop) first, the sink's neighbor ``V_n`` last.
        sink: the traceback sink receiving surviving packets.
        metrics: optional traffic/energy accounting.
        tracer: optional packet tracer; each push records the packet's
            inject/forward/drop/deliver lifecycle (and, when the tracer
            carries a span bridge, emits the matching spans).
        obs: observability provider; ``None`` resolves to the process
            default.  :meth:`publish_metrics` mirrors the metrics summary
            into its registry.
    """

    def __init__(
        self,
        source: ReportSource,
        forwarders: Sequence[ForwardingBehavior],
        sink: TracebackSink,
        metrics: MetricsCollector | None = None,
        tracer: PacketTracer | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        if not forwarders:
            raise ValueError("a forwarding path needs at least one forwarder")
        self.source = source
        self.forwarders = list(forwarders)
        self.sink = sink
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.tracer = tracer
        self.obs = resolve_provider(obs)
        self._clock = 0

    @property
    def path_ids(self) -> list[int]:
        """Node IDs along the path, source first, sink's neighbor last."""
        return [self.source.node_id] + [b.node_id for b in self.forwarders]

    def push(self) -> PacketVerification | None:
        """Inject one packet and run it down the path.

        Returns:
            The sink's verification of the packet, or ``None`` if some
            behavior dropped it en route.
        """
        self._clock += 1
        packet = self.source.next_packet(timestamp=self._clock)
        self.metrics.record_injection()
        self.metrics.record_transmission(self.source.node_id, packet.wire_len)
        self._trace("inject", self.source.node_id, packet)

        for behavior in self.forwarders:
            forwarded = behavior.forward(packet)
            if forwarded is None:
                self.metrics.record_drop()
                self._trace("drop", behavior.node_id, packet)
                return None
            packet = forwarded
            self.metrics.record_transmission(behavior.node_id, packet.wire_len)
            self._trace("forward", behavior.node_id, packet)

        delivering_node = self.forwarders[-1].node_id
        self._trace("deliver", delivering_node, packet)
        verification = self.sink.receive(packet, delivering_node)
        self.metrics.record_delivery(delay=0.0)
        return verification

    def _trace(self, kind: str, node: int, packet: MarkedPacket) -> None:
        if self.tracer is not None:
            self.tracer.record(float(self._clock), kind, node, packet.report)

    def publish_metrics(self) -> None:
        """Mirror the run's metrics summary into the obs registry."""
        if self.obs.enabled:
            self.metrics.publish(self.obs)

    def push_many(self, count: int) -> list[PacketVerification]:
        """Inject ``count`` packets; returns verifications of survivors."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        results = []
        for _ in range(count):
            verification = self.push()
            if verification is not None:
                results.append(verification)
        return results

    def run_until_identified(
        self, max_packets: int, stable_window: int = 30
    ) -> tuple[int | None, int | None]:
        """Inject until the sink's verdict identifies a *stable* suspect.

        Early evidence can transiently single out the wrong node (the first
        few marks always have a unique most-upstream marker), so the online
        stopping rule demands the same suspect center for ``stable_window``
        consecutive packets before declaring identification -- the sink's
        practical analogue of the paper's offline "unequivocally
        identified" criterion.

        Returns:
            ``(packets_injected, suspect_center)``; the count is ``None``
            when the budget ran out before a stable identification.
        """
        if stable_window < 1:
            raise ValueError(f"stable_window must be >= 1, got {stable_window}")
        stable_center: int | None = None
        stable_since: int | None = None
        for injected in range(1, max_packets + 1):
            self.push()
            verdict = self.sink.verdict()
            center = verdict.suspect.center if verdict.identified else None
            if center is None or center != stable_center:
                stable_center = center
                stable_since = injected if center is not None else None
            if (
                stable_center is not None
                and stable_since is not None
                and injected - stable_since + 1 >= stable_window
            ):
                return injected, stable_center
        return None, stable_center
