"""Simulation substrate.

Two execution models, sharing the same node behaviors and marking schemes:

* :mod:`repro.sim.pipeline` -- a fast synchronous pipeline that pushes each
  packet hop by hop along an explicit forwarding path.  This is what the
  paper's evaluation needs (its experiments are parameterized purely by
  path length and marking probability) and what the security-matrix and
  figure experiments use.
* :mod:`repro.sim.network` -- a discrete-event simulation of a whole
  deployment with per-hop delays and losses, used by the examples and the
  integration tests to exercise PNM end to end on 2-D topologies.
"""

from repro.sim.behaviors import ForwardingBehavior, HonestForwarder
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkSimulation
from repro.sim.pipeline import PathPipeline
from repro.sim.sources import BogusReportSource, HonestReportSource, ReportSource
from repro.sim.tracing import PacketTracer, TraceEvent

__all__ = [
    "Simulator",
    "ForwardingBehavior",
    "HonestForwarder",
    "PathPipeline",
    "NetworkSimulation",
    "MetricsCollector",
    "ReportSource",
    "HonestReportSource",
    "BogusReportSource",
    "PacketTracer",
    "TraceEvent",
]
