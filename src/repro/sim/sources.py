"""Report sources: who injects traffic and what it looks like.

A source produces fully formed :class:`~repro.packets.packet.MarkedPacket`
values ready to hand to its first forwarder.  Honest sensors report real
events; a *source mole* fabricates bogus reports that conform to the
legitimate format but describe events that never happened (Section 2.2).
Bogus reports cannot all be identical -- duplicate suppression would drop
them -- so each one carries fresh event bytes.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable

from repro.packets.packet import MarkedPacket
from repro.packets.report import Report

__all__ = ["ReportSource", "HonestReportSource", "BogusReportSource"]


@runtime_checkable
class ReportSource(Protocol):
    """Produces the packets a node injects into the network.

    Attributes:
        node_id: the injecting node.
    """

    node_id: int

    def next_packet(self, timestamp: int) -> MarkedPacket:
        """Fabricate the next report, stamped with ``timestamp``."""
        ...


class HonestReportSource:
    """A legitimate sensor reporting genuine readings.

    Args:
        node_id: the sensing node.
        location: where its events occur (its own position, typically).
        rng: randomness for the reading payload.
        event_size: payload bytes per report.
    """

    def __init__(
        self,
        node_id: int,
        location: tuple[float, float],
        rng: random.Random,
        event_size: int = 8,
    ):
        if event_size < 1:
            raise ValueError(f"event_size must be >= 1, got {event_size}")
        self.node_id = node_id
        self.location = location
        self._rng = rng
        self._event_size = event_size
        self.reports_generated = 0

    def next_packet(self, timestamp: int) -> MarkedPacket:
        """Produce one genuine reading stamped with ``timestamp``."""
        event = self._rng.randbytes(self._event_size)
        report = Report(event=event, location=self.location, timestamp=timestamp)
        self.reports_generated += 1
        return MarkedPacket(report=report, origin=self.node_id)


class BogusReportSource:
    """A source mole fabricating well-formed but false reports.

    Each report gets unique event bytes (a counter mixed with random
    padding), defeating naive duplicate suppression while remaining
    format-valid, exactly as the threat model requires.

    Args:
        node_id: the compromised node.
        claimed_location: the (false) event location written into reports.
        rng: the mole's randomness.
        event_size: payload bytes per report (>= 8 to fit the counter).
    """

    def __init__(
        self,
        node_id: int,
        claimed_location: tuple[float, float],
        rng: random.Random,
        event_size: int = 8,
    ):
        if event_size < 8:
            raise ValueError(
                f"event_size must be >= 8 to keep reports unique, got {event_size}"
            )
        self.node_id = node_id
        self.claimed_location = claimed_location
        self._rng = rng
        self._event_size = event_size
        self.reports_generated = 0

    def next_packet(self, timestamp: int) -> MarkedPacket:
        """Fabricate one unique bogus report stamped with ``timestamp``."""
        counter = self.reports_generated.to_bytes(8, "big")
        padding = self._rng.randbytes(self._event_size - 8)
        report = Report(
            event=counter + padding,
            location=self.claimed_location,
            timestamp=timestamp,
        )
        self.reports_generated += 1
        return MarkedPacket(report=report, origin=self.node_id)
