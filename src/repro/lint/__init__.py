"""``repro.lint``: AST-based protocol-invariant linter for this repository.

The test suite proves the reproduction *behaves* like the paper; this
package proves the code *stays shaped* like the paper's security argument.
Invariants such as "MAC bytes are compared in constant time" (Section 3's
nested MACs), "anonymous IDs are never logged next to plaintext node IDs
outside the sink's resolver" (Section 4.1/4.2), and "the service layer
holds its locks on every shared-state mutation" (``docs/service.md``'s
determinism contract) are invisible to black-box tests: a timing leak or a
set-iteration nondeterminism passes every functional assertion.  In the
spirit of the algebraic-watchdog line of work, the checker itself must be
mechanical -- so these invariants are enforced by walking the AST.

Shipped rules:

========  ==============================================================
RL001     non-constant-time ``==``/``!=`` comparison of MAC/digest bytes
RL002     ``random`` module in key-material paths (crypto/marking/adversary)
RL003     plaintext node-ID leakage into mark constructors or log calls
RL004     unsorted set/``dict.values()`` iteration in merge/precedence logic
RL005     ``# guarded-by:`` attribute mutated outside its ``with <lock>:``
RL006     wall-clock time in simulation logic that must use the engine clock
========  ==============================================================

Run ``python -m repro.lint src/repro`` (exit code 1 on findings); per-line
suppressions use ``# lint: disable=RL001`` and grandfathered findings live
in a committed baseline file (see :mod:`repro.lint.baseline`).
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import Finding, render_json, render_text
from repro.lint.registry import Rule, all_rules, get_rules
from repro.lint.walker import FileContext, iter_python_files, load_file

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "load_file",
    "render_json",
    "render_text",
]
