"""Committed baseline for grandfathered findings.

A baseline lets the linter gate CI from day one: pre-existing findings are
recorded once (``--write-baseline``) and subtracted from later runs, so
only *new* violations fail the build while the debt stays visible in a
reviewed, committed file.  Entries are matched by ``(module path, rule,
stripped source line)`` -- stable across unrelated line insertions -- and
consumed multiset-style so adding a second identical violation on another
line still fails.

The shipped ``lint-baseline.json`` is empty: every true positive found
while building the linter was fixed instead of grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["Baseline", "BaselineError"]

_VERSION = 1


class BaselineError(Exception):
    """The baseline file exists but cannot be used."""


@dataclass
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Raises:
            BaselineError: on malformed JSON or an unsupported version.
        """
        if not path.exists():
            return cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(document, dict) or document.get("version") != _VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported format "
                f"(expected version {_VERSION})"
            )
        entries: Counter = Counter()
        for raw in document.get("entries", []):
            try:
                key = (raw["path"], raw["rule"], raw["snippet"])
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"baseline {path} has a malformed entry: {raw!r}"
                ) from exc
            entries[key] += int(raw.get("count", 1))
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline that grandfathers exactly ``findings``."""
        return cls(entries=Counter(f.fingerprint() for f in findings))

    def save(self, path: Path) -> None:
        """Write the baseline in its canonical, diff-friendly form."""
        document = {
            "version": _VERSION,
            "entries": [
                {"path": p, "rule": r, "snippet": s, "count": c}
                for (p, r, s), c in sorted(self.entries.items())
            ],
        }
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """The findings not covered by this baseline (multiset subtract)."""
        remaining = Counter(self.entries)
        fresh: list[Finding] = []
        for finding in sorted(findings):
            key = finding.fingerprint()
            if remaining[key] > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        return fresh

    def __len__(self) -> int:
        return sum(self.entries.values())
