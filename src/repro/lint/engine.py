"""The lint engine: walk files, run rules, apply suppressions and baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.walker import ParseError, iter_python_files, load_file

__all__ = ["LintResult", "lint_paths"]


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: violations after suppressions and baseline filtering.
        all_findings: violations after suppressions but before the
            baseline (what ``--write-baseline`` records).
        files_scanned: number of files parsed and checked.
        errors: files that could not be parsed, with the reason.
    """

    findings: list[Finding] = field(default_factory=list)
    all_findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no findings, no parse errors)."""
        return not self.findings and not self.errors


def _display_path(path: Path, cwd: Path) -> str:
    try:
        return path.resolve().relative_to(cwd).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: list[Path],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    Args:
        paths: files or directories to scan.
        rules: rules to run (default: every registered rule).
        baseline: grandfathered findings to subtract (default: none).
    """
    active = rules if rules is not None else all_rules()
    cwd = Path.cwd().resolve()
    result = LintResult()
    seen: set[Path] = set()
    for root in paths:
        for file_path in iter_python_files(root):
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                ctx = load_file(file_path, _display_path(file_path, cwd))
            except ParseError as exc:
                result.errors.append((file_path.as_posix(), str(exc)))
                continue
            result.files_scanned += 1
            for rule in active:
                for finding in rule.check(ctx):
                    if not ctx.is_suppressed(finding.line, finding.rule_id):
                        result.all_findings.append(finding)
    result.all_findings.sort()
    if baseline is not None:
        result.findings = baseline.filter(result.all_findings)
    else:
        result.findings = list(result.all_findings)
    return result
