"""Rule visitors; importing this package registers every shipped rule."""

from repro.lint.rules import crypto, determinism, locking, privacy, wire

__all__ = ["crypto", "determinism", "locking", "privacy", "wire"]
