"""RL001/RL002: cryptographic hygiene rules.

RL001 guards the paper's Section 3 nested-MAC argument: the sink decides
mole-vs-honest by comparing recomputed MACs against received ones, and a
short-circuiting ``==`` leaks how many prefix bytes matched -- enough, over
traffic volumes the service layer is built for, to forge a truncated MAC
byte by byte.  Every comparison of MAC/digest/proof bytes must go through
``hmac.compare_digest`` (wrapped as ``repro.crypto.mac.constant_time_equal``).

RL002 guards key material: anything under ``repro.crypto``, ``repro.marking``
or ``repro.adversary`` that draws randomness must use ``secrets`` or an
*injected* seeded ``random.Random`` (the simulation's reproducibility
contract) -- never the shared module-level ``random`` stream, which is both
non-cryptographic and invisible to experiment seeding.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import identifier_of, identifier_tokens
from repro.lint.walker import FileContext

__all__ = ["ConstantTimeCompareRule", "RandomInKeyMaterialRule"]

#: Identifier word-tokens that mark a value as secret digest material.
_SECRET_TOKENS = {
    "mac", "macs", "hmac", "digest", "digests", "proof", "proofs", "tag", "tags",
}

#: Tokens that mark the identifier as *about* a digest (its length, format,
#: field name...) rather than the digest bytes themselves.
_META_TOKENS = {
    "len", "length", "size", "count", "num", "idx", "index", "offset",
    "fmt", "format", "field", "name", "kind", "type", "policy", "prob",
    "rate", "provider",
}

#: ``random`` module attributes that are legitimate in key-material paths:
#: constructing an injectable seeded generator is the sanctioned pattern.
_ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}

_RL002_SCOPE = (
    "repro/crypto/",
    "repro/marking/",
    "repro/adversary/",
    "repro/faults/",
    "repro/obs/",
    # Covered by repro/obs/ today; pinned so narrowing the parent scope
    # can never silently drop the federation/SLO layer.
    "repro/obs/telemetry/",
    "repro/wire/",
    "repro/cluster/",
    "repro/watchdog/",
    "repro/algebraic/",
)


def _is_secret_operand(node: ast.expr) -> bool:
    identifier = identifier_of(node)
    if identifier is None:
        return False
    tokens = identifier_tokens(identifier)
    return bool(tokens & _SECRET_TOKENS) and not tokens & _META_TOKENS


def _is_benign_other(node: ast.expr) -> bool:
    """Operands that cannot be timing-attacked: str/None/bool constants."""
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    )


class ConstantTimeCompareRule(Rule):
    """RL001: ``==``/``!=`` on MAC/digest/proof/tag bytes."""

    rule_id = "RL001"
    summary = (
        "MAC/digest/proof bytes compared with ==/!= instead of "
        "hmac.compare_digest"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if not any(_is_secret_operand(op) for op in operands):
                continue
            others = [op for op in operands if not _is_secret_operand(op)]
            if others and all(_is_benign_other(op) for op in others):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "non-constant-time comparison of MAC/digest material; use "
                "hmac.compare_digest (repro.crypto.mac.constant_time_equal)",
            )


class RandomInKeyMaterialRule(Rule):
    """RL002: module-level ``random`` in key-material paths."""

    rule_id = "RL002"
    summary = "random module used in crypto/marking/adversary key paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_scope(_RL002_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in _ALLOWED_RANDOM_ATTRS
                ]
                if bad:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"importing {', '.join(bad)} from the shared random "
                        "module in a key-material path; use secrets or an "
                        "injected random.Random instance",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr not in _ALLOWED_RANDOM_ATTRS
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"random.{func.attr}() draws from the shared "
                        "module-level stream in a key-material path; use "
                        "secrets or an injected random.Random instance",
                    )


register(ConstantTimeCompareRule())
register(RandomInKeyMaterialRule())
