"""Small AST helpers shared by the rule visitors."""

from __future__ import annotations

import ast
import re

__all__ = ["identifier_of", "identifier_tokens", "dotted_name"]

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_SPLIT_RE = re.compile(r"[^A-Za-z0-9]+")


def identifier_of(node: ast.expr) -> str | None:
    """The rightmost identifier a node refers to, if any.

    ``Name`` yields its id, ``Attribute`` its attribute, ``Call`` the
    identifier of its callee.  Everything else (constants, literals,
    subscripts, operators) yields ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return identifier_of(node.func)
    return None


def identifier_tokens(identifier: str) -> set[str]:
    """Lower-case word tokens of an identifier (snake and camel case)."""
    spaced = _CAMEL_RE.sub(" ", identifier)
    return {tok.lower() for tok in _SPLIT_RE.split(spaced) if tok}


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a chain of Name/Attribute nodes, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
