"""RL003: plaintext node-ID leakage.

PNM's anonymity argument (Section 4.2) is that the ID a mark carries on the
wire is ``i' = H'_{k_i}(M | i)`` -- a forwarding mole must not be able to
tell which real nodes marked a packet.  That property dies the moment code
on the network path writes a *real* node ID into a mark constructor or a
log/print call: the anonymous ID and the plaintext ID end up side by side
in data an adversary model (or an operator log shipped off-box) can read.

Real node IDs may flow into marks/logs only where the protocol says so:

* the sink's resolver (``repro.traceback.resolver``), verifier
  (``repro.traceback.verify``) and the pairwise precision extension,
  which exist to map anonymous IDs back;
* the marking schemes themselves (``repro.marking``): the plain-ID
  baselines are *documented* as non-anonymous -- that weakness is the
  paper's point of comparison;
* the adversary package, which models an attacker and may do anything;
* sink-side reporting (``repro.core``, ``repro.experiments``,
  ``repro.analysis``) and the store-at-node baselines (``repro.tracealt``),
  which never transit the sensor network.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import FileContext

__all__ = ["NodeIdLeakRule"]

#: Identifiers that denote a real (plaintext) node identity.
_REAL_ID_RE = re.compile(
    r"^(node|real|written|claimed|marker|sender|source|src|mole)_ids?$|^prev_hop$"
)

#: Call targets that put bytes on the wire: the Mark constructor and any
#: scheme-specific ``FooMark`` class.
_MARK_CTOR_RE = re.compile(r"^Mark$|^[A-Z]\w*Mark$")

#: Call targets that persist or emit text.
_LOG_ATTRS = {"debug", "info", "warning", "error", "critical", "exception", "log"}

#: Paths where real-ID flow into marks/logs is part of the protocol.
_ALLOWED_PREFIXES = (
    "repro/marking/",
    "repro/adversary/",
    "repro/traceback/resolver.py",
    "repro/traceback/precision.py",
    "repro/traceback/verify.py",
    "repro/tracealt/",
    "repro/experiments/",
    "repro/analysis/",
    "repro/core/",
)


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_sink_call(node: ast.Call) -> bool:
    name = _callee_name(node)
    if name is None:
        return False
    if name == "print":
        return True
    if isinstance(node.func, ast.Attribute) and name in _LOG_ATTRS:
        return True
    return bool(_MARK_CTOR_RE.match(name))


def _real_id_names(node: ast.Call) -> Iterator[tuple[int, int, str]]:
    """Real-node-ID identifiers anywhere in the call's arguments."""
    arguments: list[ast.expr] = list(node.args)
    arguments.extend(kw.value for kw in node.keywords)
    for arg in arguments:
        for sub in ast.walk(arg):
            name: str | None = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and _REAL_ID_RE.match(name):
                yield sub.lineno, sub.col_offset, name


class NodeIdLeakRule(Rule):
    """RL003: real node IDs written into marks or logs on the network path."""

    rule_id = "RL003"
    summary = "plaintext node ID flows into a mark constructor or log call"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module_path or ctx.in_scope(_ALLOWED_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_sink_call(node):
                continue
            for line, col, name in _real_id_names(node):
                yield self.finding(
                    ctx,
                    line,
                    col,
                    f"real node ID {name!r} flows into "
                    f"{_callee_name(node)}(...); outside the resolver and "
                    "the marking schemes' anonymous-ID derivation, marks "
                    "and logs must carry anonymous IDs only (Section 4.2)",
                )


register(NodeIdLeakRule())
