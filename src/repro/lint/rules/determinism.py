"""RL004/RL006: determinism rules.

RL004 protects the service determinism contract (``docs/service.md``): the
ingest pipeline's verdicts must be byte-identical to the serial sink's, and
the precedence-matrix/merge logic in ``repro.traceback`` must not depend on
Python's set iteration order (which varies with hash seeding and insertion
history).  Any ``for``/comprehension over a set -- or over ``dict.values()``
-- in those packages must go through an explicit ``sorted(...)``.

RL006 protects simulation reproducibility: simulation logic is driven by
the discrete-event engine's virtual clock (``Simulator.now``) and report
timestamps; reading the wall clock (``time.time``, ``datetime.now``...)
makes runs unrepeatable and couples results to host speed.  The service
layer is deliberately out of scope -- measuring real latency is its job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import dotted_name
from repro.lint.walker import FileContext

__all__ = ["UnsortedSetIterationRule", "WallClockInSimulationRule"]

_RL004_SCOPE = (
    "repro/traceback/",
    "repro/service/",
    "repro/faults/",
    "repro/obs/",
    # Covered by repro/obs/ today; pinned because federation order IS the
    # telemetry determinism contract (sorted shard ids, stable series).
    "repro/obs/telemetry/",
    "repro/wire/",
    "repro/cluster/",
    "repro/watchdog/",
    # The solver's confirmed-path/donor iteration IS the cluster
    # byte-identity contract: any unsorted set/dict walk here can split
    # a merged verdict from the single-sink one.
    "repro/algebraic/",
)

_RL006_SCOPE = (
    "repro/sim/",
    "repro/net/",
    "repro/routing/",
    "repro/marking/",
    "repro/adversary/",
    "repro/filtering/",
    "repro/tracealt/",
    "repro/faults/",
    "repro/obs/",
    # Covered by repro/obs/ today; pinned so the SLO layer stays pure --
    # it derives paper metrics from registries and must never read a
    # clock of its own.
    "repro/obs/telemetry/",
    # The wire layer is service code, but its retry/backoff and framing
    # must be driven by injected hints (retry_after_ms) and asyncio's
    # scheduler, never by reading the wall clock directly -- that is what
    # keeps loopback protocol tests deterministic.
    "repro/wire/",
    # Same contract for the shard cluster: failover and rebalance react to
    # connection errors and retry hints, never to elapsed wall time, so
    # churn tests replay identically.  Timing lives in experiments/benches.
    "repro/cluster/",
    # The watchdog layer lives entirely in virtual time: overhear draws,
    # pending-frame expiry, and accusation relay all take ``now`` from the
    # simulator, and its gated overhead benchmark depends on the data
    # plane being bit-identical run to run.
    "repro/watchdog/",
    # Algebraic observations carry *report* timestamps (virtual time);
    # the solver replaying a canonical multiset must never consult a
    # clock, or resolving the same evidence twice could diverge.
    "repro/algebraic/",
)

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.localtime",
    "time.gmtime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: Set methods whose result is itself a set.
_SET_PRODUCING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

_SET_ANNOTATIONS = ("set", "frozenset", "Set", "AbstractSet", "MutableSet")

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except ValueError:  # pragma: no cover - malformed annotation
        return False
    return text.startswith(_SET_ANNOTATIONS) or text.startswith(
        ("typing.Set", "typing.AbstractSet", "typing.MutableSet")
    )


def _is_set_expr(node: ast.expr, set_vars: set[str]) -> bool:
    """Whether ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_PRODUCING_METHODS:
            return _is_set_expr(func.value, set_vars)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    return False


def _iter_scope_children(node: ast.AST) -> Iterator[ast.AST]:
    """Children of ``node`` that stay within the current scope."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_NODES):
            continue
        yield child


def _scope_walk(node: ast.AST) -> Iterator[ast.AST]:
    """All descendants of ``node`` without descending into nested scopes."""
    for child in _iter_scope_children(node):
        yield child
        yield from _scope_walk(child)


def _collect_set_vars(scope: ast.AST, inherited: set[str]) -> set[str]:
    set_vars = set(inherited)
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _is_set_annotation(arg.annotation):
                set_vars.add(arg.arg)
    for node in _scope_walk(scope):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                set_vars.add(node.target.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and _is_set_expr(
                    node.value, set_vars
                ):
                    set_vars.add(target.id)
    return set_vars


class UnsortedSetIterationRule(Rule):
    """RL004: unordered iteration feeding precedence/merge logic."""

    rule_id = "RL004"
    summary = "set/dict.values() iterated without sorted() in merge logic"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_scope(_RL004_SCOPE):
            return
        yield from self._check_scope(ctx, ctx.tree, set())

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, inherited: set[str]
    ) -> Iterator[Finding]:
        set_vars = _collect_set_vars(scope, inherited)
        for node in _scope_walk(scope):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                yield from self._check_iter(ctx, iter_expr, set_vars)
        for node in _scope_walk(scope):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SCOPE_NODES):
                    yield from self._check_scope(ctx, child, set_vars)
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, _SCOPE_NODES):
                yield from self._check_scope(ctx, child, set_vars)

    def _check_iter(
        self, ctx: FileContext, iter_expr: ast.expr, set_vars: set[str]
    ) -> Iterator[Finding]:
        is_values_call = (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr == "values"
            and not iter_expr.args
        )
        if not is_values_call and not _is_set_expr(iter_expr, set_vars):
            return
        what = "dict.values()" if is_values_call else "a set"
        yield self.finding(
            ctx,
            iter_expr.lineno,
            iter_expr.col_offset,
            f"iteration over {what} in precedence/merge logic without an "
            "explicit sorted(...); verdict order must not depend on hash "
            "or insertion order (service determinism contract)",
        )


class WallClockInSimulationRule(Rule):
    """RL006: wall-clock reads inside simulation logic."""

    rule_id = "RL006"
    summary = "wall-clock time used where the engine clock is required"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_scope(_RL006_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{name}() reads the wall clock inside simulation "
                    "logic; use the event engine's virtual clock "
                    "(Simulator.now) or report timestamps",
                )


register(UnsortedSetIterationRule())
register(WallClockInSimulationRule())
