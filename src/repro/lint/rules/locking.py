"""RL005: lock discipline for annotated shared state.

The service layer (``repro.service``) is the one place this codebase is
deliberately concurrent, and its correctness argument ("service verdicts
are identical to the serial sink's") rests on every shared-state mutation
happening under the owning lock.  A missed lock does not fail tests -- it
silently diverges verdicts under load.

The contract is declared where the state is born: an attribute assignment
in ``__init__`` annotated ``# guarded-by: _lock`` promises that every
later mutation of ``self.<attr>`` in that class happens lexically inside
``with self._lock:``.  This rule enforces the promise.  Mutations are
rebinding assignments, augmented assignments, ``del``, subscript stores,
and calls to known mutating container methods (``append``, ``pop``,
``update``...).  ``__init__`` itself is exempt: construction happens
before the object is shared.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import FileContext

__all__ = ["GuardedByRule"]

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "reverse",
    "rotate",
    "setdefault",
    "sort",
    "update",
}

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attrs(node: ast.AST) -> Iterator[str]:
    """Guardable ``self.X`` attributes this statement/expression mutates."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets.extend(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets.append(node.target)
    elif isinstance(node, ast.Delete):
        targets.extend(node.targets)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            attr = _self_attr(node.func.value)
            if attr is not None:
                yield attr
        return
    else:
        return
    for target in targets:
        # Unpack tuple/list targets, then look for self.X and self.X[...]
        stack = [target]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.Tuple, ast.List)):
                stack.extend(current.elts)
                continue
            if isinstance(current, (ast.Subscript, ast.Starred)):
                stack.append(current.value)
                continue
            attr = _self_attr(current)
            if attr is not None:
                yield attr


def _held_locks(ancestors: list[ast.AST]) -> set[str]:
    """Lock attribute names held via ``with self.<lock>:`` ancestors."""
    held: set[str] = set()
    for ancestor in ancestors:
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    held.add(attr)
    return held


def _guarded_attrs(
    cls: ast.ClassDef, guarded_by: dict[int, str]
) -> dict[str, str]:
    """``attr -> lock`` declared by ``# guarded-by:`` comments in ``cls``.

    An annotation attaches to the ``self.X = ...`` (or ``self.X: T = ...``)
    statement spanning its line, looked for in the constructors.
    """
    guarded: dict[str, str] = {}
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        if method.name not in _CONSTRUCTORS:
            continue
        for stmt in ast.walk(method):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            end = stmt.end_lineno if stmt.end_lineno is not None else stmt.lineno
            lock = next(
                (
                    guarded_by[line]
                    for line in range(stmt.lineno, end + 1)
                    if line in guarded_by
                ),
                None,
            )
            if lock is None:
                continue
            for attr in _mutated_attrs(stmt):
                guarded[attr] = lock
    return guarded


class GuardedByRule(Rule):
    """RL005: guarded attribute mutated outside its lock."""

    rule_id = "RL005"
    summary = "# guarded-by attribute mutated outside its with-lock block"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.guarded_by:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = _guarded_attrs(cls, ctx.guarded_by)
        if not guarded:
            return
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in _CONSTRUCTORS:
                continue
            yield from self._check_method(ctx, method, guarded)

    def _check_method(
        self,
        ctx: FileContext,
        method: ast.FunctionDef,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        stack: list[tuple[ast.AST, list[ast.AST]]] = [(method, [])]
        while stack:
            node, ancestors = stack.pop()
            for attr in _mutated_attrs(node):
                lock = guarded.get(attr)
                if lock is None:
                    continue
                if lock not in _held_locks(ancestors):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"self.{attr} is declared '# guarded-by: {lock}' "
                        f"but is mutated outside 'with self.{lock}:'",
                    )
            child_ancestors = ancestors + [node]
            for child in ast.iter_child_nodes(node):
                stack.append((child, child_ancestors))


register(GuardedByRule())
