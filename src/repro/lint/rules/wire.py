"""RL007: no object deserializers in codec paths.

The wire layer's whole safety argument is that every byte a peer sends is
parsed by a strict hand-written decoder that can only ever produce
``Report``/``Mark``/frame values or a typed ``WireError``.  ``pickle``
(and its relatives) would replace that with an engine that executes
arbitrary reduce callables from attacker-controlled bytes -- one
``pickle.loads`` on a frame payload turns "mole injects bogus reports"
into "mole executes code on the sink".  The rule bans importing any such
module anywhere under ``repro/wire/`` or ``repro/packets/``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.walker import FileContext

__all__ = ["PickleInCodecRule"]

_RL007_SCOPE = (
    "repro/wire/",
    "repro/packets/",
)

#: Modules that deserialize arbitrary Python objects (or wrap something
#: that does); none has any business near wire bytes.
_BANNED_MODULES = {
    "pickle",
    "cPickle",
    "_pickle",
    "dill",
    "cloudpickle",
    "marshal",
    "shelve",
}


def _banned_root(module: str | None) -> str | None:
    if module is None:
        return None
    root = module.split(".", 1)[0]
    return root if root in _BANNED_MODULES else None


class PickleInCodecRule(Rule):
    """RL007: ``pickle``/``marshal``-family imports in wire or packet code."""

    rule_id = "RL007"
    summary = "object deserializer (pickle family) imported in a codec path"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_scope(_RL007_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module] if node.level == 0 else []
            else:
                continue
            for name in names:
                banned = _banned_root(name)
                if banned is not None:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"{banned} deserializes arbitrary objects and must "
                        "never touch wire bytes; codec paths parse with the "
                        "strict repro.wire decoders only",
                    )


register(PickleInCodecRule())
