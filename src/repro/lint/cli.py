"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes are CI-shaped: 0 clean, 1 findings (or unparseable files),
2 usage errors (unknown rule, malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import lint_paths
from repro.lint.findings import render_json, render_text
from repro.lint.registry import UnknownRuleError, all_rules, get_rules

__all__ = ["main"]

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based protocol-invariant linter for the PNM reproduction "
            "(constant-time crypto, determinism, lock discipline)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if present",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    try:
        rules = (
            get_rules([r.strip() for r in args.select.split(",") if r.strip()])
            if args.select
            else None
        )
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    baseline: Baseline | None = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = lint_paths([Path(p) for p in args.paths], rules=rules, baseline=baseline)

    if args.write_baseline:
        Baseline.from_findings(result.all_findings).save(baseline_path)
        print(
            f"wrote {len(result.all_findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        print(render_json(result.findings, result.files_scanned))
    else:
        print(render_text(result.findings, result.files_scanned))
    for path, reason in result.errors:
        print(f"error: {path}: {reason}", file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
