"""The pluggable rule registry.

Rules self-register at import time via :func:`register`; the engine asks
:func:`all_rules` for the full set (importing :mod:`repro.lint.rules` to
trigger registration) or :func:`get_rules` for an explicit selection.
Keeping registration declarative means adding a rule is one new visitor
module plus its fixtures -- no engine changes.
"""

from __future__ import annotations

import abc
import re
from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.walker import FileContext

__all__ = ["Rule", "register", "all_rules", "get_rules", "UnknownRuleError"]

_RULE_ID_RE = re.compile(r"^RL\d{3}$")

_REGISTRY: dict[str, "Rule"] = {}


class UnknownRuleError(Exception):
    """A rule selection named an ID that is not registered."""


class Rule(abc.ABC):
    """One protocol invariant, checked per file.

    Subclasses set :attr:`rule_id` (``RLxxx``) and :attr:`summary`, and
    implement :meth:`check` yielding findings.  Rules must not mutate the
    context and must anchor each finding to the offending node's location.
    """

    rule_id: str = ""
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""

    def finding(
        self, ctx: FileContext, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding for this rule with baseline metadata filled in."""
        return Finding(
            path=ctx.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            module_path=ctx.module_path,
            snippet=ctx.line_at(line),
        )


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (idempotent per ID).

    Raises:
        ValueError: on a malformed ID or an ID already taken by a
            different rule class.
    """
    if not _RULE_ID_RE.match(rule.rule_id):
        raise ValueError(f"rule id must match RLxxx, got {rule.rule_id!r}")
    existing = _REGISTRY.get(rule.rule_id)
    if existing is not None and type(existing) is not type(rule):
        raise ValueError(
            f"rule id {rule.rule_id} already registered by "
            f"{type(existing).__name__}"
        )
    _REGISTRY[rule.rule_id] = rule
    return rule


def _ensure_loaded() -> None:
    # Importing the rules package triggers registration as a side effect.
    import repro.lint.rules  # noqa: F401 (import for side effect)


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by ID."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(rule_ids: list[str]) -> list[Rule]:
    """The selected rules, sorted by ID.

    Raises:
        UnknownRuleError: when a selection names an unregistered ID.
    """
    _ensure_loaded()
    unknown = [rid for rid in rule_ids if rid not in _REGISTRY]
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownRuleError(
            f"unknown rule(s) {', '.join(unknown)}; known rules: {known}"
        )
    return [_REGISTRY[rid] for rid in sorted(set(rule_ids))]
