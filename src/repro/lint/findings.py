"""Findings and report rendering (text and JSON, ``file:line`` anchored)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        path: path of the offending file as reported to the user
            (repo-relative when linting from the repo root).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule_id: ``RLxxx`` identifier of the rule that fired.
        message: human-readable explanation with the expected fix.
        module_path: ``repro/...``-rooted path used for scoping and for
            stable baseline matching (empty when the file is outside the
            package tree and carries no ``# lint: module=`` directive).
        snippet: the stripped source line, used for baseline fingerprints
            that survive unrelated line drift.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    module_path: str = ""
    snippet: str = ""

    @property
    def anchor(self) -> str:
        """``path:line:col`` as editors and CI annotations expect it."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity used for baseline matching: stable across line drift."""
        return (self.module_path or self.path, self.rule_id, self.snippet)


def render_text(findings: list[Finding], files_scanned: int) -> str:
    """The human-facing report: one anchored line per finding + summary."""
    lines = [
        f"{f.anchor}: {f.rule_id} {f.message}" for f in sorted(findings)
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"{len(findings)} {noun} in {files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding], files_scanned: int) -> str:
    """The machine-facing report (stable schema for CI tooling)."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    document = {
        "version": 1,
        "files_scanned": files_scanned,
        "total": len(findings),
        "counts_by_rule": dict(sorted(counts.items())),
        "findings": [asdict(f) for f in sorted(findings)],
    }
    return json.dumps(document, indent=2)
