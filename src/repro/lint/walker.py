"""File discovery, parsing, and comment-directive extraction.

The AST does not carry comments, so the walker tokenizes each file once and
collects the three comment directives the engine understands:

* ``# lint: disable=RL001,RL004`` -- suppress those rules on this line
  (bare ``# lint: disable`` suppresses every rule on the line);
* ``# lint: module=repro/service/queue.py`` -- override the inferred
  module path, so fixture files in tests can opt into path-scoped rules;
* ``# guarded-by: _lock`` -- on an attribute assignment in ``__init__``,
  declares that every later mutation of the attribute must happen inside
  ``with self._lock:`` (enforced by RL005).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FileContext", "ParseError", "iter_python_files", "load_file"]

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?")
_MODULE_RE = re.compile(r"#\s*lint:\s*module\s*=\s*(?P<module>\S+)")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")

#: Suppression value meaning "every rule".
ALL_RULES = "*"


class ParseError(Exception):
    """A file could not be tokenized or parsed as Python source."""


@dataclass
class FileContext:
    """Everything the rules need to know about one source file.

    Attributes:
        path: the path as reported in findings.
        module_path: ``repro/...``-rooted posix path for rule scoping
            (empty when the file lives outside the package and declares
            no ``# lint: module=`` directive).
        source: full file contents.
        tree: the parsed module AST.
        suppressions: line number -> suppressed rule IDs (``{"*"}`` means
            all rules suppressed on that line).
        guarded_by: line number -> lock attribute name from
            ``# guarded-by:`` annotations.
    """

    path: str
    module_path: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    guarded_by: dict[int, str] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is suppressed at ``line``."""
        suppressed = self.suppressions.get(line)
        if suppressed is None:
            return False
        return ALL_RULES in suppressed or rule_id in suppressed

    def line_at(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` (for fingerprints)."""
        lines = self.source.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def in_scope(self, prefixes: tuple[str, ...]) -> bool:
        """Whether this file's module path falls under any of ``prefixes``."""
        return any(self.module_path.startswith(p) for p in prefixes)


def iter_python_files(root: Path) -> Iterator[Path]:
    """Yield every ``.py`` file under ``root`` (or ``root`` itself).

    Hidden directories and ``__pycache__`` are skipped; results are sorted
    so reports and baselines are stable across filesystems.
    """
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(p.startswith(".") or p == "__pycache__" for p in parts):
            continue
        yield path


def _infer_module_path(path: Path) -> str:
    """The ``repro/...`` suffix of ``path``, or ``""`` when absent."""
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return ""


def _scan_comments(
    source: str,
) -> tuple[dict[int, set[str]], dict[int, str], str | None]:
    """Extract (suppressions, guarded-by map, module override) from comments."""
    suppressions: dict[int, set[str]] = {}
    guarded: dict[int, str] = {}
    module_override: str | None = None
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError) as exc:
        raise ParseError(str(exc)) from exc
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        disable = _DISABLE_RE.search(token.string)
        if disable is not None:
            rules = disable.group("rules")
            if rules is None:
                suppressions.setdefault(line, set()).add(ALL_RULES)
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                suppressions.setdefault(line, set()).update(ids)
        module = _MODULE_RE.search(token.string)
        if module is not None:
            module_override = module.group("module")
        guard = _GUARDED_RE.search(token.string)
        if guard is not None:
            guarded[line] = guard.group("lock")
    return suppressions, guarded, module_override


def load_file(path: Path, display_path: str | None = None) -> FileContext:
    """Parse ``path`` into a :class:`FileContext`.

    Raises:
        ParseError: when the file is not valid Python source.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise ParseError(f"cannot read {path}: {exc}") from exc
    suppressions, guarded, module_override = _scan_comments(source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ParseError(f"syntax error in {path}: {exc}") from exc
    module_path = module_override or _infer_module_path(path)
    return FileContext(
        path=display_path if display_path is not None else path.as_posix(),
        module_path=module_path,
        source=source,
        tree=tree,
        suppressions=suppressions,
        guarded_by=guarded,
    )
