"""Per-packet backward mark verification (Section 4.1's procedure).

The sink verifies marks from the most downstream one backwards.  For each
mark it resolves candidate marker IDs (trivially for plain-ID schemes, via
key search for anonymous IDs) and checks the MAC against each candidate's
key over the exact received bytes.

Two policies, selected by the scheme:

* ``"suffix"`` (nested schemes): verification stops at the first invalid
  MAC; only the contiguous valid suffix is trusted.  Theorem 2 guarantees
  the most upstream mark of that suffix is within one hop of a mole.
* ``"independent"`` (PPM/AMS baselines): every individually valid mark is
  kept, invalid ones are skipped -- faithful to how those schemes operate,
  and the behavior their attacks exploit.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider
from repro.marking.base import MarkingScheme
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import report_key
from repro.packets.packet import MarkedPacket
from repro.traceback.resolver import ExhaustiveResolver, Resolver

__all__ = ["VerifiedMark", "PacketVerification", "PacketVerifier"]


@dataclass(frozen=True)
class VerifiedMark:
    """A mark successfully attributed to a real node.

    Attributes:
        index: position of the mark in the packet's mark list.
        real_id: the node whose key validated the mark.
        ambiguous: True if more than one key validated it (possible only
            through truncation collisions; ``real_id`` is then the smallest
            validating ID).
    """

    index: int
    real_id: int
    ambiguous: bool = False


@dataclass
class PacketVerification:
    """Outcome of verifying one packet's marks.

    Attributes:
        packet: the packet verified.
        verified: attributed marks in wire order (most upstream first).
            Under the ``"suffix"`` policy this is a contiguous suffix of
            the mark list; under ``"independent"`` it may have gaps.
        invalid_indices: mark positions that failed verification.  Under
            ``"suffix"`` this holds at most the single index where the
            backward scan stopped; marks upstream of it were not examined.
        fallback_searches: how many marks needed the exhaustive fallback
            after a topology-bounded search missed (cost accounting).
    """

    packet: MarkedPacket
    verified: list[VerifiedMark] = field(default_factory=list)
    invalid_indices: list[int] = field(default_factory=list)
    fallback_searches: int = 0

    @property
    def chain_ids(self) -> list[int]:
        """Verified marker IDs, most upstream first."""
        return [vm.real_id for vm in self.verified]

    @property
    def all_valid(self) -> bool:
        """Whether every mark present verified."""
        return not self.invalid_indices and len(self.verified) == len(
            self.packet.marks
        )

    def stop_node(self, delivering_node: int) -> int:
        """The traceback stopping node for single-packet traceback.

        The most upstream verified marker; if nothing verified, the node
        that physically delivered the packet to the sink (always known to
        the sink -- it is its own radio neighbor).
        """
        if self.verified:
            return self.verified[0].real_id
        return delivering_node


class PacketVerifier:
    """Stateless verifier binding a scheme, the key table and a resolver.

    Args:
        scheme: the deployed marking scheme (defines wire semantics).
        keystore: the sink's ``node ID -> key`` table.
        provider: MAC provider matching the one nodes used.
        resolver: anonymous-ID search strategy; defaults to exhaustive.
        exhaustive_fallback: when a bounded resolver finds no validating
            candidate, retry with the full key table (recommended: bounded
            search is an optimization and must not change results).
        table_factory: optional ``packet -> resolution table`` hook used
            for exhaustive searches instead of building the table inline.
            Lets an ingest service memoize tables across packets (see
            :class:`repro.service.ResolverCache`); the callable must return
            exactly what ``scheme.build_resolution_table(packet, keystore,
            provider)`` would.
        obs: observability provider; ``None`` resolves to the process
            default (the no-op provider unless one was installed).  Feeds
            the ``verify_packet_seconds`` / ``resolution_table_seconds``
            profiles, mark counters, and -- when the provider carries a
            tracer -- a chained ``verify`` span per packet.
    """

    def __init__(
        self,
        scheme: MarkingScheme,
        keystore: KeyStore,
        provider: MacProvider,
        resolver: Resolver | None = None,
        exhaustive_fallback: bool = True,
        table_factory: Callable[[MarkedPacket], object | None] | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.scheme = scheme
        self.keystore = keystore
        self.provider = provider
        self.resolver = resolver if resolver is not None else ExhaustiveResolver()
        self.exhaustive_fallback = exhaustive_fallback
        self.table_factory = table_factory
        self.obs = resolve_provider(obs)

    def verify(self, packet: MarkedPacket) -> PacketVerification:
        """Verify all marks of ``packet`` backwards."""
        with self.obs.timer("verify_packet_seconds"):
            result = self._verify(packet)
        self.obs.inc("marks_verified_total", len(result.verified))
        self.obs.inc("marks_invalid_total", len(result.invalid_indices))
        if result.fallback_searches:
            self.obs.inc("resolver_fallbacks_total", result.fallback_searches)
        tracer = self.obs.tracer
        if tracer is not None:
            span = tracer.chain(
                report_key(packet.report),
                "verify",
                marks=len(packet.marks),
                verified=len(result.verified),
            )
            tracer.finish(span, time=span.start)
        return result

    def _verify(self, packet: MarkedPacket) -> PacketVerification:
        result = PacketVerification(packet=packet)
        # A resolution table depends only on the packet and the searched ID
        # set, so each distinct search set's table is built at most once and
        # shared across this packet's marks (the exhaustive table under the
        # ``None`` key, bounded-search tables under their ID tuple).
        tables: dict[tuple[int, ...] | None, object | None] = {}

        prev_verified: int | None = None
        for index in range(len(packet.marks) - 1, -1, -1):
            search = self.resolver.search_ids(packet, prev_verified)
            valid_ids, used_fallback = self._validate_mark(
                packet, index, search, tables
            )
            if used_fallback:
                result.fallback_searches += 1
            if valid_ids:
                real_id = min(valid_ids)
                result.verified.insert(
                    0,
                    VerifiedMark(
                        index=index,
                        real_id=real_id,
                        ambiguous=len(valid_ids) > 1,
                    ),
                )
                prev_verified = real_id
            else:
                result.invalid_indices.insert(0, index)
                if self.scheme.verification_policy == "suffix":
                    break
                # "independent": skip this mark, keep scanning.  The next
                # bounded search should still anchor on the last *verified*
                # marker, which prev_verified already holds.
        return result

    def verify_batch(
        self, packets: Sequence[MarkedPacket]
    ) -> list[PacketVerification]:
        """Verify many packets; results are returned in input order.

        The entry point batch processors parallelize over: per-packet
        verification reads only immutable state (scheme, key table,
        provider), so distinct packets may be verified concurrently as
        long as the resolver and ``table_factory`` tolerate concurrent
        calls (see :mod:`repro.service`).
        """
        return [self.verify(packet) for packet in packets]

    def _table_for(
        self,
        packet: MarkedPacket,
        search: list[int] | None,
        tables: dict[tuple[int, ...] | None, object | None],
    ) -> object | None:
        """The memoized resolution table for one search set (or ``None``)."""
        key = None if search is None else tuple(search)
        if key not in tables:
            with self.obs.timer("resolution_table_seconds"):
                if search is None and self.table_factory is not None:
                    tables[key] = self.table_factory(packet)
                else:
                    tables[key] = self.scheme.build_resolution_table(
                        packet, self.keystore, self.provider, search_ids=search
                    )
        return tables[key]

    def _validate_mark(
        self,
        packet: MarkedPacket,
        index: int,
        search: list[int] | None,
        tables: dict[tuple[int, ...] | None, object | None],
    ) -> tuple[list[int], bool]:
        """Find every node ID whose key validates mark ``index``.

        Returns ``(valid_ids, used_fallback)``; resolution tables are
        memoized in ``tables`` across this packet's marks.
        """
        table = self._table_for(packet, search, tables)
        valid = self._validate_within(packet, index, search, table)
        if search is None or valid or not self.exhaustive_fallback:
            return valid, False
        valid = self._validate_within(
            packet, index, None, self._table_for(packet, None, tables)
        )
        if valid:
            # The bounded search missed a mark the exhaustive one found:
            # adaptive resolvers use this to widen their ball.
            notify = getattr(self.resolver, "notify_miss", None)
            if notify is not None:
                notify()
        return valid, True

    def _validate_within(
        self,
        packet: MarkedPacket,
        index: int,
        search: list[int] | None,
        table: object | None,
    ) -> list[int]:
        candidates = self.scheme.candidate_marker_ids(
            packet,
            index,
            self.keystore,
            self.provider,
            search_ids=search,
            table=table,
        )
        return [
            node_id
            for node_id in candidates
            if self.scheme.verify_mark_as(
                packet, index, node_id, self.keystore[node_id], self.provider
            )
        ]
