"""Sink-side traceback engine.

The traceback pipeline is scheme-agnostic:

1. :mod:`repro.traceback.verify` -- verify the marks of each received
   packet backwards (Section 4.1's procedure), resolving anonymous IDs via
   :mod:`repro.traceback.resolver`.
2. :mod:`repro.traceback.reconstruct` -- accumulate verified chains into a
   precedence graph over forwarding nodes (the matrix ``M`` of Section 4.2)
   and detect identity-swapping loops.
3. :mod:`repro.traceback.localize` -- turn the reconstructed route into a
   suspect one-hop neighborhood (the paper's traceback precision unit).
4. :mod:`repro.traceback.sink` -- the stateful sink that drives 1-3 as
   packets arrive.
"""

from repro.traceback.localize import SuspectNeighborhood, localize
from repro.traceback.multisource import MultiSourceTracebackSink, MultiSourceVerdict
from repro.traceback.precision import PairAwareNestedMarking, SuspectPair, refine_to_pair
from repro.traceback.reconstruct import PrecedenceGraph, RouteAnalysis
from repro.traceback.resolver import (
    AdaptiveBoundedResolver,
    ExhaustiveResolver,
    TopologyBoundedResolver,
)
from repro.traceback.sink import (
    SinkEvidence,
    TracebackSink,
    TracebackVerdict,
    compute_verdict,
    evidence_precedence,
)
from repro.traceback.verify import PacketVerification, PacketVerifier, VerifiedMark

__all__ = [
    "PacketVerifier",
    "PacketVerification",
    "VerifiedMark",
    "ExhaustiveResolver",
    "TopologyBoundedResolver",
    "AdaptiveBoundedResolver",
    "PrecedenceGraph",
    "RouteAnalysis",
    "SuspectNeighborhood",
    "localize",
    "TracebackSink",
    "TracebackVerdict",
    "SinkEvidence",
    "compute_verdict",
    "evidence_precedence",
    "MultiSourceTracebackSink",
    "MultiSourceVerdict",
    "PairAwareNestedMarking",
    "SuspectPair",
    "refine_to_pair",
    "AlgebraicSolver",
    "AlgebraicTracebackSink",
]

# The algebraic solver/sink logically belong to the traceback surface but
# live in repro.algebraic (which imports this package); resolve them
# lazily (PEP 562) to keep the import graph acyclic.
_ALGEBRAIC_EXPORTS = {
    "AlgebraicSolver": "repro.algebraic.solver",
    "AlgebraicTracebackSink": "repro.algebraic.sink",
}


def __getattr__(name: str):
    module_name = _ALGEBRAIC_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
