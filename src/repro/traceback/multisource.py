"""Multi-source traceback: several moles injecting at once.

The paper leaves "the path reconstruction algorithm in the presence of
multiple source moles" as future work (Section 9).  This module provides
the natural extension: on a routing tree, traffic from ``k`` sources forms
a *forest* merging toward the sink, so the precedence graph acquires ``k``
in-degree-0 components -- which single-source analysis deliberately treats
as "equivocal".

The refinement distinguishes "several true sources" from "one source whose
path is not yet fully ordered" by *support*: every verified chain starts at
some node (its most upstream marker), and over time chain heads concentrate
on each source's first forwarder ``V_1^{(i)}`` (probability ``p`` per
packet) while transient heads deeper in the path decay.  A source
component is **confirmed** once it has accumulated at least
``min_support`` chain-head observations; the verdict then lists one
suspect neighborhood per confirmed component.

The same one-hop guarantee holds per component: each confirmed most
upstream marker has a mole within one hop (its packets genuinely started
there, by consecutive traceability), so quarantining every suspect
neighborhood covers every active source.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.traceback.localize import SuspectNeighborhood
from repro.traceback.reconstruct import PrecedenceGraph
from repro.traceback.sink import TracebackSink

__all__ = ["MultiSourceVerdict", "MultiSourceTracebackSink"]


@dataclass(frozen=True)
class MultiSourceVerdict:
    """The sink's answer when multiple sources may be active.

    Attributes:
        suspects: one neighborhood per confirmed source component, ordered
            by descending support.
        unconfirmed_candidates: in-degree-0 nodes that lack support so far
            (either young sources or not-yet-ordered path fragments).
        packets_used: packets processed.
        loop_detected: identity-swapping loops seen anywhere.
    """

    suspects: tuple[SuspectNeighborhood, ...]
    unconfirmed_candidates: frozenset[int]
    packets_used: int
    loop_detected: bool

    @property
    def num_sources(self) -> int:
        return len(self.suspects)


class MultiSourceTracebackSink(TracebackSink):
    """A traceback sink that resolves several concurrent sources.

    Args:
        min_support: chain-head observations required to confirm a source
            component.  Low values confirm faster but can briefly split
            one source into two candidates while its path is unordered;
            the default of 3 is conservative for ``p >= 0.1``.
        **kwargs: forwarded to :class:`~repro.traceback.sink.TracebackSink`.
    """

    def __init__(self, *args, min_support: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self.min_support = min_support
        self._head_counts: Counter[int] = Counter()

    def receive(self, packet, delivering_node):
        verification = super().receive(packet, delivering_node)
        if verification.chain_ids:
            self._head_counts[verification.chain_ids[0]] += 1
        return verification

    def head_support(self, node_id: int) -> int:
        """How many verified chains started at ``node_id``."""
        return self._head_counts[node_id]

    def multi_verdict(self) -> MultiSourceVerdict:
        """Resolve every source component currently supported."""
        analysis = self.route_analysis()
        suspects: list[SuspectNeighborhood] = []
        unconfirmed: set[int] = set()

        # Examine each in-degree-0 component of the condensation.  The
        # single-source analysis already knows them as source_candidates;
        # group them by component via the loop sets.
        loop_members = set().union(*analysis.loops) if analysis.loops else set()
        for candidate in sorted(analysis.source_candidates):
            if candidate in loop_members:
                # Identity-swapping component: defer to the loop logic.
                continue
            support = self._head_counts[candidate]
            if support >= self.min_support:
                suspects.append(
                    SuspectNeighborhood(
                        center=candidate,
                        members=frozenset(
                            self.topology.closed_neighborhood(candidate)
                        ),
                    )
                )
            else:
                unconfirmed.add(candidate)

        # Loops are confirmed sources by construction (contradictory
        # orders cannot arise without moles); localize each source-side
        # loop at its line attachment point, like the single-source case.
        graph = self.precedence.to_networkx()
        for loop in analysis.loops:
            if not (loop & analysis.source_candidates):
                continue  # the loop has upstream evidence: not a source
            attachment = PrecedenceGraph._attachment_point(graph, set(loop))
            if attachment is None:
                attachment = self._last_delivering_node
            if attachment is None or attachment == self.topology.sink:
                continue
            suspects.append(
                SuspectNeighborhood(
                    center=attachment,
                    members=frozenset(
                        self.topology.closed_neighborhood(attachment)
                    ),
                    via_loop=True,
                )
            )

        suspects.sort(key=lambda s: -self._head_counts[s.center])
        return MultiSourceVerdict(
            suspects=tuple(suspects),
            unconfirmed_candidates=frozenset(unconfirmed),
            packets_used=self.packets_received,
            loop_detected=analysis.has_loop,
        )
