"""The stateful traceback sink.

Feeds every received suspicious packet through the verifier, accumulates
verified chains in the precedence graph, and answers "where is the mole?"
both per packet (single-packet traceback, exact for deterministic nested
marking) and in aggregate (probabilistic marking, Figures 5-7).

Which packets count as suspicious is outside PNM proper (Section 7
"Background Traffic"): the caller decides what to feed in, e.g. everything
from an event region known to be quiet, or reports flagged by en-route
filtering (:mod:`repro.filtering`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import networkx as nx

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider
from repro.marking.base import MarkingScheme
from repro.net.topology import Topology
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import report_key
from repro.packets.packet import MarkedPacket
from repro.traceback.localize import SuspectNeighborhood, localize
from repro.traceback.reconstruct import PrecedenceGraph, RouteAnalysis
from repro.traceback.resolver import Resolver
from repro.traceback.verify import PacketVerification, PacketVerifier

__all__ = [
    "TracebackSink",
    "TracebackVerdict",
    "SinkEvidence",
    "compute_verdict",
    "evidence_precedence",
]


@dataclass(frozen=True)
class TracebackVerdict:
    """The sink's current answer.

    Attributes:
        identified: whether the evidence singles out a suspect neighborhood.
        suspect: that neighborhood when ``identified``.
        packets_used: packets processed so far.
        loop_detected: whether identity-swapping loops were observed.
        analysis: the underlying route analysis (for diagnostics).
    """

    identified: bool
    suspect: SuspectNeighborhood | None
    packets_used: int
    loop_detected: bool
    analysis: RouteAnalysis


@dataclass(frozen=True)
class SinkEvidence:
    """The order-insensitive evidence a sink has accumulated.

    Everything :func:`compute_verdict` needs, in a canonical (sorted)
    transportable form.  Two key properties make sharded deployments
    possible (:mod:`repro.cluster`):

    * **Verdict-sufficiency**: the verdict is a pure function of this
      record plus the topology -- :meth:`TracebackSink.verdict` and a
      coordinator merging shard evidence run the *same* code path, so a
      merged verdict cannot drift from the single-sink one.
    * **Additivity**: evidence from disjoint packet subsets combines by
      union (nodes/edges), by summed multiset (tamper stops), and by sum
      (counters).  Precedence edges are idempotent, so the union over any
      partition of a packet stream equals the single sink's graph.

    Attributes:
        nodes: every verified marker node, ascending.
        edges: verified precedence edges ``(upstream, downstream)``,
            sorted ascending.
        tamper_stops: ``(stop_node, count)`` pairs from tampered packets,
            sorted by node.
        packets_received / tampered_packets / chains_with_marks /
        fallback_searches: the sink's additive counters
        (``chains_with_marks`` counts packets that arrived *clean* --
        verified chain, no invalid MAC -- so the verdict's mass
        comparison weighs route evidence against tamper evidence).
        delivering_node: the localization fallback neighbor (the last
            delivering node for a live sink; a deterministic choice when
            merged -- see :func:`repro.cluster.merge_evidence`).
        algebraic: canonical (sorted) algebraic observation tuples
            (:meth:`repro.algebraic.solver.AlgebraicObservation.as_tuple`)
            when the deployed scheme is algebraic; empty otherwise.
            Additive by sorted multiset union -- raw observations, not
            solver state, travel between shards, so the verdict stays a
            pure function of merged evidence.
    """

    nodes: tuple[int, ...] = ()
    edges: tuple[tuple[int, int], ...] = ()
    tamper_stops: tuple[tuple[int, int], ...] = ()
    packets_received: int = 0
    tampered_packets: int = 0
    chains_with_marks: int = 0
    fallback_searches: int = 0
    delivering_node: int | None = None
    algebraic: tuple[tuple[int, int, int, int, int, int], ...] = ()


def evidence_precedence(evidence: SinkEvidence) -> PrecedenceGraph:
    """Rebuild the precedence graph a :class:`SinkEvidence` describes."""
    precedence = PrecedenceGraph()
    for node in evidence.nodes:
        precedence.add_chain([node])
    for upstream, downstream in evidence.edges:
        precedence.add_chain([upstream, downstream])
    return precedence


def compute_verdict(
    precedence: PrecedenceGraph,
    tamper_stops: Mapping[int, int],
    tampered_packets: int,
    chains_with_marks: int,
    packets_received: int,
    topology: Topology,
    delivering_node: int | None,
    obs: ObsProvider | NoopObsProvider | None = None,
) -> TracebackVerdict:
    """The paper's verdict logic as a pure function of accumulated evidence.

    Shared by :meth:`TracebackSink.verdict` (live, per-sink state) and
    the cluster coordinator (merged multi-shard state), which is what
    guarantees a merged verdict is byte-identical to the single-sink one
    on the same evidence.

    Evidence is combined in the paper's order: the reconstructed route
    (most upstream node, or the loop attachment under identity swapping)
    when it is unequivocal, otherwise the tamper evidence accumulated
    from packets whose MACs failed verification.

    The two evidence streams are weighed by mass: when more packets
    arrived *tampered* than arrived clean with a verified chain
    (``chains_with_marks`` counts only untampered packets), the route
    picture is too sparse to trust (a mole invalidating nearly every
    mark can leave one lucky lone marker looking like a unique most
    upstream node), so the tamper stopping nodes -- each guaranteed
    downstream of the manipulating mole by consecutive traceability --
    decide instead.
    """
    provider = resolve_provider(obs)
    with provider.timer("route_analysis_seconds"):
        analysis = precedence.analyze()
    suspect = localize(analysis, topology, delivering_node)
    if (
        suspect is not None
        and not suspect.via_loop
        and tampered_packets > chains_with_marks
    ):
        dominant = _tamper_suspect(precedence, tamper_stops, topology)
        if dominant is not None:
            suspect = dominant
    if suspect is None:
        suspect = _tamper_suspect(precedence, tamper_stops, topology)
    return TracebackVerdict(
        identified=suspect is not None,
        suspect=suspect,
        packets_used=packets_received,
        loop_detected=analysis.has_loop,
        analysis=analysis,
    )


def _tamper_suspect(
    precedence: PrecedenceGraph,
    tamper_stops: Mapping[int, int],
    topology: Topology,
) -> SuspectNeighborhood | None:
    """Localize from tampered packets' stopping nodes.

    Each tampered packet's stopping node lies downstream of the
    manipulating mole; the most upstream stopping node observed (per
    the precedence evidence) converges to the mole's next marking
    neighbor.  Centers the suspect there.
    """
    if not tamper_stops:
        return None
    stops = sorted(tamper_stops)
    graph = precedence.to_networkx()

    def is_downstream_of_another(node: int) -> bool:
        for other in stops:
            if other == node or other not in graph or node not in graph:
                continue
            if nx.has_path(graph, other, node):
                return True
        return False

    most_upstream = [s for s in stops if not is_downstream_of_another(s)]
    # Deterministic choice among incomparable stops: the most frequent,
    # then the smallest ID.
    center = min(
        most_upstream,
        key=lambda s: (-tamper_stops[s], s),
    )
    if center == topology.sink:
        return None
    return SuspectNeighborhood(
        center=center,
        members=frozenset(topology.closed_neighborhood(center)),
    )


class TracebackSink:
    """Aggregates per-packet verification into a traceback verdict.

    Args:
        scheme: the deployed marking scheme.
        keystore: the sink's key table.
        provider: MAC provider matching the deployment.
        topology: deployment graph, used for suspect neighborhoods (and by
            topology-bounded resolvers).
        resolver: anonymous-ID search strategy (default exhaustive).
        obs: observability provider, shared with the verifier; ``None``
            resolves to the process default.  Counts ingested and tampered
            packets and closes each packet's trace with a ``verdict`` span.
    """

    def __init__(
        self,
        scheme: MarkingScheme,
        keystore: KeyStore,
        provider: MacProvider,
        topology: Topology,
        resolver: Resolver | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.topology = topology
        self.obs = resolve_provider(obs)
        self.verifier = PacketVerifier(
            scheme, keystore, provider, resolver, obs=self.obs
        )
        self.precedence = PrecedenceGraph()
        self.packets_received = 0
        self.fallback_searches = 0
        self.tampered_packets = 0
        self.chains_with_marks = 0
        self._tamper_stop_nodes: dict[int, int] = {}
        self._last_verification: PacketVerification | None = None
        self._last_delivering_node: int | None = None

    def receive(
        self, packet: MarkedPacket, delivering_node: int
    ) -> PacketVerification:
        """Process one suspicious packet.

        Args:
            packet: the packet as received.
            delivering_node: the sink's radio neighbor that handed it over
                (physically known to the sink).

        Returns:
            The per-packet verification outcome.
        """
        return self.ingest(self.verifier.verify(packet), delivering_node)

    def ingest(
        self, verification: PacketVerification, delivering_node: int
    ) -> PacketVerification:
        """Fold an already-computed verification into the sink's state.

        The batch-safe half of :meth:`receive`: the ingest service
        (:mod:`repro.service`) verifies packets out of line -- cached
        and possibly in parallel -- and merges the results here in
        arrival order.  Calling this with ``verifier.verify(packet)`` is
        exactly :meth:`receive`.

        Args:
            verification: the outcome of verifying one packet.
            delivering_node: the sink's radio neighbor that handed the
                packet over.
        """
        self.packets_received += 1
        self.fallback_searches += verification.fallback_searches
        self.precedence.add_chain(verification.chain_ids)
        self.obs.inc("sink_packets_ingested_total")
        tracer = self.obs.tracer
        if tracer is not None:
            tracer.event(
                report_key(verification.packet.report),
                "verdict",
                delivering_node=delivering_node,
                tampered=bool(verification.invalid_indices),
            )
        if verification.chain_ids and not verification.invalid_indices:
            # Count only *clean* chains toward the route-evidence mass.  A
            # tampered packet usually still carries a verified downstream
            # suffix; counting it here would let ``chains_with_marks``
            # saturate together with ``tampered_packets`` and the verdict's
            # mass comparison would never prefer the tamper stops -- the
            # exact failure mode of the reorder attack at high mark rates,
            # where the only clean chains are lucky lone markers far from
            # the mole (pinned in tests/test_traceback/test_sink_localize.py).
            self.chains_with_marks += 1
        if verification.invalid_indices:
            self.obs.inc("sink_tampered_packets_total")
            # Tamper evidence: an invalid MAC never occurs in honest
            # operation, so a mole touched this packet.  By consecutive
            # traceability the most upstream *verified* marker of the
            # packet (Section 4.1's stopping node) is downstream of -- and
            # converges to one hop from -- that mole.
            self.tampered_packets += 1
            stop = verification.stop_node(delivering_node)
            self._tamper_stop_nodes[stop] = (
                self._tamper_stop_nodes.get(stop, 0) + 1
            )
        self._last_verification = verification
        self._last_delivering_node = delivering_node
        return verification

    def last_packet_suspect(self) -> SuspectNeighborhood | None:
        """Single-packet traceback from the most recent packet.

        For deterministic nested marking this alone is one-hop precise
        (Theorem 2): the suspect centers on the most upstream verified
        marker, or on the delivering neighbor when nothing verified.
        """
        if self._last_verification is None:
            return None
        assert self._last_delivering_node is not None
        center = self._last_verification.stop_node(self._last_delivering_node)
        if center == self.topology.sink:
            return None
        return SuspectNeighborhood(
            center=center,
            members=frozenset(self.topology.closed_neighborhood(center)),
        )

    def route_analysis(self) -> RouteAnalysis:
        """Interpret all evidence accumulated so far."""
        with self.obs.timer("route_analysis_seconds"):
            return self.precedence.analyze()

    def verdict(self) -> TracebackVerdict:
        """The sink's aggregate answer over every packet seen so far.

        Delegates to :func:`compute_verdict` over this sink's live state;
        see there for how the route and tamper evidence streams combine.
        """
        return compute_verdict(
            self.precedence,
            self._tamper_stop_nodes,
            self.tampered_packets,
            self.chains_with_marks,
            self.packets_received,
            self.topology,
            self._last_delivering_node,
            obs=self.obs,
        )

    def evidence(self) -> SinkEvidence:
        """Snapshot this sink's accumulated evidence in canonical form.

        The returned record is verdict-sufficient: feeding it (rebuilt via
        :func:`evidence_precedence`) back through :func:`compute_verdict`
        with the same topology reproduces :meth:`verdict` exactly.  Shards
        export this over the wire (SUMMARY frames) for the cluster
        coordinator to merge.
        """
        graph = self.precedence.to_networkx()
        return SinkEvidence(
            nodes=tuple(sorted(graph.nodes)),
            edges=tuple(sorted(graph.edges)),
            tamper_stops=tuple(
                (node, self._tamper_stop_nodes[node])
                for node in sorted(self._tamper_stop_nodes)
            ),
            packets_received=self.packets_received,
            tampered_packets=self.tampered_packets,
            chains_with_marks=self.chains_with_marks,
            fallback_searches=self.fallback_searches,
            delivering_node=self._last_delivering_node,
        )

    def __repr__(self) -> str:
        return (
            f"TracebackSink(packets={self.packets_received}, "
            f"observed={self.precedence.observed_count()})"
        )
