"""Turning route analysis into a suspect neighborhood.

PNM's precision unit is "one node and its one-hop neighbors, and there must
be at least one mole among these nodes" (Section 4).  This module maps a
:class:`~repro.traceback.reconstruct.RouteAnalysis` (or a single-packet
stopping node) onto the deployment topology to produce that set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Topology
from repro.traceback.reconstruct import RouteAnalysis

__all__ = ["SuspectNeighborhood", "localize"]


@dataclass(frozen=True)
class SuspectNeighborhood:
    """The traceback output: a center node and its closed neighborhood.

    Attributes:
        center: the traceback stopping node (most upstream marker, loop
            attachment, or delivering node as a last resort).
        members: ``center`` plus its one-hop radio neighbors.
        via_loop: whether the center came from identity-swapping loop
            analysis rather than a loop-free most-upstream node.
    """

    center: int
    members: frozenset[int]
    via_loop: bool = False

    def contains_any(self, nodes: set[int]) -> bool:
        """Whether any of ``nodes`` (e.g. the true moles) is implicated."""
        return bool(self.members & nodes)

    def __contains__(self, node: int) -> bool:
        return node in self.members

    def __len__(self) -> int:
        return len(self.members)


def localize(
    analysis: RouteAnalysis,
    topology: Topology,
    delivering_node: int | None = None,
) -> SuspectNeighborhood | None:
    """Produce the suspect neighborhood implied by ``analysis``.

    Args:
        analysis: current precedence-graph interpretation.
        topology: deployment graph (for one-hop neighborhoods).
        delivering_node: the sink's radio neighbor that handed over the
            attack traffic; used as a fallback center when a loop attaches
            directly to the sink or nothing was ever verified.

    Returns:
        The suspect neighborhood, or ``None`` when the evidence does not
        yet single out a center (traceback still equivocal).
    """
    if analysis.unequivocal and analysis.most_upstream is not None:
        return SuspectNeighborhood(
            center=analysis.most_upstream,
            members=frozenset(topology.closed_neighborhood(analysis.most_upstream)),
        )
    if analysis.has_loop:
        if analysis.loop_attachment is not None:
            center = analysis.loop_attachment
        elif delivering_node is not None:
            # The loop reached the sink with no line nodes in between: the
            # delivering neighbor plays the role of the attachment point.
            center = delivering_node
        else:
            return None
        return SuspectNeighborhood(
            center=center,
            members=frozenset(topology.closed_neighborhood(center)),
            via_loop=True,
        )
    if not analysis.observed and delivering_node is not None:
        # No mark ever verified (e.g. the NoMarking baseline, or a mole
        # stripping every mark next to the sink): all the sink knows is
        # which neighbor delivered the traffic.
        return SuspectNeighborhood(
            center=delivering_node,
            members=frozenset(topology.closed_neighborhood(delivering_node)),
        )
    return None
