"""Pair-precision traceback (Section 7's neighbor-authentication upgrade).

Plain PNM localizes a mole to a closed one-hop *neighborhood*, because a
mole "can claim different identities in communicating with its neighbors".
With pairwise neighbor authentication (:mod:`repro.crypto.pairwise`) every
node knows cryptographically who handed it each packet, so marks can
additionally carry the marker's **authenticated previous hop**, and the
sink can narrow the suspect set to a *pair*:

    the traceback stopping node ``V`` (whose mark is the last valid one)
    together with the previous hop ``P`` that ``V`` reports.

Why a mole must be in ``{V, P}`` under deterministic marking: if ``V`` is
honest, its reported ``P`` is truthful (neighbor auth) and ``P``'s mark is
missing or invalid even though every honest forwarder marks every packet
-- so ``P`` is a mole or the injecting source.  If ``V`` lied about ``P``,
``V`` is itself compromised.  (With probabilistic marking the same holds
asymptotically for the converged most upstream marker, whose reported
previous hop is the source's delivery edge.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider, constant_time_equal
from repro.marking.base import NodeContext
from repro.marking.nested import NestedMarking
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket
from repro.traceback.verify import PacketVerification

__all__ = ["PairAwareNestedMarking", "SuspectPair", "refine_to_pair"]


class PairAwareNestedMarking(NestedMarking):
    """Nested marking whose marks embed the authenticated previous hop.

    The ID field doubles in width: ``[own ID][prev-hop ID]``, both covered
    by the nested MAC.  Requires node contexts with ``prev_hop`` set (i.e.
    a deployment running pairwise neighbor authentication).
    """

    name = "pair-nested"

    def __init__(self, id_len: int = 2, mac_len: int = 4):
        super().__init__(id_len=id_len, mac_len=mac_len)
        self._id_len = id_len
        # The wire format sees one opaque ID field of twice the width.
        self.fmt = MarkFormat(id_len=2 * id_len, mac_len=mac_len)

    def _encode_ids(self, node_id: int, prev_hop: int) -> bytes:
        single = MarkFormat(id_len=self._id_len, mac_len=self.fmt.mac_len)
        return single.encode_node_id(node_id) + single.encode_node_id(prev_hop)

    def _decode_ids(self, id_field: bytes) -> tuple[int, int]:
        half = self._id_len
        return (
            int.from_bytes(id_field[:half], "big"),
            int.from_bytes(id_field[half:], "big"),
        )

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        if ctx.prev_hop is None:
            raise ValueError(
                "pair-aware marking needs ctx.prev_hop (pairwise neighbor "
                "authentication must be deployed)"
            )
        id_field = self._encode_ids(written_id, ctx.prev_hop)
        mac = ctx.provider.mac(ctx.key, packet.wire() + id_field)
        return Mark(id_field=id_field, mac=mac)

    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return []
        node_id, _prev = self._decode_ids(mark.id_field)
        return [node_id] if node_id in keystore else []

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return False
        marked_id, _prev = self._decode_ids(mark.id_field)
        if marked_id != node_id:
            return False
        prefix = packet.prefix_wire(mark_index)
        expected = provider.mac(key, prefix + mark.id_field)
        return constant_time_equal(expected, mark.mac)

    def reported_prev_hop(self, packet: MarkedPacket, mark_index: int) -> int:
        """The previous hop the marker embedded (verified via the MAC)."""
        _node, prev = self._decode_ids(packet.marks[mark_index].id_field)
        return prev


@dataclass(frozen=True)
class SuspectPair:
    """The refined traceback output: two nodes, one of them compromised.

    Attributes:
        stop_node: the most upstream verified marker.
        reported_prev: the previous hop it attests to.
        members: the pair as a set (drop-in for neighborhood scoring).
    """

    stop_node: int
    reported_prev: int
    members: frozenset[int]

    def contains_any(self, nodes: set[int]) -> bool:
        """Whether any of ``nodes`` (e.g. the true moles) is in the pair."""
        return bool(self.members & nodes)

    def __len__(self) -> int:
        return len(self.members)


def refine_to_pair(
    verification: PacketVerification,
    scheme: PairAwareNestedMarking,
) -> SuspectPair | None:
    """Narrow a packet's verification to the stop-node/previous-hop pair.

    Returns ``None`` when no mark verified (the caller falls back to the
    delivering neighbor, as usual).
    """
    if not verification.verified:
        return None
    stop = verification.verified[0]
    prev = scheme.reported_prev_hop(verification.packet, stop.index)
    return SuspectPair(
        stop_node=stop.real_id,
        reported_prev=prev,
        members=frozenset({stop.real_id, prev}),
    )
