"""Anonymous-ID search strategies.

Resolving an anonymous ID means finding which node keys reproduce it.  The
sink can always search exhaustively over all node keys (Section 4.2 argues
this is feasible: millions of hashes per second against tens of packets per
second).  Section 7 notes that if the sink knows the topology it can narrow
the search to the one-hop neighbors of the previously verified node,
reducing complexity from ``O(N)`` to ``O(d)``.

With probabilistic marking not every hop leaves a mark, so consecutive
verified markers may be several hops apart; :class:`TopologyBoundedResolver`
therefore searches a configurable ``radius``-hop ball and the verifier falls
back to the exhaustive search when the bounded one fails.  The sink-cost
ablation bench quantifies the saving.
"""

from __future__ import annotations

from typing import Protocol

from repro.net.topology import Topology
from repro.packets.packet import MarkedPacket

__all__ = [
    "Resolver",
    "ExhaustiveResolver",
    "TopologyBoundedResolver",
    "AdaptiveBoundedResolver",
]


class Resolver(Protocol):
    """Chooses the key-search space for one mark's anonymous ID."""

    def search_ids(
        self, packet: MarkedPacket, prev_verified: int | None
    ) -> list[int] | None:
        """IDs to search for the next (more upstream) mark.

        Args:
            packet: the packet being verified.
            prev_verified: the real ID of the previously verified (i.e.
                immediately downstream) marker, or ``None`` when verifying
                the most downstream mark.

        Returns:
            Candidate node IDs, or ``None`` to search every known key.
        """
        ...


class ExhaustiveResolver:
    """Always search the sink's entire key table (Section 4.2)."""

    def search_ids(
        self, packet: MarkedPacket, prev_verified: int | None
    ) -> list[int] | None:
        """Return ``None``: search everything."""
        return None


class AdaptiveBoundedResolver:
    """A bounded resolver that widens itself when it misses.

    Starts from ``initial_radius`` and doubles the ball (up to
    ``max_radius``) every time the verifier reports that the bounded
    search missed and the exhaustive fallback was needed.  With
    probabilistic marking the right radius depends on ``1/p`` (the
    expected gap between markers), which the sink does not know a priori;
    this resolver converges onto it after a few packets instead of paying
    either permanent fallbacks (radius too small) or oversized balls.
    """

    def __init__(
        self,
        topology: Topology,
        initial_radius: int = 1,
        max_radius: int = 64,
    ):
        if initial_radius < 1:
            raise ValueError(f"initial_radius must be >= 1, got {initial_radius}")
        if max_radius < initial_radius:
            raise ValueError(
                f"max_radius {max_radius} < initial_radius {initial_radius}"
            )
        self._topology = topology
        self.radius = initial_radius
        self.max_radius = max_radius
        self.misses = 0

    def notify_miss(self) -> None:
        """Verifier feedback: the bounded search failed for a mark."""
        self.misses += 1
        self.radius = min(self.max_radius, self.radius * 2)

    def search_ids(
        self, packet: MarkedPacket, prev_verified: int | None
    ) -> list[int] | None:
        """The current-radius ball around the previously verified marker."""
        return TopologyBoundedResolver(self._topology, self.radius).search_ids(
            packet, prev_verified
        )


class TopologyBoundedResolver:
    """Search only nodes near the previously verified marker (Section 7).

    Args:
        topology: the deployment graph the sink learned (e.g. from nodes
            reporting their neighbors after deployment).
        radius: hop radius of the search ball.  ``1`` matches the paper's
            ``O(d)`` suggestion and suffices for deterministic nested
            marking; probabilistic marking skips hops, so a radius around
            ``ceil(2/p)`` keeps fallbacks rare.
    """

    def __init__(self, topology: Topology, radius: int = 1):
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        self._topology = topology
        self._radius = radius

    def search_ids(
        self, packet: MarkedPacket, prev_verified: int | None
    ) -> list[int] | None:
        """The fixed-radius ball around the previously verified marker."""
        center = self._topology.sink if prev_verified is None else prev_verified
        ball = {center}
        frontier = [center]
        for _ in range(self._radius):
            next_frontier = []
            for node in frontier:
                for nbr in self._topology.neighbors(node):
                    if nbr not in ball:
                        ball.add(nbr)
                        next_frontier.append(nbr)
            frontier = next_frontier
        return sorted(ball)
