"""Route reconstruction from verified mark chains (Section 4.2).

The sink maintains a *precedence graph* over verified markers: whenever two
consecutive MACs within one packet verify, the earlier marker is upstream
of the later one (the matrix ``M`` of the paper).  As packets accumulate,
the graph converges to the forwarding order.

Two route shapes can emerge:

* **loop-free** -- all attacks except identity swapping.  The source mole
  (or a mark-removing forwarding mole) appears in the one-hop neighborhood
  of the *most upstream* node: the unique node with no upstream edge.
* **loops** -- identity swapping (Section 4.2, Figure 2): two moles leave
  valid marks with each other's keys, so each appears both upstream and
  downstream of the other, forming a strongly connected component.  The
  remaining nodes still form a line to the sink, and a mole is within one
  hop of the line node where the loop attaches (Theorem 4's proof).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["PrecedenceGraph", "RouteAnalysis"]


@dataclass(frozen=True)
class RouteAnalysis:
    """A snapshot interpretation of the precedence graph.

    Attributes:
        observed: every node with at least one verified mark so far.
        source_candidates: nodes that could still be the most upstream:
            members of source components (in-degree-0 components of the
            SCC condensation).
        unequivocal: True when exactly one source component exists and it
            is a single node -- the sink has pinned down the most upstream
            marker (Figures 6/7's success criterion).
        most_upstream: that node when ``unequivocal``, else ``None``.
        loops: node sets of all non-trivial strongly connected components
            (identity-swapping signatures).
        loop_attachment: when a loop is the unique source component, the
            most upstream *line* node it feeds into -- the paper's
            "intersection of the loop and the line"; ``None`` if the loop
            connects straight to the sink (no line nodes observed) or no
            loop exists.
    """

    observed: frozenset[int]
    source_candidates: frozenset[int]
    unequivocal: bool
    most_upstream: int | None
    loops: tuple[frozenset[int], ...]
    loop_attachment: int | None

    @property
    def has_loop(self) -> bool:
        return bool(self.loops)


@dataclass
class PrecedenceGraph:
    """Accumulates upstream/downstream evidence across packets.

    Edges mean "verified directly before within some packet", i.e. the
    upstream relation of Section 4.2's matrix ``M``.
    """

    _graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_chain(self, chain_ids: list[int]) -> None:
        """Record one packet's verified marker chain (upstream first).

        A single-element chain only records the node's existence; longer
        chains add a precedence edge per consecutive pair.
        """
        for node in chain_ids:
            self._graph.add_node(node)
        for upstream, downstream in zip(chain_ids, chain_ids[1:], strict=False):
            if upstream != downstream:
                self._graph.add_edge(upstream, downstream)

    @property
    def observed(self) -> set[int]:
        """All nodes seen in at least one verified chain."""
        return set(self._graph.nodes)

    def observed_count(self) -> int:
        """Number of distinct verified markers seen so far."""
        return self._graph.number_of_nodes()

    def has_edge(self, upstream: int, downstream: int) -> bool:
        """Whether a direct upstream->downstream observation exists."""
        return self._graph.has_edge(upstream, downstream)

    def upstream_of(self, node: int) -> set[int]:
        """Direct upstream neighbors recorded for ``node``."""
        return set(self._graph.predecessors(node))

    def analyze(self) -> RouteAnalysis:
        """Interpret the current evidence (see :class:`RouteAnalysis`)."""
        graph = self._graph
        if graph.number_of_nodes() == 0:
            return RouteAnalysis(
                observed=frozenset(),
                source_candidates=frozenset(),
                unequivocal=False,
                most_upstream=None,
                loops=(),
                loop_attachment=None,
            )

        components = list(nx.strongly_connected_components(graph))
        condensation = nx.condensation(graph, scc=components)
        source_comps = [
            comp for comp in condensation.nodes if condensation.in_degree(comp) == 0
        ]
        loops = tuple(
            frozenset(members) for members in components if len(members) > 1
        )
        candidates: set[int] = set()
        for comp in source_comps:
            candidates.update(condensation.nodes[comp]["members"])

        unequivocal = False
        most_upstream: int | None = None
        loop_attachment: int | None = None
        if len(source_comps) == 1:
            members = condensation.nodes[source_comps[0]]["members"]
            if len(members) == 1:
                unequivocal = True
                most_upstream = next(iter(members))
            else:
                # The unique source component is a loop: find the most
                # upstream line node, i.e. the loop's attachment point.
                loop_attachment = self._attachment_point(
                    graph, set(members)
                )
        return RouteAnalysis(
            observed=frozenset(graph.nodes),
            source_candidates=frozenset(candidates),
            unequivocal=unequivocal,
            most_upstream=most_upstream,
            loops=loops,
            loop_attachment=loop_attachment,
        )

    @staticmethod
    def _attachment_point(graph: nx.DiGraph, loop: set[int]) -> int | None:
        """The line node the loop feeds into (Figure 2's intersection).

        Line nodes reachable from the loop whose *only* upstream evidence
        comes from the loop are directly downstream of it; among those the
        most upstream one is the attachment.  If the loop has no outgoing
        edges (it delivered straight to the sink) there is no line node.
        """
        direct = {
            succ
            for member in sorted(loop)
            for succ in graph.successors(member)
            if succ not in loop
        }
        if not direct:
            return None
        # Among nodes directly downstream of the loop, the attachment is
        # the one not downstream of any other direct successor (i.e. the
        # most upstream of them on the line).
        for node in sorted(direct):
            others = direct - {node}
            if not others:
                return node
            reaches_node = any(
                nx.has_path(graph, other, node) for other in sorted(others)
            )
            if not reaches_node:
                return node
        return min(direct)

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying precedence digraph."""
        return self._graph.copy()

    def __repr__(self) -> str:
        return (
            f"PrecedenceGraph({self._graph.number_of_nodes()} nodes, "
            f"{self._graph.number_of_edges()} edges)"
        )
