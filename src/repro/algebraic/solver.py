"""Sink-side algebraic path recovery with incremental churn repair.

The solver turns a stream of :class:`AlgebraicObservation` records -- one
per delivered packet: (evaluation point, hop count, accumulator value,
delivering neighbor, MAC-attributed last updater) -- into *confirmed
paths*.  It is the first sink component in this codebase that is stateful
across topology changes: when :mod:`repro.faults` churn rewrites a route
mid-run, the solver keeps the shared prefix of its previous estimate and
re-interpolates only the changed suffix
(:func:`repro.algebraic.field.solve_suffix`), needing as few distinct
evaluation points as there are changed hops -- instead of restarting
convergence from zero the way PNM's coupon-collection over per-hop marks
does.

Candidate acceptance is deliberately conservative; a candidate path is
confirmed only if **all** of the following hold:

* every coefficient decodes to a real sensor ID, with no repeats;
* consecutive coefficients are radio neighbors, and the final hop is a
  radio neighbor of the sink (topology admissibility);
* the final coefficient equals the delivering neighbor, and at least one
  used observation's final MAC *cryptographically* attributes that node
  (the anchor -- interpolation alone never convicts);
* every used observation is exactly explained by the candidate.

Under honest operation a wrong candidate must fake all of these at once
across multiple independent evaluation points, which the property suite
shows does not happen; garbage (from a garbling mole) simply never
confirms and is retained in a bounded pending buffer.

Determinism (the cluster-equivalence contract): the solver's output is a
pure function of the *canonically ordered* observation multiset --
:func:`solve_observations` sorts before replaying -- so a single sink and
a coordinator merging per-shard observation lists compute byte-identical
confirmed paths, whatever the arrival interleaving or shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebraic.errors import MalformedObservationError
from repro.algebraic.field import PRIME, eval_poly, interpolate, solve_suffix
from repro.algebraic.marking import MAX_PATH_LEN
from repro.net.topology import Topology

__all__ = [
    "AlgebraicObservation",
    "AlgebraicSolution",
    "AlgebraicSolver",
    "solve_observations",
]

#: Newest pending observations retained per (delivering, count) group.
#: Bounds memory and per-observation work under adversarial floods.
DEFAULT_MAX_PENDING = 128


@dataclass(frozen=True)
class AlgebraicObservation:
    """One delivered packet's algebraic evidence.

    Attributes:
        timestamp: the report timestamp (virtual milliseconds) -- the
            canonical ordering key, so replaying sorted observations
            approximates arrival order deterministically.
        point: the public evaluation point ``x`` of the report.
        count: the hop count the accumulator claims.
        value: the accumulator's polynomial evaluation ``f(x)``.
        delivering_node: the sink neighbor that physically handed the
            packet over (always known to the sink).
        last_hop: the node whose key validated the final MAC, or ``None``
            when no key validated it (tampered in the last hop's slot).
    """

    timestamp: int
    point: int
    count: int
    value: int
    delivering_node: int
    last_hop: int | None

    def as_tuple(self) -> tuple[int, int, int, int, int, int]:
        """Canonical 6-int wire/evidence form (``last_hop`` as ``+1``,
        0 meaning unattributed); tuples sort in canonical order."""
        last = 0 if self.last_hop is None else self.last_hop + 1
        return (
            self.timestamp,
            self.point,
            self.count,
            self.value,
            self.delivering_node,
            last,
        )

    @classmethod
    def from_tuple(
        cls, raw: tuple[int, int, int, int, int, int]
    ) -> "AlgebraicObservation":
        """Rebuild from :meth:`as_tuple` output.

        Raises:
            MalformedObservationError: wrong arity or negative fields
                (range checks beyond non-negativity are the solver's
                well-formedness filter, which *counts* rather than raises).
        """
        if len(raw) != 6:
            raise MalformedObservationError(
                f"observation tuple has {len(raw)} fields, expected 6"
            )
        if any(not isinstance(v, int) or v < 0 for v in raw):
            raise MalformedObservationError(
                f"observation fields must be non-negative ints: {raw!r}"
            )
        timestamp, point, count, value, delivering, last = raw
        return cls(
            timestamp=timestamp,
            point=point,
            count=count,
            value=value,
            delivering_node=delivering,
            last_hop=None if last == 0 else last - 1,
        )


@dataclass(frozen=True)
class AlgebraicSolution:
    """A deterministic snapshot of the solver's findings.

    Attributes:
        confirmed_paths: every path ever confirmed, sorted ascending --
            old routes stay (they were real when observed; precedence
            evidence is cumulative, like PNM's).
        estimates: the current path per ``(delivering_node, count)``
            group, as a sorted tuple of ``(delivering, count, path)``.
        observations / malformed / consistent: stream counters.
        full_solves: confirmations from full interpolation.
        incremental_repairs: confirmations that reused a prior estimate's
            prefix -- the churn-repair count the sweep reports.
        rejected_candidates: interpolated candidates that failed the
            admissibility/anchor checks (garbage never confirms).
    """

    confirmed_paths: tuple[tuple[int, ...], ...] = ()
    estimates: tuple[tuple[int, int, tuple[int, ...]], ...] = ()
    observations: int = 0
    malformed: int = 0
    consistent: int = 0
    full_solves: int = 0
    incremental_repairs: int = 0
    rejected_candidates: int = 0


@dataclass
class _Group:
    """Mutable per-(delivering, count) solver state."""

    estimate: tuple[int, ...] | None = None
    pending: list[AlgebraicObservation] = field(default_factory=list)


class AlgebraicSolver:
    """Incremental path recovery over an observation stream.

    Args:
        topology: the deployment graph; supplies the sensor-ID universe
            and the adjacency the admissibility checks enforce.
        max_pending: newest unexplained observations retained per
            ``(delivering, count)`` group.
    """

    def __init__(self, topology: Topology, max_pending: int = DEFAULT_MAX_PENDING):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.topology = topology
        self.max_pending = max_pending
        self._sensor_ids = frozenset(topology.sensor_nodes())
        self._groups: dict[tuple[int, int], _Group] = {}
        self._confirmed: set[tuple[int, ...]] = set()
        self.observations = 0
        self.malformed = 0
        self.consistent = 0
        self.full_solves = 0
        self.incremental_repairs = 0
        self.rejected_candidates = 0

    # Stream side -------------------------------------------------------------

    def observe(self, obs: AlgebraicObservation) -> tuple[int, ...] | None:
        """Fold one observation in; return a newly confirmed path, if any.

        Total over garbage: out-of-range fields are counted as malformed
        and dropped; inconsistent values sit in the bounded pending buffer
        until enough mutually consistent points confirm a path (or they
        age out).  Never raises on adversarial field values.
        """
        self.observations += 1
        if not self._well_formed(obs):
            self.malformed += 1
            return None
        key = (obs.delivering_node, obs.count)
        group = self._groups.setdefault(key, _Group())
        if group.estimate is not None and self._explains(group.estimate, obs):
            self.consistent += 1
            return None
        group.pending.append(obs)
        del group.pending[: -self.max_pending]
        path = self._attempt(key, group)
        if path is None:
            return None
        group.estimate = path
        self._confirmed.add(path)
        group.pending = [o for o in group.pending if not self._explains(path, o)]
        return path

    def confirmed_paths(self) -> tuple[tuple[int, ...], ...]:
        """Every confirmed path so far, sorted ascending."""
        return tuple(sorted(self._confirmed))

    def current_estimates(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """The live estimate per ``(delivering, count)`` group."""
        return {
            key: group.estimate
            for key, group in sorted(self._groups.items())
            if group.estimate is not None
        }

    def solution(self) -> AlgebraicSolution:
        """Freeze the current state into a canonical snapshot."""
        estimates = tuple(
            (key[0], key[1], group.estimate)
            for key, group in sorted(self._groups.items())
            if group.estimate is not None
        )
        return AlgebraicSolution(
            confirmed_paths=self.confirmed_paths(),
            estimates=estimates,
            observations=self.observations,
            malformed=self.malformed,
            consistent=self.consistent,
            full_solves=self.full_solves,
            incremental_repairs=self.incremental_repairs,
            rejected_candidates=self.rejected_candidates,
        )

    # Internals ---------------------------------------------------------------

    def _well_formed(self, obs: AlgebraicObservation) -> bool:
        return (
            obs.timestamp >= 0
            and 1 <= obs.point < PRIME
            and 1 <= obs.count <= MAX_PATH_LEN
            and 0 <= obs.value < PRIME
            and obs.delivering_node >= 0
            and (obs.last_hop is None or obs.last_hop >= 0)
        )

    def _explains(self, path: tuple[int, ...], obs: AlgebraicObservation) -> bool:
        """Whether ``path`` exactly accounts for ``obs``."""
        if len(path) != obs.count or path[-1] != obs.delivering_node:
            return False
        if obs.last_hop is not None and obs.last_hop != path[-1]:
            return False
        return eval_poly(path, obs.point) == obs.value

    def _attempt(
        self, key: tuple[int, int], group: _Group
    ) -> tuple[int, ...] | None:
        """Try to confirm a path for one group from its pending points.

        Tries the longest reusable prefix first (incremental repair),
        falling back to a full interpolation at prefix length 0.  All
        iteration orders are explicitly sorted -- the solver's output
        must not depend on hash order (cluster determinism contract).
        """
        delivering, count = key
        points = self._newest_distinct(group.pending)
        if not points:
            return None
        donors = sorted(
            {
                self._groups[group_key].estimate
                for group_key in sorted(self._groups)
                if self._groups[group_key].estimate is not None
            }
        )
        max_prefix = min(
            count - 1, max((len(d) for d in donors), default=0)
        )
        for prefix_len in range(max_prefix, -1, -1):
            unknown = count - prefix_len
            if len(points) < unknown:
                continue
            use = points[:unknown]
            if not any(o.last_hop == delivering for o in use):
                # No cryptographic anchor among the points that would
                # decide the candidate: interpolation alone never confirms.
                continue
            if prefix_len == 0:
                prefixes: list[tuple[int, ...]] = [()]
            else:
                prefixes = sorted(
                    {d[:prefix_len] for d in donors if len(d) >= prefix_len}
                )
            xs = tuple(o.point for o in use)
            ys = tuple(o.value for o in use)
            for prefix in prefixes:
                try:
                    suffix = (
                        solve_suffix(prefix, count, xs, ys)
                        if prefix
                        else interpolate(xs, ys)
                    )
                except (ValueError, ZeroDivisionError):  # pragma: no cover
                    continue  # distinct points make this unreachable
                candidate = tuple(prefix) + suffix
                if not self._admissible(candidate, delivering):
                    self.rejected_candidates += 1
                    continue
                if not all(self._explains(candidate, o) for o in use):
                    self.rejected_candidates += 1
                    continue
                if prefix_len:
                    self.incremental_repairs += 1
                else:
                    self.full_solves += 1
                return candidate
        return None

    def _newest_distinct(
        self, pending: list[AlgebraicObservation]
    ) -> list[AlgebraicObservation]:
        """Newest-first pending observations, one per evaluation point.

        Newest wins within a point: after churn the latest value reflects
        the current route, and interpolation needs distinct points anyway.
        """
        seen: set[int] = set()
        picked = []
        for obs in reversed(pending):
            if obs.point in seen:
                continue
            seen.add(obs.point)
            picked.append(obs)
        return picked

    def _admissible(self, candidate: tuple[int, ...], delivering: int) -> bool:
        """Topology/anchor admissibility of an interpolated candidate."""
        if not candidate or candidate[-1] != delivering:
            return False
        if len(set(candidate)) != len(candidate):
            return False
        for node in candidate:
            if node not in self._sensor_ids:
                return False
        for upstream, downstream in zip(candidate, candidate[1:]):
            if not self.topology.has_edge(upstream, downstream):
                return False
        return self.topology.has_edge(candidate[-1], self.topology.sink)

    def __repr__(self) -> str:
        return (
            f"AlgebraicSolver(observations={self.observations}, "
            f"confirmed={len(self._confirmed)})"
        )


def solve_observations(
    observations, topology: Topology, max_pending: int = DEFAULT_MAX_PENDING
) -> AlgebraicSolution:
    """Replay observations in canonical order through a fresh solver.

    The pure-function form of :class:`AlgebraicSolver`: output depends
    only on the observation *multiset* (sorted before replay), which is
    what makes the cluster coordinator's merged verdict byte-identical to
    the single sink's -- both call exactly this on the same multiset.
    """
    solver = AlgebraicSolver(topology, max_pending=max_pending)
    for obs in sorted(observations, key=AlgebraicObservation.as_tuple):
        solver.observe(obs)
    return solver.solution()
