"""Typed error taxonomy for the algebraic traceback subsystem.

Adversarial input -- corrupt accumulators, garbage observations, fields
out of range -- must surface as these types (or be absorbed as counted
malformed input), never as bare ``ValueError``/``IndexError`` escaping
from arithmetic: the property suite pins that the solver and scheme are
total over arbitrary bytes.
"""

from __future__ import annotations

__all__ = ["AlgebraicError", "MalformedAccumulatorError", "MalformedObservationError"]


class AlgebraicError(ValueError):
    """Base class for all algebraic-traceback errors."""


class MalformedAccumulatorError(AlgebraicError):
    """An on-wire accumulator field that does not parse.

    Raised by strict parsing entry points
    (:func:`repro.algebraic.marking.unpack_accumulator`).  Forwarding-path
    code never lets it propagate: an honest forwarder treats a malformed
    accumulator as absent and restarts the polynomial at itself, which is
    what turns upstream garbling into a clean suffix path at the sink.
    """


class MalformedObservationError(AlgebraicError):
    """A sink-side observation tuple with out-of-range fields."""
