"""The algebraic traceback sink: evidence, verdicts, cluster merge hooks.

:class:`AlgebraicTracebackSink` extends the scheme-agnostic
:class:`~repro.traceback.sink.TracebackSink` with the algebraic evidence
stream: every ingested packet also yields an
:class:`~repro.algebraic.solver.AlgebraicObservation`, fed both to a live
incremental solver (cheap per-packet state for convergence probes) and
into the evidence snapshot (``SinkEvidence.algebraic``) that rides SUMMARY
frames to the cluster coordinator.

The verdict contract mirrors the base sink's exactly: the verdict is a
pure function of the canonical evidence record plus the topology
(:func:`algebraic_verdict`), so a single sink and a coordinator merging
N shards' evidence run the *same* code over the same observation multiset
and produce byte-identical answers -- including after a mid-run shard
kill-and-replace, because observations merge as a sorted multiset union
the way counters merge as sums.

False-accusation safety: solver-confirmed paths feed the *precedence*
(route) side of the verdict only.  Accusations still require tamper
evidence -- an invalid final MAC -- which benign churn cannot forge
(crashing a node never breaks a key), so the honest false-accusation rate
through :func:`repro.faults.attribution.accusation_report` stays exactly
0.0, the invariant the property suite pins for this sink as it does for
PNM's.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algebraic.marking import AlgebraicMarking, unpack_accumulator
from repro.algebraic.errors import MalformedAccumulatorError
from repro.algebraic.field import evaluation_point
from repro.algebraic.solver import (
    AlgebraicObservation,
    AlgebraicSolver,
    solve_observations,
)
from repro.net.topology import Topology
from repro.obs.profiling import NoopObsProvider, ObsProvider
from repro.traceback.reconstruct import PrecedenceGraph
from repro.traceback.sink import (
    SinkEvidence,
    TracebackSink,
    TracebackVerdict,
    compute_verdict,
    evidence_precedence,
)
from repro.traceback.verify import PacketVerification

__all__ = [
    "AlgebraicTracebackSink",
    "observation_from",
    "algebraic_precedence",
    "algebraic_verdict",
]


def observation_from(
    verification: PacketVerification, delivering_node: int
) -> AlgebraicObservation | None:
    """Extract one packet's algebraic observation, or ``None``.

    ``None`` means the packet carries no parseable accumulator (wrong
    mark count, malformed field) -- it still contributed tamper/counter
    evidence through the base sink, it just cannot feed interpolation.
    The MAC-attributed last updater comes from the packet verification:
    a verified final mark pins ``last_hop``; an invalid one leaves the
    observation unanchored (and the base sink records the tamper stop).
    """
    packet = verification.packet
    if len(packet.marks) != 1:
        return None
    try:
        count, value = unpack_accumulator(packet.marks[0].id_field)
    except MalformedAccumulatorError:
        return None
    last_hop = None
    if verification.verified and not verification.invalid_indices:
        last_hop = verification.verified[-1].real_id
    return AlgebraicObservation(
        timestamp=packet.report.timestamp,
        point=evaluation_point(packet.report_wire),
        count=count,
        value=value,
        delivering_node=delivering_node,
        last_hop=last_hop,
    )


def algebraic_precedence(
    evidence: SinkEvidence, topology: Topology
) -> PrecedenceGraph:
    """The precedence graph an evidence record implies, algebraic included.

    Rebuilds the base per-packet precedence
    (:func:`~repro.traceback.sink.evidence_precedence`) and overlays every
    solver-confirmed path as a chain.  Confirmed paths come from the pure
    :func:`~repro.algebraic.solver.solve_observations` over the canonical
    observation multiset, so identical evidence implies identical graphs
    wherever this runs (single sink or coordinator).
    """
    precedence = evidence_precedence(evidence)
    if evidence.algebraic:
        solution = solve_observations(
            (AlgebraicObservation.from_tuple(raw) for raw in evidence.algebraic),
            topology,
        )
        for path in solution.confirmed_paths:
            precedence.add_chain(list(path))
    return precedence


def algebraic_verdict(
    evidence: SinkEvidence,
    topology: Topology,
    obs: ObsProvider | NoopObsProvider | None = None,
) -> TracebackVerdict:
    """The verdict over algebraic evidence, as a pure function.

    Exactly :func:`~repro.traceback.sink.compute_verdict` with the
    algebraic-augmented precedence graph; shared by
    :meth:`AlgebraicTracebackSink.verdict` and the cluster coordinator.
    """
    return compute_verdict(
        algebraic_precedence(evidence, topology),
        dict(evidence.tamper_stops),
        evidence.tampered_packets,
        evidence.chains_with_marks,
        evidence.packets_received,
        topology,
        evidence.delivering_node,
        obs=obs,
    )


class AlgebraicTracebackSink(TracebackSink):
    """A traceback sink whose state survives topology changes.

    Drop-in replacement for :class:`~repro.traceback.sink.TracebackSink`
    wherever the deployed scheme is :class:`AlgebraicMarking` -- the
    simulator, the ingest service, and the cluster harness all accept it
    unchanged (same ``receive``/``ingest``/``verdict``/``evidence``
    surface).

    Args:
        scheme: must be an :class:`AlgebraicMarking` instance.
        (remaining arguments as for the base sink.)
    """

    def __init__(self, scheme, keystore, provider, topology, resolver=None, obs=None):
        if not isinstance(scheme, AlgebraicMarking):
            raise TypeError(
                "AlgebraicTracebackSink requires an AlgebraicMarking scheme, "
                f"got {type(scheme).__name__}"
            )
        super().__init__(scheme, keystore, provider, topology, resolver, obs)
        self.solver = AlgebraicSolver(topology)
        self._observations: list[AlgebraicObservation] = []

    def ingest(
        self, verification: PacketVerification, delivering_node: int
    ) -> PacketVerification:
        result = super().ingest(verification, delivering_node)
        observation = observation_from(verification, delivering_node)
        if observation is not None:
            self._observations.append(observation)
            confirmed = self.solver.observe(observation)
            self.obs.inc("algebraic_observations_total")
            if confirmed is not None:
                self.obs.inc("algebraic_paths_confirmed_total")
        return result

    def evidence(self) -> SinkEvidence:
        base = super().evidence()
        return replace(
            base,
            algebraic=tuple(
                sorted(obs.as_tuple() for obs in self._observations)
            ),
        )

    def verdict(self) -> TracebackVerdict:
        """Verdict via the shared pure function over this sink's evidence.

        Deliberately *not* the live solver: re-solving the canonical
        multiset is what guarantees byte-identity with a coordinator that
        merged this sink's evidence (the live solver saw arrival order,
        which ties to canonical order only up to timestamp ties).
        """
        return algebraic_verdict(self.evidence(), self.topology, obs=self.obs)

    def confirmed_paths(self) -> tuple[tuple[int, ...], ...]:
        """Live solver's confirmed paths (cheap, per-packet-incremental)."""
        return self.solver.confirmed_paths()

    def __repr__(self) -> str:
        return (
            f"AlgebraicTracebackSink(packets={self.packets_received}, "
            f"confirmed={len(self.solver.confirmed_paths())})"
        )
