"""Incremental algebraic traceback for dynamic networks.

Implements the path-as-polynomial traceback of *On Algebraic Traceback in
Dynamic Networks* (arXiv:0908.0078) on top of this repo's PNM
infrastructure, as the ROADMAP's dynamic-network extension:

* :mod:`repro.algebraic.field` -- prime-field arithmetic: per-report
  evaluation points, Horner updates, Lagrange interpolation, and the
  suffix solve that makes repair incremental.
* :mod:`repro.algebraic.marking` -- :class:`AlgebraicMarking`, a
  :class:`~repro.marking.base.MarkingScheme` whose single accumulator
  mark is *replaced* per hop (constant byte overhead), registered as
  ``"algebraic"`` in :mod:`repro.marking`.
* :mod:`repro.algebraic.solver` -- :class:`AlgebraicSolver`, the sink
  component that interpolates paths and repairs its estimate across
  :mod:`repro.faults` churn instead of restarting convergence.
* :mod:`repro.algebraic.sink` -- :class:`AlgebraicTracebackSink`, the
  drop-in sink wiring observations into evidence, verdicts, and the
  cluster merge path.

See ``docs/algebraic.md`` for the protocol, its threat model relative to
PNM, and the head-to-head churn results (``algebraic-sweep``).
"""

from repro.algebraic.errors import (
    AlgebraicError,
    MalformedAccumulatorError,
    MalformedObservationError,
)
from repro.algebraic.field import (
    PRIME,
    eval_poly,
    evaluation_point,
    horner_step,
    interpolate,
    solve_suffix,
)
from repro.algebraic.marking import (
    MAX_PATH_LEN,
    AlgebraicMarking,
    pack_accumulator,
    unpack_accumulator,
)
from repro.algebraic.sink import (
    AlgebraicTracebackSink,
    algebraic_precedence,
    algebraic_verdict,
    observation_from,
)
from repro.algebraic.solver import (
    AlgebraicObservation,
    AlgebraicSolution,
    AlgebraicSolver,
    solve_observations,
)

__all__ = [
    "PRIME",
    "MAX_PATH_LEN",
    "AlgebraicError",
    "MalformedAccumulatorError",
    "MalformedObservationError",
    "evaluation_point",
    "horner_step",
    "eval_poly",
    "interpolate",
    "solve_suffix",
    "AlgebraicMarking",
    "pack_accumulator",
    "unpack_accumulator",
    "AlgebraicObservation",
    "AlgebraicSolution",
    "AlgebraicSolver",
    "solve_observations",
    "AlgebraicTracebackSink",
    "observation_from",
    "algebraic_precedence",
    "algebraic_verdict",
]
