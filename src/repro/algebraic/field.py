"""Prime-field arithmetic for algebraic traceback (arXiv:0908.0078).

The algebraic scheme encodes a forwarding path ``V_1 ... V_m`` as the
degree-``m-1`` polynomial ``f(x) = V_1 x^{m-1} + V_2 x^{m-2} + ... + V_m``
over a prime field.  Each hop maintains a single *evaluation* of ``f`` at a
per-report point ``x`` via one Horner step -- ``f <- f*x + node_id`` -- so
the per-packet overhead is constant regardless of path length.  The sink,
collecting evaluations at ``m`` distinct points, recovers the coefficients
(and hence the ordered path) by Lagrange interpolation.

The modulus is the Mersenne prime ``2^31 - 1``: field elements fit the
4-byte accumulator the wire format carries, and every node ID in any
supported deployment is a valid coefficient.

The evaluation point is *public* and deterministic -- derived by hashing
the report bytes -- so honest forwarders need no coordination and the sink
needs no side channel; distinct reports give (essentially always) distinct
points, which is exactly what interpolation needs.  It is not secret
material: path *authentication* comes from the delivering node's MAC, not
from the point (see :mod:`repro.algebraic.marking`).
"""

from __future__ import annotations

import hashlib

__all__ = [
    "PRIME",
    "evaluation_point",
    "horner_step",
    "eval_poly",
    "interpolate",
    "solve_suffix",
]

#: Field modulus: the Mersenne prime 2^31 - 1.  Fits 4 bytes; comfortably
#: larger than any node-ID space the simulations use.
PRIME = (1 << 31) - 1

_POINT_DOMAIN = b"algebraic-point\x00"


def evaluation_point(report_wire: bytes) -> int:
    """The public per-report evaluation point ``x`` in ``[1, PRIME - 1]``.

    Derived from the report bytes with a domain-separated hash, so every
    honest node and the sink agree on it without coordination, and
    distinct reports land on distinct points except with negligible
    (``~ m^2 / 2^31``) collision probability -- collisions only cost the
    solver one redundant observation, never correctness.
    """
    digest = hashlib.sha256(_POINT_DOMAIN + report_wire).digest()
    return 1 + int.from_bytes(digest[:8], "big") % (PRIME - 1)


def horner_step(value: int, point: int, node_id: int) -> int:
    """One per-hop accumulator update: ``f <- f * x + node_id (mod p)``."""
    return (value * point + node_id) % PRIME


def eval_poly(coeffs: tuple[int, ...] | list[int], point: int) -> int:
    """Evaluate ``sum(coeffs[i] * x^(m-1-i))`` at ``point`` by Horner.

    ``coeffs`` is highest-degree first -- the most upstream forwarder
    first, matching path order.  The empty polynomial evaluates to 0.
    """
    value = 0
    for coeff in coeffs:
        value = (value * point + coeff) % PRIME
    return value


def _inverse(value: int) -> int:
    """Multiplicative inverse mod PRIME (Fermat; PRIME is prime)."""
    if value % PRIME == 0:
        raise ZeroDivisionError("0 has no inverse in the field")
    return pow(value, PRIME - 2, PRIME)


def interpolate(
    xs: tuple[int, ...] | list[int], ys: tuple[int, ...] | list[int]
) -> tuple[int, ...]:
    """Coefficients of the unique degree ``< len(xs)`` polynomial through
    the points ``(xs[j], ys[j])``, highest-degree first.

    Classic Lagrange interpolation in coefficient form, ``O(m^2)``: the
    master product ``N(z) = prod(z - x_j)`` is expanded once; each basis
    numerator ``N(z) / (z - x_j)`` comes from synthetic division and each
    denominator is ``N'(x_j)``.

    Raises:
        ValueError: on duplicate evaluation points or empty input.
    """
    m = len(xs)
    if m == 0 or m != len(ys):
        raise ValueError(f"need matching non-empty points, got {m}/{len(ys)}")
    if len(set(xs)) != m:
        raise ValueError("duplicate evaluation points")
    # N(z) = prod (z - x_j), highest-degree first.
    master = [1]
    for x in xs:
        nxt = [0] * (len(master) + 1)
        for i, coeff in enumerate(master):
            nxt[i] = (nxt[i] + coeff) % PRIME
            nxt[i + 1] = (nxt[i + 1] - coeff * x) % PRIME
        master = nxt
    result = [0] * m
    for x, y in zip(xs, ys):
        # Synthetic division: quotient of N(z) by (z - x), degree m-1.
        quotient = [0] * m
        carry = 0
        for i in range(m):
            carry = (master[i] + carry * x) % PRIME
            quotient[i] = carry
        # Denominator N'(x) = prod_{l != j} (x_j - x_l) = quotient(x).
        denom = eval_poly(quotient, x)
        scale = (y * _inverse(denom)) % PRIME
        for i in range(m):
            result[i] = (result[i] + scale * quotient[i]) % PRIME
    return tuple(result)


def solve_suffix(
    prefix: tuple[int, ...] | list[int],
    total_len: int,
    xs: tuple[int, ...] | list[int],
    ys: tuple[int, ...] | list[int],
) -> tuple[int, ...]:
    """Recover the unknown suffix of a path whose prefix is already known.

    This is the incremental-repair primitive: when churn rewrites a route
    but the first ``len(prefix)`` hops are unchanged, the known prefix's
    contribution ``Pref(x) * x^(total_len - len(prefix))`` is subtracted
    from each observed evaluation and only the remaining
    ``total_len - len(prefix)`` coefficients are interpolated -- needing
    that many distinct points instead of ``total_len``.

    Args:
        prefix: the known leading coefficients (most upstream first).
        total_len: the full path length the observations claim.
        xs / ys: distinct evaluation points and observed values of the
            *full* polynomial; exactly ``total_len - len(prefix)`` of each.

    Raises:
        ValueError: if the prefix is not shorter than ``total_len`` or the
            point count does not match the unknown suffix length.
    """
    unknown = total_len - len(prefix)
    if unknown < 1:
        raise ValueError(
            f"prefix of {len(prefix)} leaves no unknown suffix of {total_len}"
        )
    if len(xs) != unknown or len(ys) != unknown:
        raise ValueError(
            f"need exactly {unknown} points, got {len(xs)}/{len(ys)}"
        )
    shifted = [
        (y - eval_poly(prefix, x) * pow(x, unknown, PRIME)) % PRIME
        for x, y in zip(xs, ys)
    ]
    return interpolate(xs, shifted)
