"""The algebraic marking scheme: one constant-size accumulator per packet.

Where every other scheme in :mod:`repro.marking` *appends* a mark per hop,
``AlgebraicMarking`` carries exactly one mark and *replaces* it at every
hop: the ID field is an accumulator ``[count u8 | value u32]`` holding the
hop count and the running polynomial evaluation
``f(x) = V_1 x^{m-1} + ... + V_m (mod 2^31 - 1)`` at the public per-report
point ``x`` (:func:`repro.algebraic.field.evaluation_point`); the MAC is
the *current* hop's ``H_k(M | accumulator)``.  Per-packet overhead is a
constant ``1 + 4 + mac_len`` bytes however long the route grows -- the
property the head-to-head sweep quantifies against PNM.

What the MAC does and does not promise: only the **last** updater is
cryptographically attributed (its key must validate the final mark), which
anchors the recovered path's terminal hop; the upstream coefficients are
algebraic evidence, corroborated by interpolation consistency across
packets and topology admissibility, not by per-hop MACs.  That is the
algebraic-traceback trade-off (arXiv:0908.0078): constant overhead and
churn-repairable sink state, in exchange for Theorem-2-style per-hop
attribution.  ``docs/algebraic.md`` spells out the resulting threat model.

Honest forwarders are *total* over adversarial input: a malformed
accumulator (wrong size, value outside the field, count out of range, or a
wrong number of marks on the packet) is treated as absent and the
polynomial restarts at the current node.  A mole garbling the accumulator
therefore truncates the recoverable path to the suffix starting at its
next honest hop -- localizing the mole to one hop, the same place PNM's
invalid-MAC evidence points.
"""

from __future__ import annotations

from repro.algebraic.errors import MalformedAccumulatorError
from repro.algebraic.field import PRIME, evaluation_point, horner_step
from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider, constant_time_equal
from repro.marking.base import MarkingScheme, NodeContext
from repro.packets.marks import Mark, MarkFormat
from repro.packets.packet import MarkedPacket

__all__ = [
    "AlgebraicMarking",
    "MAX_PATH_LEN",
    "pack_accumulator",
    "unpack_accumulator",
]

#: Longest path the 1-byte hop counter admits.  Well above any simulated
#: deployment's diameter; counts outside ``[1, MAX_PATH_LEN]`` are
#: malformed, which bounds solver work per observation.
MAX_PATH_LEN = 64

_COUNT_LEN = 1
_VALUE_LEN = 4
ACCUMULATOR_LEN = _COUNT_LEN + _VALUE_LEN


def pack_accumulator(count: int, value: int) -> bytes:
    """Encode ``[count u8 | value u32]`` (big-endian)."""
    if not 1 <= count <= MAX_PATH_LEN:
        raise ValueError(f"count {count} outside [1, {MAX_PATH_LEN}]")
    if not 0 <= value < PRIME:
        raise ValueError(f"value {value} outside the field")
    return bytes((count,)) + value.to_bytes(_VALUE_LEN, "big")


def unpack_accumulator(id_field: bytes) -> tuple[int, int]:
    """Strictly parse an accumulator ID field into ``(count, value)``.

    Raises:
        MalformedAccumulatorError: wrong length, count outside
            ``[1, MAX_PATH_LEN]``, or value outside the field.
    """
    if len(id_field) != ACCUMULATOR_LEN:
        raise MalformedAccumulatorError(
            f"accumulator field has {len(id_field)} bytes, "
            f"expected {ACCUMULATOR_LEN}"
        )
    count = id_field[0]
    value = int.from_bytes(id_field[_COUNT_LEN:], "big")
    if not 1 <= count <= MAX_PATH_LEN:
        raise MalformedAccumulatorError(
            f"hop count {count} outside [1, {MAX_PATH_LEN}]"
        )
    if value >= PRIME:
        raise MalformedAccumulatorError(f"value {value} outside the field")
    return count, value


class AlgebraicMarking(MarkingScheme):
    """Incremental algebraic path marking (single replaced accumulator)."""

    name = "algebraic"
    # The packet carries a single mark; backward scanning over it degrades
    # to "verify the final mark", which is exactly the anchor semantics.
    verification_policy = "suffix"

    def __init__(self, mark_prob: float = 1.0, mac_len: int = 4):
        if mark_prob != 1.0:
            raise ValueError(
                "algebraic marking is deterministic: every hop must apply "
                f"its Horner update (mark_prob must be 1.0, got {mark_prob})"
            )
        super().__init__(
            MarkFormat(id_len=ACCUMULATOR_LEN, mac_len=mac_len, algebraic=True),
            mark_prob,
        )

    # Node side --------------------------------------------------------------

    def accumulator_state(self, packet: MarkedPacket) -> tuple[int, int]:
        """The ``(count, value)`` an honest forwarder continues from.

        Total over adversarial input: anything other than exactly one
        well-formed accumulator mark resets to ``(0, 0)`` -- the restart
        that truncates a garbled path at the next honest hop.
        """
        if len(packet.marks) != 1:
            return 0, 0
        try:
            count, value = unpack_accumulator(packet.marks[0].id_field)
        except MalformedAccumulatorError:
            return 0, 0
        if count >= MAX_PATH_LEN:
            # Counter would overflow; restart rather than wrap (a wrapped
            # count would let garbage masquerade as a short honest path).
            return 0, 0
        return count, value

    def on_forward(self, ctx: NodeContext, packet: MarkedPacket) -> MarkedPacket:
        """Replace the accumulator with this hop's Horner update.

        The marking coin is still drawn (and ignored) so honest nodes
        consume identical randomness across schemes, keeping paired
        experiment runs comparable -- see :meth:`MarkingScheme.on_forward`.
        """
        ctx.rng.random()
        return packet.with_marks((self.make_mark(ctx, packet),))

    def _build_mark(
        self, ctx: NodeContext, packet: MarkedPacket, written_id: int
    ) -> Mark:
        count, value = self.accumulator_state(packet)
        point = evaluation_point(packet.report_wire)
        id_field = pack_accumulator(
            count + 1, horner_step(value, point, written_id % PRIME)
        )
        mac = ctx.provider.mac(ctx.key, packet.report_wire + id_field)
        return Mark(id_field=id_field, mac=mac)

    # Sink side ---------------------------------------------------------------

    def candidate_marker_ids(
        self,
        packet: MarkedPacket,
        mark_index: int,
        keystore: KeyStore,
        provider: MacProvider,
        search_ids: list[int] | None = None,
        table: object | None = None,
    ) -> list[int]:
        """Every keyed node is a candidate last updater.

        The accumulator carries no per-node ID field, so attribution is a
        pure key search: the node whose key validates the final MAC is the
        last updater.  Bounded resolvers narrow ``search_ids`` to the
        sink's radio neighborhood exactly as for PNM.
        """
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return []
        ids = keystore.node_ids() if search_ids is None else search_ids
        return [node_id for node_id in ids if keystore.get(node_id) is not None]

    def verify_mark_as(
        self,
        packet: MarkedPacket,
        mark_index: int,
        node_id: int,
        key: bytes,
        provider: MacProvider,
    ) -> bool:
        mark = packet.marks[mark_index]
        if not mark.matches_format(self.fmt):
            return False
        expected = provider.mac(key, packet.report_wire + mark.id_field)
        return constant_time_equal(expected, mark.mac)
