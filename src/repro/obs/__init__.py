"""repro.obs: unified metrics, tracing and profiling.

The paper's headline claims are quantitative -- marks per packet
``n*p ~= 3`` (Section 5), one-hop precision, sink-side brute-force cost
(Section 6) -- and a production-scale deployment (the ROADMAP north-star)
has to expose those numbers live, not reconstruct them from print
statements.  This package is the single observability surface the rest of
the repo reports into:

* :class:`MetricsRegistry` -- named, labeled instruments
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) with
  deterministic Prometheus-text and JSON exporters
  (:mod:`repro.obs.exporters`);
* :class:`Tracer` / :class:`Span` -- explicit-context span tracing, so one
  trace id follows a report from injection through every forwarding hop,
  the ingest queue, verification, and the sink's verdict
  (:mod:`repro.obs.spans`);
* :class:`ObsProvider` -- the profiling facade hot paths call; the
  :data:`NOOP` provider reduces every hook to a no-op so instrumentation
  can ship enabled-by-default at near-zero cost
  (:mod:`repro.obs.profiling`);
* :class:`RunManifest` -- machine-readable provenance (args, seed, git
  revision, wall time, final registry snapshot) written by the
  experiments CLI, rendered back by ``python -m repro.obs report``
  (:mod:`repro.obs.manifest`, :mod:`repro.obs.report`).

Every clock in this package is injectable; simulation code passes the
event engine's virtual clock, the service layer the wall clock.  The only
direct wall-clock reads live in :mod:`repro.obs.manifest` (provenance
timestamps) and are explicitly marked for the RL006 linter.
"""

from repro.obs.exporters import (
    parse_prometheus_text,
    registry_to_json,
    to_prometheus_text,
)
from repro.obs.instruments import Counter, Gauge, Histogram, HistogramSeries
from repro.obs.manifest import RunManifest, git_revision
from repro.obs.profiling import (
    NOOP,
    NoopObsProvider,
    ObsProvider,
    get_default_provider,
    resolve_provider,
    set_default_provider,
    timed,
    use_provider,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, SpanContext, Tracer, report_key
from repro.obs.telemetry import (
    SHARD_LABEL,
    ClusterSlo,
    FederatedTelemetry,
    ShardSlo,
    compute_cluster_slo,
    federate_snapshots,
    format_status,
)

__all__ = [
    "ClusterSlo",
    "Counter",
    "FederatedTelemetry",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "NOOP",
    "NoopObsProvider",
    "ObsProvider",
    "RunManifest",
    "SHARD_LABEL",
    "ShardSlo",
    "Span",
    "SpanContext",
    "Tracer",
    "compute_cluster_slo",
    "federate_snapshots",
    "format_status",
    "get_default_provider",
    "git_revision",
    "parse_prometheus_text",
    "registry_to_json",
    "report_key",
    "resolve_provider",
    "set_default_provider",
    "timed",
    "to_prometheus_text",
    "use_provider",
]
