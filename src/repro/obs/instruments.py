"""Metric instruments: labeled counters, gauges, and log-bucket histograms.

The three instrument kinds follow the Prometheus data model closely enough
that the text exporter is a direct rendering: an instrument owns a metric
*name* and a fixed tuple of *label names*; each distinct label-value
combination is one time series.  All instruments are thread-safe -- the
service layer observes from pool workers -- and all iteration is over
sorted keys so snapshots and exports are deterministic (the RL004
contract extends to this package).

:class:`HistogramSeries` is the generalization of the ingest service's
``LatencyHistogram``: the same power-of-two bucket layout, but unit-neutral
and with an O(1) bucket index (``math.log2`` plus a one-step boundary
correction) instead of the original linear bound scan.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "bucket_index",
]

#: Default histogram range: 1 microsecond to ~16 seconds in powers of two.
DEFAULT_MIN_BUCKET = 1e-6
DEFAULT_NUM_BUCKETS = 24

LabelValues = tuple[str, ...]


def bucket_index(value: float, min_bucket: float, num_buckets: int) -> int:
    """The power-of-two bucket holding ``value``, in O(1).

    Returns the smallest ``i`` with ``value <= min_bucket * 2**i``, or
    ``num_buckets`` (the overflow bucket) when ``value`` exceeds every
    bound.  Values at or below ``min_bucket`` (including zero and
    negatives) land in bucket 0, matching the linear scan this replaces.

    ``math.log2`` gives the candidate index directly, but floating-point
    rounding at an exact bound can land one bucket off in either
    direction; the two single-step corrections below restore the exact
    ``value <= bound`` semantics, keeping the whole computation O(1).
    """
    if value <= min_bucket:
        return 0
    index = math.ceil(math.log2(value / min_bucket))
    if index >= num_buckets:
        index = num_buckets
    # value fits one bucket lower than log2 suggested (rounded up too far).
    if index > 0 and value <= min_bucket * 2.0 ** (index - 1):
        index -= 1
    # value exceeds the suggested bound (rounded down too far).
    if index < num_buckets and value > min_bucket * 2.0**index:
        index += 1
    return index


class _Instrument:
    """Shared plumbing: name, label names, per-series storage, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"metric name must be a [a-zA-Z0-9_]+ token, got {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _label_key(self, labels: dict[str, Any]) -> LabelValues:
        """Validate ``labels`` against the declared names; return the key."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} declares labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Instrument):
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[LabelValues, float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def get(self, **labels: Any) -> float:
        """Current value of one series (0.0 if never incremented)."""
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> list[tuple[LabelValues, float]]:
        """Every series as ``(label_values, value)``, sorted by labels."""
        with self._lock:
            items = list(self._values.items())
        return sorted(items)

    def _restore(self, key: LabelValues, value: float) -> None:
        with self._lock:
            self._values[key] = value


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, cache size...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[LabelValues, float] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to the selected series."""
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def get(self, **labels: Any) -> float:
        """Current value of one series (0.0 if never set)."""
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> list[tuple[LabelValues, float]]:
        """Every series as ``(label_values, value)``, sorted by labels."""
        with self._lock:
            items = list(self._values.items())
        return sorted(items)

    def _restore(self, key: LabelValues, value: float) -> None:
        with self._lock:
            self._values[key] = value


class HistogramSeries:
    """One log-bucketed distribution (the math behind :class:`Histogram`).

    Buckets are powers of two starting at ``min_bucket``; observations
    above the last bound land in an overflow bucket.  Thread-safe.  Bucket
    assignment is O(1) via :func:`bucket_index`.
    """

    def __init__(
        self,
        min_bucket: float = DEFAULT_MIN_BUCKET,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ):
        if min_bucket <= 0:
            raise ValueError(f"min_bucket must be positive, got {min_bucket}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.min_bucket = min_bucket
        self.num_buckets = num_buckets
        self._bounds = [min_bucket * (2.0**i) for i in range(num_buckets)]
        # One extra bucket catches overflow past the largest bound.
        self._counts = [0] * (num_buckets + 1)  # guarded-by: _lock
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.min = float("inf")  # guarded-by: _lock
        self.max = 0.0  # guarded-by: _lock

    def observe(self, value: float, times: int = 1) -> None:
        """Record ``times`` observations of ``value`` each."""
        if times < 1:
            return
        index = bucket_index(value, self.min_bucket, self.num_buckets)
        with self._lock:
            self._counts[index] += times
            self.count += times
            self.total += value * times
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                return self._bounds[i] if i < len(self._bounds) else self.max
        return self.max

    def bucket_counts(self) -> list[int]:
        """A copy of the raw per-bucket counts (overflow bucket last)."""
        with self._lock:
            return list(self._counts)

    def as_dict(self) -> dict[str, Any]:
        """Summary plus the non-empty buckets (``le`` upper bounds)."""
        with self._lock:
            counts = list(self._counts)
            count = self.count
        return {
            "count": count,
            "mean": self.mean,
            "min": self.min if count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "buckets": [
                {"le": self._bounds[i] if i < len(self._bounds) else None, "count": c}
                for i, c in enumerate(counts)
                if c
            ],
        }

    def _restore(
        self, counts: list[int], count: int, total: float, min_: float, max_: float
    ) -> None:
        with self._lock:
            self._counts = list(counts)
            self.count = count
            self.total = total
            self.min = min_
            self.max = max_


class Histogram(_Instrument):
    """A labeled family of :class:`HistogramSeries` distributions."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        min_bucket: float = DEFAULT_MIN_BUCKET,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        self.min_bucket = min_bucket
        self.num_buckets = num_buckets
        self._series: dict[LabelValues, HistogramSeries] = {}  # guarded-by: _lock

    def observe(self, value: float, times: int = 1, **labels: Any) -> None:
        """Record observations into the series selected by ``labels``."""
        self.data(**labels).observe(value, times=times)

    def data(self, **labels: Any) -> HistogramSeries:
        """The :class:`HistogramSeries` behind one label combination."""
        key = self._label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = HistogramSeries(self.min_bucket, self.num_buckets)
                self._series[key] = series
        return series

    def series(self) -> list[tuple[LabelValues, HistogramSeries]]:
        """Every series as ``(label_values, data)``, sorted by labels."""
        with self._lock:
            items = list(self._series.items())
        return sorted(items, key=lambda kv: kv[0])
