"""Metrics federation: per-shard registry snapshots into one registry.

Each shard serves its own :class:`~repro.obs.registry.MetricsRegistry`
over the TELEMETRY wire frame
(:func:`~repro.wire.messages.encode_telemetry`); the coordinator merges
the snapshots here by *prepending a ``shard`` label* to every series, so
nothing is summed away -- a federated registry holds exactly the union
of the shards' series, distinguishable per shard and still exportable
through the ordinary Prometheus/JSON exporters.

Federation is lossless and deterministic: shard ids are processed in
sorted order, snapshots are the registry's own canonical form, and
federating the same snapshots twice yields byte-identical exports.  It
is also a pure read path -- snapshots are consumed, never written back
to a shard -- which is what keeps telemetry observation-only.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.obs.instruments import DEFAULT_MIN_BUCKET, DEFAULT_NUM_BUCKETS
from repro.obs.registry import MetricsRegistry

__all__ = ["SHARD_LABEL", "FederatedTelemetry", "federate_snapshots"]

#: The label federation prepends to every series to name its shard.
SHARD_LABEL = "shard"


def federate_snapshots(
    per_shard: Mapping[int | str, dict[str, Any]],
) -> MetricsRegistry:
    """Merge per-shard registry snapshots into one shard-labeled registry.

    Args:
        per_shard: shard id -> the shard's
            :meth:`~repro.obs.registry.MetricsRegistry.snapshot` dict.

    Returns:
        A registry in which every instrument carries the shards' label
        names with :data:`SHARD_LABEL` prepended, and every series the
        originating shard id (as a string) as its first label value.

    Raises:
        ValueError: when two shards disagree about an instrument's kind
            or label names (a version-skewed deployment), or a snapshot
            names :data:`SHARD_LABEL` itself.
    """
    federated = MetricsRegistry()
    for shard_id in sorted(per_shard, key=str):
        shard_value = str(shard_id)
        for entry in per_shard[shard_id].get("metrics", []):
            name = entry["name"]
            labels = tuple(entry.get("label_names", ()))
            if SHARD_LABEL in labels:
                raise ValueError(
                    f"metric {name!r} from shard {shard_value} already "
                    f"carries a {SHARD_LABEL!r} label; federation cannot "
                    "disambiguate it"
                )
            fed_labels = (SHARD_LABEL, *labels)
            kind = entry["kind"]
            help_text = entry.get("help", "")
            if kind == "counter":
                instrument: Any = federated.counter(name, help_text, fed_labels)
                for series in entry.get("series", []):
                    instrument._restore(
                        (shard_value, *series["labels"]), series["value"]
                    )
            elif kind == "gauge":
                instrument = federated.gauge(name, help_text, fed_labels)
                for series in entry.get("series", []):
                    instrument._restore(
                        (shard_value, *series["labels"]), series["value"]
                    )
            elif kind == "histogram":
                instrument = federated.histogram(
                    name,
                    help_text,
                    fed_labels,
                    min_bucket=entry.get("min_bucket", DEFAULT_MIN_BUCKET),
                    num_buckets=entry.get("num_buckets", DEFAULT_NUM_BUCKETS),
                )
                for series in entry.get("series", []):
                    data = instrument.data(
                        **dict(
                            zip(
                                fed_labels,
                                (shard_value, *series["labels"]),
                                strict=True,
                            )
                        )
                    )
                    data._restore(
                        series["bucket_counts"],
                        series["count"],
                        series["total"],
                        series["min"] if series["count"] else float("inf"),
                        series["max"],
                    )
            else:
                raise ValueError(
                    f"unknown instrument kind {kind!r} in shard "
                    f"{shard_value} snapshot"
                )
    return federated


class FederatedTelemetry:
    """Accumulates per-shard snapshots and serves the federated view.

    The coordinator-side holder: :meth:`ingest` stores (or replaces) one
    shard's latest snapshot; :meth:`registry` federates whatever has
    been ingested so far.  Replacement (not merging) per shard is
    deliberate -- registry snapshots are cumulative, so the newest poll
    supersedes older ones, and a shard that was replaced after a crash
    simply starts its counters over.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, dict[str, Any]] = {}

    def ingest(self, shard_id: int | str, snapshot: dict[str, Any]) -> None:
        """Store ``shard_id``'s latest snapshot (replacing any previous)."""
        self._snapshots[str(shard_id)] = snapshot

    def forget(self, shard_id: int | str) -> None:
        """Drop a shard's snapshot (a shard evicted from the cluster)."""
        self._snapshots.pop(str(shard_id), None)

    @property
    def shard_ids(self) -> list[str]:
        """Shards with an ingested snapshot, sorted."""
        return sorted(self._snapshots)

    def registry(self) -> MetricsRegistry:
        """The federated registry over every ingested snapshot."""
        return federate_snapshots(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __repr__(self) -> str:
        return f"FederatedTelemetry({len(self)} shards)"
