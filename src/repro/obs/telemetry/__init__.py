"""repro.obs.telemetry: cross-process observability for the cluster.

Single-process observability (:mod:`repro.obs`) stops at the wire: trace
ids die at the frame boundary and each shard keeps a private
:class:`~repro.obs.registry.MetricsRegistry`.  This package is the
distributed half:

* **federation** -- merge per-shard registry snapshots (shipped over the
  TELEMETRY wire frame) into one shard-labeled registry with the usual
  Prometheus/JSON exporters (:mod:`repro.obs.telemetry.federation`);
* **SLOs** -- derive the paper's headline quantities
  (packets-to-conviction, accusation->fusion latency, per-shard queue
  depth / backpressure / reroute rates) from the federated view
  (:mod:`repro.obs.telemetry.slo`).

Trace-context *propagation* lives in the wire layer itself
(:class:`~repro.wire.frames.WireTraceContext`); this package only ever
reads what the shards emitted -- federation is a pure read path, so
enabling telemetry cannot change a verdict.
"""

from repro.obs.telemetry.federation import (
    SHARD_LABEL,
    FederatedTelemetry,
    federate_snapshots,
)
from repro.obs.telemetry.slo import (
    ClusterSlo,
    ShardSlo,
    compute_cluster_slo,
    format_status,
)

__all__ = [
    "SHARD_LABEL",
    "ClusterSlo",
    "FederatedTelemetry",
    "ShardSlo",
    "compute_cluster_slo",
    "federate_snapshots",
    "format_status",
]
