"""Paper-metric SLOs derived from a federated telemetry registry.

The paper's headline numbers are end-to-end quantities -- packets until
the mole is convicted (Sec. 6), how fast a watchdog accusation reaches
sink-side fusion, whether the ingest tier is keeping up -- and in the
sharded deployment no single process can compute them: the conviction
comes from the coordinator's merged verdict, the queue depths from each
shard's registry, the reroute pressure from the router.  This module is
the join point: it reads a federated registry
(:func:`~repro.obs.telemetry.federation.federate_snapshots`) plus the
coordinator-side inputs and derives one JSON-ready
:class:`ClusterSlo` -- the payload behind ``pnm-cluster status`` and the
``slo`` block sweep manifests carry.

Everything here is a pure function of its inputs: no clocks, no I/O, no
mutation of the registry it reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry.federation import SHARD_LABEL

__all__ = ["ShardSlo", "ClusterSlo", "compute_cluster_slo", "format_status"]


@dataclass(frozen=True)
class ShardSlo:
    """One shard's health, read off the federated registry.

    Attributes:
        shard_id: the shard's label value in the federated registry.
        packets_ingested: packets the shard's sink has merged.
        queue_depth: the ingest queue's current depth gauge.
        batches_ok: BATCH/REPORT frames the shard acknowledged.
        batches_shed: batches refused whole under backpressure.
        batches_wrong_shard: batches refused for stale routing.
        backpressure_rate: ``shed / (ok + shed + wrong_shard)`` -- the
            fraction of ingest attempts the queue turned away (0.0 when
            the shard saw no batches).
        bytes_rx: wire bytes received, all frame types.
    """

    shard_id: str
    packets_ingested: int = 0
    queue_depth: int = 0
    batches_ok: int = 0
    batches_shed: int = 0
    batches_wrong_shard: int = 0
    backpressure_rate: float = 0.0
    bytes_rx: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (keys sorted by the JSON writer)."""
        return {
            "shard_id": self.shard_id,
            "packets_ingested": self.packets_ingested,
            "queue_depth": self.queue_depth,
            "batches_ok": self.batches_ok,
            "batches_shed": self.batches_shed,
            "batches_wrong_shard": self.batches_wrong_shard,
            "backpressure_rate": self.backpressure_rate,
            "bytes_rx": self.bytes_rx,
        }


@dataclass(frozen=True)
class ClusterSlo:
    """Cluster-wide paper-metric SLOs.

    Attributes:
        shards: per-shard health, ascending shard id.
        packets_to_conviction: the merged verdict's ``packets_used`` when
            it identified a suspect, else ``None`` (the paper's Sec. 6
            packets-until-conviction number).
        accusation_fusion_latency: delivered packets between the first
            watchdog accusation reaching the sink and fused detection,
            when the watchdog layer ran (else ``None``).
        wrong_shard_reroutes: router-side WRONG_SHARD re-splits.
        backpressure_retries: router-side backpressure retries.
        failovers: shards the router declared dead.
        reroute_rate: ``wrong_shard_reroutes / batches_routed`` (0.0
            when nothing was routed).
    """

    shards: tuple[ShardSlo, ...] = ()
    packets_to_conviction: int | None = None
    accusation_fusion_latency: float | None = None
    wrong_shard_reroutes: int = 0
    backpressure_retries: int = 0
    failovers: int = 0
    reroute_rate: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form, shards ascending."""
        payload: dict[str, Any] = {
            "shards": [shard.as_dict() for shard in self.shards],
            "packets_to_conviction": self.packets_to_conviction,
            "accusation_fusion_latency": self.accusation_fusion_latency,
            "wrong_shard_reroutes": self.wrong_shard_reroutes,
            "backpressure_retries": self.backpressure_retries,
            "failovers": self.failovers,
            "reroute_rate": self.reroute_rate,
        }
        if self.extra:
            payload["extra"] = dict(sorted(self.extra.items()))
        return payload


def _by_shard(
    registry: MetricsRegistry, name: str
) -> dict[str, float]:
    """Sum one federated metric's series per shard (first label value)."""
    instrument = registry.get(name)
    if instrument is None or not instrument.label_names:
        return {}
    if instrument.label_names[0] != SHARD_LABEL:
        return {}
    totals: dict[str, float] = {}
    series = (
        instrument.series()
        if instrument.kind != "histogram"
        else [
            (values, data.total) for values, data in instrument.series()
        ]
    )
    for values, value in series:
        shard = values[0]
        totals[shard] = totals.get(shard, 0.0) + float(value)
    return totals


def _shard_ids(registry: MetricsRegistry) -> list[str]:
    """Every shard label value appearing anywhere in the registry."""
    shards: set[str] = set()
    for instrument in registry.instruments():
        if not instrument.label_names:
            continue
        if instrument.label_names[0] != SHARD_LABEL:
            continue
        for values, _ in instrument.series():
            shards.add(values[0])
    return sorted(shards)


def compute_cluster_slo(
    federated: MetricsRegistry,
    verdict: Any | None = None,
    router_stats: dict[str, int] | None = None,
    accusation_fusion_latency: float | None = None,
    extra: dict[str, Any] | None = None,
) -> ClusterSlo:
    """Derive the cluster SLOs from a federated registry.

    Args:
        federated: output of
            :func:`~repro.obs.telemetry.federation.federate_snapshots`.
        verdict: the coordinator's merged verdict (anything exposing
            ``identified`` and ``packets_used``, e.g. a
            :class:`~repro.wire.messages.WireVerdict`).
        router_stats: :meth:`~repro.cluster.router.ShardRouter.stats`
            output -- the client-side counters no shard registry holds.
        accusation_fusion_latency: delivered packets between first
            accusation and fused detection, from the watchdog probe.
        extra: free-form extra SLO entries carried through verbatim.
    """
    ingested = _by_shard(federated, "sink_packets_ingested_total")
    depth = _by_shard(federated, "ingest_queue_depth")
    shed = _by_shard(federated, "wire_batches_shed_total")
    wrong = _by_shard(federated, "wire_batches_wrong_shard_total")
    bytes_rx = _by_shard(federated, "wire_bytes_rx_total")
    verdicts_tx = _by_shard(federated, "wire_frames_tx_total")

    # Acknowledged batches = VERDICT frames the shard sent.  The summed
    # tx counter includes SUMMARY/ERROR/PING replies too, so count only
    # the VERDICT series when the frame label is present.
    frames_tx = federated.get("wire_frames_tx_total")
    batches_ok: dict[str, float] = {}
    if frames_tx is not None and "frame" in frames_tx.label_names:
        frame_at = frames_tx.label_names.index("frame")
        for values, value in frames_tx.series():
            if values[frame_at] == "VERDICT":
                shard = values[0]
                batches_ok[shard] = batches_ok.get(shard, 0.0) + float(value)
    else:
        batches_ok = verdicts_tx

    shards = []
    for shard_id in _shard_ids(federated):
        ok = int(batches_ok.get(shard_id, 0))
        refused = int(shed.get(shard_id, 0))
        stale = int(wrong.get(shard_id, 0))
        attempts = ok + refused + stale
        shards.append(
            ShardSlo(
                shard_id=shard_id,
                packets_ingested=int(ingested.get(shard_id, 0)),
                queue_depth=int(depth.get(shard_id, 0)),
                batches_ok=ok,
                batches_shed=refused,
                batches_wrong_shard=stale,
                backpressure_rate=(refused / attempts) if attempts else 0.0,
                bytes_rx=int(bytes_rx.get(shard_id, 0)),
            )
        )

    stats = router_stats or {}
    routed = int(stats.get("batches_routed", 0))
    reroutes = int(stats.get("wrong_shard_reroutes", 0))
    packets_to_conviction = None
    if verdict is not None and getattr(verdict, "identified", False):
        packets_to_conviction = int(verdict.packets_used)
    return ClusterSlo(
        shards=tuple(shards),
        packets_to_conviction=packets_to_conviction,
        accusation_fusion_latency=accusation_fusion_latency,
        wrong_shard_reroutes=reroutes,
        backpressure_retries=int(stats.get("backpressure_retries", 0)),
        failovers=int(stats.get("failovers", 0)),
        reroute_rate=(reroutes / routed) if routed else 0.0,
        extra=dict(extra or {}),
    )


def format_status(slo: ClusterSlo) -> str:
    """Render a :class:`ClusterSlo` as the ``pnm-cluster status`` text."""
    lines = ["cluster status"]
    conviction = (
        str(slo.packets_to_conviction)
        if slo.packets_to_conviction is not None
        else "-"
    )
    latency = (
        f"{slo.accusation_fusion_latency:g}"
        if slo.accusation_fusion_latency is not None
        else "-"
    )
    lines.append(f"  packets_to_conviction: {conviction}")
    lines.append(f"  accusation_fusion_latency: {latency}")
    lines.append(
        f"  routing: routed_reroute_rate={slo.reroute_rate:.3f} "
        f"wrong_shard={slo.wrong_shard_reroutes} "
        f"backpressure_retries={slo.backpressure_retries} "
        f"failovers={slo.failovers}"
    )
    if not slo.shards:
        lines.append("  shards: none reporting")
        return "\n".join(lines)
    header = (
        f"  {'shard':>6} {'ingested':>9} {'queue':>6} {'ok':>6} "
        f"{'shed':>5} {'stale':>6} {'bp_rate':>8} {'bytes_rx':>9}"
    )
    lines.append(header)
    for shard in slo.shards:
        lines.append(
            f"  {shard.shard_id:>6} {shard.packets_ingested:>9} "
            f"{shard.queue_depth:>6} {shard.batches_ok:>6} "
            f"{shard.batches_shed:>5} {shard.batches_wrong_shard:>6} "
            f"{shard.backpressure_rate:>8.3f} {shard.bytes_rx:>9}"
        )
    return "\n".join(lines)
