"""The metrics registry: one named home for every instrument.

Components do not pass counters to each other; they ask a shared
:class:`MetricsRegistry` for an instrument by name and write into it.
Registration is get-or-create and idempotent, so the simulator, sink,
and ingest service can all say ``registry.counter("packets_total",
label_names=("kind",))`` and land on the same series -- which is the
point: the paper's cross-layer numbers (marks per packet, brute-force
cost, delivery ratio under churn) become queryable from one place.

Snapshots are plain JSON-ready dicts with all keys sorted, so equal runs
serialize byte-identically; :meth:`MetricsRegistry.load_snapshot`
reconstructs a registry whose counts equal the snapshot's (the exporter
round-trip contract tested in ``tests/test_obs``).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.instruments import (
    DEFAULT_MIN_BUCKET,
    DEFAULT_NUM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """A thread-safe, name-keyed collection of metric instruments.

    Instruments are created on first request and looked up by name
    afterwards; requesting an existing name with a different kind or
    label set raises ``ValueError`` (silent forks of a metric are how
    dashboards lie).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    # Get-or-create -----------------------------------------------------------

    def counter(
        self, name: str, help: str = "", label_names: tuple[str, ...] = ()
    ) -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: tuple[str, ...] = ()
    ) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        min_bucket: float = DEFAULT_MIN_BUCKET,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                instrument = Histogram(
                    name,
                    help,
                    tuple(label_names),
                    min_bucket=min_bucket,
                    num_buckets=num_buckets,
                )
                self._instruments[name] = instrument
                return instrument
        return self._check(existing, Histogram, name, tuple(label_names))

    def _get_or_create(
        self, cls: type, name: str, help: str, label_names: tuple[str, ...]
    ) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                instrument = cls(name, help, tuple(label_names))
                self._instruments[name] = instrument
                return instrument
        return self._check(existing, cls, name, tuple(label_names))

    @staticmethod
    def _check(existing: Any, cls: type, name: str, label_names: tuple[str, ...]) -> Any:
        if type(existing) is not cls:
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{existing.kind}, not a {cls.kind}"
            )
        if existing.label_names != label_names:
            raise ValueError(
                f"metric {name!r} is already registered with labels "
                f"{existing.label_names}, not {label_names}"
            )
        return existing

    # Introspection -----------------------------------------------------------

    def get(self, name: str) -> Any | None:
        """The instrument called ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def instruments(self) -> list[Any]:
        """Every instrument, sorted by name (deterministic export order)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _, instrument in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    # Snapshots ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as a deterministic JSON-ready dict."""
        metrics = []
        for instrument in self.instruments():
            entry: dict[str, Any] = {
                "name": instrument.name,
                "kind": instrument.kind,
                "help": instrument.help,
                "label_names": list(instrument.label_names),
            }
            if isinstance(instrument, Histogram):
                entry["min_bucket"] = instrument.min_bucket
                entry["num_buckets"] = instrument.num_buckets
                entry["series"] = [
                    {
                        "labels": list(values),
                        "count": data.count,
                        "total": data.total,
                        "min": data.min if data.count else 0.0,
                        "max": data.max,
                        "bucket_counts": data.bucket_counts(),
                    }
                    for values, data in instrument.series()
                ]
            else:
                entry["series"] = [
                    {"labels": list(values), "value": value}
                    for values, value in instrument.series()
                ]
            metrics.append(entry)
        return {"metrics": metrics}

    @classmethod
    def load_snapshot(cls, snapshot: dict[str, Any]) -> "MetricsRegistry":
        """Reconstruct a registry whose counts equal ``snapshot``'s.

        The inverse of :meth:`snapshot`:
        ``load_snapshot(r.snapshot()).snapshot() == r.snapshot()``.
        """
        registry = cls()
        for entry in snapshot.get("metrics", []):
            name = entry["name"]
            labels = tuple(entry.get("label_names", ()))
            kind = entry["kind"]
            if kind == "counter":
                instrument: Any = registry.counter(name, entry.get("help", ""), labels)
                for series in entry.get("series", []):
                    instrument._restore(tuple(series["labels"]), series["value"])
            elif kind == "gauge":
                instrument = registry.gauge(name, entry.get("help", ""), labels)
                for series in entry.get("series", []):
                    instrument._restore(tuple(series["labels"]), series["value"])
            elif kind == "histogram":
                instrument = registry.histogram(
                    name,
                    entry.get("help", ""),
                    labels,
                    min_bucket=entry.get("min_bucket", DEFAULT_MIN_BUCKET),
                    num_buckets=entry.get("num_buckets", DEFAULT_NUM_BUCKETS),
                )
                for series in entry.get("series", []):
                    data = instrument.data(
                        **dict(zip(labels, series["labels"], strict=True))
                    )
                    data._restore(
                        series["bucket_counts"],
                        series["count"],
                        series["total"],
                        series["min"] if series["count"] else float("inf"),
                        series["max"],
                    )
            else:
                raise ValueError(f"unknown instrument kind {kind!r} in snapshot")
        return registry

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} instruments)"
