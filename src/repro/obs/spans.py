"""Span-based tracing with explicit context propagation.

A :class:`Span` is one named, timed stage of a packet's life; spans that
share a ``trace_id`` form one trace, linked by ``parent_id``.  There is
no ambient "current span" (thread-locals would lie across the service's
pool workers and the simulator's event callbacks); context moves in one
of two explicit ways:

* pass a :class:`SpanContext` to :meth:`Tracer.start` as the parent, or
* bind the context to a *key* -- for packets, the report digest from
  :func:`report_key`, the same content identity the packet tracer uses --
  and let the next layer pick the chain up with :meth:`Tracer.chain`.

The second form is what carries one trace id from
``NetworkSimulation`` injection, through each forwarding hop (bridged by
:class:`repro.sim.tracing.PacketTracer`), into the ingest queue,
verification, and the sink's verdict: every layer chains on the report
key and never needs to see another layer's span objects.

Clocks are injected.  Simulation spans pass explicit virtual timestamps;
service spans use the tracer's clock (wall by default).  Durations are
therefore meaningful only within one time base, which the emitted records
preserve as-is.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any

from repro.packets.report import Report

__all__ = ["Span", "SpanContext", "Tracer", "report_key"]

#: Default cap on retained finished spans; like the packet tracer, the
#: tracer stops recording (and flags it) rather than evicting silently.
DEFAULT_MAX_SPANS = 200_000


def report_key(report: Report) -> bytes:
    """The content identity of a report (shared with ``PacketTracer``).

    Both tracing layers key packets by the same digest so a span chain
    bound here can be joined from anywhere the report is visible.
    """
    return hashlib.sha256(b"trace" + report.encode()).digest()[:8]


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: its trace and span ids."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One named, timed stage within a trace.

    Attributes:
        trace_id: the trace this span belongs to.
        span_id: unique id within the tracer.
        parent_id: the parent span's id, or ``None`` for a root span.
        name: stage name (``inject``, ``forward``, ``queue``, ...).
        start: start time in the emitting layer's time base.
        end: end time, or ``None`` while the span is open.
        attrs: small JSON-ready attribute dict (node id, queue depth...).
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        """This span's propagatable context."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> float:
        """``end - start`` (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> dict[str, Any]:
        """The span as a JSON-ready dict (attribute keys sorted)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
        }


class Tracer:
    """Creates, finishes, and records spans; owns the id sequence.

    Ids are deterministic per tracer (``t0000001``/``s0000001``...), so
    equal runs produce identical trace files.  All methods are
    thread-safe -- the verification pool finishes spans from workers.

    Args:
        clock: time source for spans without explicit timestamps; defaults
            to the wall clock.  Simulation layers pass explicit virtual
            times instead and never read this.
        sink: optional text stream; each finished span is appended to it
            as one JSON line the moment it finishes (streaming export).
        max_spans: retained finished spans; past it, spans still chain
            (ids and bindings stay correct) but are no longer kept, and
            :attr:`truncated` is set.
        id_prefix: optional prefix baked into every generated trace and
            span id (``"sh0-t0000001"``...).  Distributed deployments
            give each process a distinct prefix so ids stay globally
            unique when spans from several tracers are merged into one
            trace view; propagated contexts keep the originator's prefix.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        sink: IO[str] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        id_prefix: str = "",
    ):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        if clock is None:
            import time

            clock = time.perf_counter
        self.clock = clock
        self.sink = sink
        self.max_spans = max_spans
        self.id_prefix = id_prefix
        self.truncated = False  # guarded-by: _lock
        self.finished: list[Span] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self._trace_seq = 0  # guarded-by: _lock
        self._span_seq = 0  # guarded-by: _lock
        self._bindings: dict[bytes, SpanContext] = {}  # guarded-by: _lock

    # Span lifecycle ----------------------------------------------------------

    def start(
        self,
        name: str,
        parent: SpanContext | None = None,
        trace_id: str | None = None,
        time: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.

        With a ``parent``, the span joins the parent's trace; otherwise it
        roots a new trace (or the explicitly supplied ``trace_id``).
        ``time`` defaults to the tracer's clock.
        """
        with self._lock:
            self._span_seq += 1
            span_id = f"{self.id_prefix}s{self._span_seq:07d}"
            if parent is not None:
                tid = parent.trace_id
            elif trace_id is not None:
                tid = trace_id
            else:
                self._trace_seq += 1
                tid = f"{self.id_prefix}t{self._trace_seq:07d}"
        return Span(
            trace_id=tid,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=self.clock() if time is None else time,
            attrs=dict(attrs),
        )

    def finish(self, span: Span, time: float | None = None) -> Span:
        """Close ``span`` and record it (idempotent per span object)."""
        if span.end is None:
            span.end = self.clock() if time is None else time
            self._record(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: SpanContext | None = None,
        time: float | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager: open on entry, finish on exit."""
        opened = self.start(name, parent=parent, time=time, **attrs)
        try:
            yield opened
        finally:
            self.finish(opened)

    def _record(self, span: Span) -> None:
        line = None
        with self._lock:
            if len(self.finished) < self.max_spans:
                self.finished.append(span)
            else:
                self.truncated = True
            if self.sink is not None:
                line = json.dumps(span.as_dict(), sort_keys=True)
        if line is not None and self.sink is not None:
            self.sink.write(line + "\n")

    # Keyed context propagation ----------------------------------------------

    def bind(self, key: bytes, context: SpanContext) -> None:
        """Associate ``context`` with ``key`` for later :meth:`chain` calls."""
        with self._lock:
            self._bindings[key] = context

    def lookup(self, key: bytes) -> SpanContext | None:
        """The context currently bound to ``key``, or ``None``."""
        with self._lock:
            return self._bindings.get(key)

    def chain(
        self, key: bytes, name: str, time: float | None = None, **attrs: Any
    ) -> Span:
        """Open a span as the child of whatever ``key`` is bound to.

        The new span is immediately re-bound to ``key``, so consecutive
        ``chain`` calls form a parent-linked chain through the stages of
        one packet's life; an unbound key roots a fresh trace.  The caller
        still owns finishing the span (or use :meth:`event` for
        instantaneous stages).
        """
        span = self.start(name, parent=self.lookup(key), time=time, **attrs)
        self.bind(key, span.context)
        return span

    def event(self, key: bytes, name: str, time: float | None = None, **attrs: Any) -> Span:
        """A zero-duration chained span (simulation lifecycle events)."""
        span = self.chain(key, name, time=time, **attrs)
        return self.finish(span, time=span.start)

    # Queries -----------------------------------------------------------------

    def spans_for(self, trace_id: str) -> list[Span]:
        """Finished spans of one trace, in finish order."""
        with self._lock:
            return [s for s in self.finished if s.trace_id == trace_id]

    def trace_of(self, key: bytes) -> list[Span]:
        """Finished spans of the trace currently bound to ``key``."""
        context = self.lookup(key)
        if context is None:
            return []
        return self.spans_for(context.trace_id)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name span counts and total durations, sorted by name."""
        totals: dict[str, dict[str, float]] = {}
        with self._lock:
            finished = list(self.finished)
        for span in finished:
            entry = totals.setdefault(span.name, {"count": 0, "total_duration": 0.0})
            entry["count"] += 1
            entry["total_duration"] += span.duration
        return {name: totals[name] for name in sorted(totals)}

    def to_jsonl(self) -> str:
        """Every finished span as JSON lines (finish order)."""
        with self._lock:
            finished = list(self.finished)
        return "".join(json.dumps(s.as_dict(), sort_keys=True) + "\n" for s in finished)

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns spans written."""
        payload = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return payload.count("\n")

    def __len__(self) -> int:
        with self._lock:
            return len(self.finished)

    def __repr__(self) -> str:
        return f"Tracer({len(self)} finished spans)"
