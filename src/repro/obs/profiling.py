"""Profiling hooks: the provider facade hot paths actually call.

Instrumented code never touches the registry or tracer directly; it holds
an :class:`ObsProvider` (or the :data:`NOOP` singleton) and calls
``obs.timer("verify_packet_seconds")``, ``obs.inc(...)``, and friends.
Two properties make this safe to leave in hot paths:

* the :class:`NoopObsProvider` reduces every hook to an attribute lookup
  plus an empty method -- no time reads, no locks, no allocations beyond
  a shared reusable context manager -- so disabled instrumentation costs
  near zero (gated by ``benchmarks/test_bench_obs.py``);
* the active provider's clock is injected, so simulation code can time
  stages on the virtual clock without ever reading the wall clock
  (the RL006 contract).

Construction sites resolve their provider with :func:`resolve_provider`:
an explicit argument wins, otherwise the process-wide default applies
(:func:`set_default_provider` / :func:`use_provider`), which is how the
experiments CLI turns on observability for a whole run without threading
a provider through every constructor.
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.obs.instruments import HistogramSeries
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = [
    "NOOP",
    "NoopObsProvider",
    "ObsProvider",
    "get_default_provider",
    "resolve_provider",
    "set_default_provider",
    "timed",
    "use_provider",
]


class _NoopTimer:
    """A reusable do-nothing context manager (one shared instance)."""

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_TIMER = _NoopTimer()


class _Timer:
    """Times a ``with`` block on the provider's clock into a histogram."""

    __slots__ = ("_clock", "_series", "_start")

    def __init__(self, series: HistogramSeries, clock: Callable[[], float]):
        self._series = series
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._series.observe(self._clock() - self._start)


class ObsProvider:
    """The active observability facade: registry + tracer + clock.

    Args:
        registry: metrics destination; a fresh one is created if omitted.
        tracer: span destination; ``None`` disables span emission (the
            metrics/profiling half still works).
        clock: time source for :meth:`timer`; defaults to the wall clock
            (``time.perf_counter``).  Pass the simulation's virtual clock
            to profile simulated stages deterministically.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        if clock is None:
            import time

            clock = time.perf_counter
        self.clock = clock

    # Metrics shortcuts -------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment the counter ``name`` (created on first use)."""
        self.registry.counter(name, label_names=tuple(sorted(labels))).inc(
            amount, **labels
        )

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` (created on first use)."""
        self.registry.gauge(name, label_names=tuple(sorted(labels))).set(
            value, **labels
        )

    def observe(self, name: str, value: float, times: int = 1, **labels: Any) -> None:
        """Observe into the histogram ``name`` (created on first use)."""
        self.registry.histogram(name, label_names=tuple(sorted(labels))).observe(
            value, times=times, **labels
        )

    def timer(self, name: str, **labels: Any) -> _Timer:
        """A context manager timing its block into histogram ``name``."""
        series = self.registry.histogram(
            name, label_names=tuple(sorted(labels))
        ).data(**labels)
        return _Timer(series, self.clock)

    def __repr__(self) -> str:
        tracing = "tracing" if self.tracer is not None else "no tracer"
        return f"ObsProvider({len(self.registry)} metrics, {tracing})"


class NoopObsProvider:
    """The disabled provider: every hook is a no-op, every query empty.

    ``registry`` and ``tracer`` are ``None`` so integration code can gate
    span emission on ``obs.tracer is not None`` uniformly.
    """

    enabled = False
    registry = None
    tracer = None

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Do nothing."""

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Do nothing."""

    def observe(self, name: str, value: float, times: int = 1, **labels: Any) -> None:
        """Do nothing."""

    def timer(self, name: str, **labels: Any) -> _NoopTimer:
        """The shared no-op context manager."""
        return _NOOP_TIMER

    def __repr__(self) -> str:
        return "NoopObsProvider()"


#: The process-wide disabled provider; instrumented defaults point here.
NOOP = NoopObsProvider()

_default: ObsProvider | NoopObsProvider = NOOP


def get_default_provider() -> ObsProvider | NoopObsProvider:
    """The process-wide default provider (:data:`NOOP` unless overridden)."""
    return _default


def set_default_provider(provider: ObsProvider | NoopObsProvider) -> None:
    """Install ``provider`` as the process-wide default."""
    global _default
    _default = provider


@contextmanager
def use_provider(provider: ObsProvider | NoopObsProvider) -> Iterator[None]:
    """Temporarily install ``provider`` as the default (restores on exit)."""
    previous = get_default_provider()
    set_default_provider(provider)
    try:
        yield
    finally:
        set_default_provider(previous)


def resolve_provider(
    obs: ObsProvider | NoopObsProvider | None,
) -> ObsProvider | NoopObsProvider:
    """An explicit provider if given, else the process-wide default.

    The idiom for instrumented constructors::

        def __init__(self, ..., obs=None):
            self._obs = resolve_provider(obs)
    """
    return obs if obs is not None else get_default_provider()


def timed(name: str, **labels: Any) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: time every call into histogram ``name``.

    The provider is resolved *per call* from the process-wide default, so
    a function decorated at import time starts reporting the moment a
    provider is installed -- and costs one no-op context manager
    otherwise.
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with get_default_provider().timer(name, **labels):
                return func(*args, **kwargs)

        return wrapper

    return decorate
