"""Run manifests: machine-readable provenance for one experiment run.

A manifest answers "what produced this artifact?" months later: the exact
CLI arguments, preset, seed, git revision, interpreter, wall time, and
the final metrics snapshot of the run, in one sorted JSON document next
to the outputs.  ``python -m repro.obs report`` renders manifests (and
their sibling span files) back into readable tables.

This module is the one place in the instrumented tree that may read the
wall clock directly: provenance timestamps are *about* real time, unlike
simulation results, which must never depend on it (the RL006 contract).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunManifest", "git_revision"]


def git_revision(cwd: str | None = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout.

    Provenance is best-effort by design: a missing ``git`` binary, a
    tarball checkout, or a timeout all degrade to ``"unknown"`` rather
    than failing the run that the manifest is meant to describe.
    """
    try:
        proc = subprocess.run(  # noqa: S603
            ["git", "rev-parse", "HEAD"],  # noqa: S607
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=cwd,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


@dataclass
class RunManifest:
    """Provenance for one experiment run.

    Attributes:
        name: the experiment's name (``fig6``, ``faults-sweep``, ...).
        argv: the CLI argument vector that launched the run.
        preset: the sizing preset used (``paper``, ``smoke``, ...).
        seed: the run's base RNG seed (``None`` if not seed-driven).
        started_unix: wall-clock start, seconds since the epoch.
        wall_seconds: elapsed wall time of the run.
        git_rev: git commit hash of the working tree (or ``"unknown"``).
        python: interpreter version string.
        platform: ``sys.platform`` of the producing host.
        metrics: final :meth:`repro.obs.MetricsRegistry.snapshot` of the
            run (empty dict when observability was off).
        extra: free-form extras (result summaries, artifact paths...).
    """

    name: str
    argv: list[str] = field(default_factory=list)
    preset: str = ""
    seed: int | None = None
    started_unix: float = 0.0
    wall_seconds: float = 0.0
    git_rev: str = "unknown"
    python: str = ""
    platform: str = ""
    metrics: dict[str, Any] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def begin(
        cls,
        name: str,
        argv: list[str] | None = None,
        preset: str = "",
        seed: int | None = None,
    ) -> "RunManifest":
        """Open a manifest at run start, stamping environment provenance."""
        return cls(
            name=name,
            argv=list(sys.argv if argv is None else argv),
            preset=preset,
            seed=seed,
            started_unix=time.time(),  # lint: disable=RL006
            git_rev=git_revision(cwd=os.path.dirname(os.path.abspath(__file__))),
            python=sys.version.split()[0],
            platform=sys.platform,
        )

    def finish(self, metrics: dict[str, Any] | None = None) -> "RunManifest":
        """Stamp the elapsed wall time (and final metrics); returns self."""
        self.wall_seconds = time.time() - self.started_unix  # lint: disable=RL006
        if metrics is not None:
            self.metrics = metrics
        return self

    def as_dict(self) -> dict[str, Any]:
        """The manifest as a JSON-ready dict."""
        return {
            "name": self.name,
            "argv": list(self.argv),
            "preset": self.preset,
            "seed": self.seed,
            "started_unix": self.started_unix,
            "wall_seconds": self.wall_seconds,
            "git_rev": self.git_rev,
            "python": self.python,
            "platform": self.platform,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    def write(self, path: str) -> None:
        """Write the manifest to ``path`` as sorted, indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Read a manifest previously written by :meth:`write`."""
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            name=payload.get("name", ""),
            argv=list(payload.get("argv", [])),
            preset=payload.get("preset", ""),
            seed=payload.get("seed"),
            started_unix=payload.get("started_unix", 0.0),
            wall_seconds=payload.get("wall_seconds", 0.0),
            git_rev=payload.get("git_rev", "unknown"),
            python=payload.get("python", ""),
            platform=payload.get("platform", ""),
            metrics=payload.get("metrics", {}),
            extra=payload.get("extra", {}),
        )
