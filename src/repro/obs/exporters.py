"""Registry exporters: Prometheus text format and JSON.

Both exporters render :meth:`repro.obs.MetricsRegistry.snapshot` content
in fully deterministic order (metrics by name, series by label values,
buckets by bound), so two equal runs export byte-identical documents --
the same property the packet tracer guarantees for its JSON.

:func:`parse_prometheus_text` is the inverse of the sample lines
:func:`to_prometheus_text` emits.  It exists for the exporter round-trip
tests and for quick ad-hoc diffing of two exports; it is not a general
Prometheus parser (it reads exactly the subset this module writes).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.obs.instruments import Counter, Gauge, Histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.registry import MetricsRegistry

__all__ = ["to_prometheus_text", "registry_to_json", "parse_prometheus_text"]


def _fmt_value(value: float) -> str:
    """Prometheus-style number: integers render bare, floats repr-exact."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape(v)}"' for n, v in zip(names, values, strict=True)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus_text(registry: "MetricsRegistry") -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Counters and gauges emit one sample per series; histograms emit the
    cumulative ``_bucket`` samples plus ``_sum`` and ``_count``, exactly
    as a Prometheus client library would.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for values, value in instrument.series():
                labels = _fmt_labels(instrument.label_names, values)
                lines.append(f"{instrument.name}{labels} {_fmt_value(value)}")
        elif isinstance(instrument, Histogram):
            for values, data in instrument.series():
                bounds = data._bounds
                cumulative = 0
                for i, count in enumerate(data.bucket_counts()):
                    cumulative += count
                    bound = _fmt_value(bounds[i]) if i < len(bounds) else "+Inf"
                    labels = _fmt_labels(
                        instrument.label_names, values, extra=f'le="{bound}"'
                    )
                    lines.append(f"{instrument.name}_bucket{labels} {cumulative}")
                labels = _fmt_labels(instrument.label_names, values)
                lines.append(f"{instrument.name}_sum{labels} {_fmt_value(data.total)}")
                lines.append(f"{instrument.name}_count{labels} {cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_to_json(registry: "MetricsRegistry", indent: int | None = None) -> str:
    """The registry snapshot as a JSON document (sorted, deterministic)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def parse_prometheus_text(
    text: str,
) -> dict[str, dict[str, Any]]:
    """Parse the subset of Prometheus text that :func:`to_prometheus_text` emits.

    Returns:
        ``name -> {"kind": ..., "help": ..., "samples": {sample_key: value}}``
        where ``sample_key`` is the full sample name with its label string
        (e.g. ``'packets_total{kind="inject"}'``).

    Raises:
        ValueError: on a line that is neither a comment nor a sample.
    """
    metrics: dict[str, dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            metrics.setdefault(name, {"kind": "", "help": "", "samples": {}})
            metrics[name]["kind"] = kind
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(name, {"kind": "", "help": "", "samples": {}})
            metrics[name]["help"] = help_text
            continue
        if line.startswith("#"):
            continue
        key, _, value_text = line.rpartition(" ")
        if not key:
            raise ValueError(f"unparseable sample line: {raw!r}")
        base = key.split("{", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in metrics:
                base = base[: -len(suffix)]
                break
        if base not in metrics:
            raise ValueError(f"sample {key!r} has no preceding TYPE line")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        metrics[base]["samples"][key] = value
    return metrics
