"""``python -m repro.obs report``: render run artifacts as text tables.

The experiments CLI (``--obs-dir``) leaves each run a directory of
machine-readable artifacts -- ``manifest.json``, ``metrics.json``,
``spans.jsonl``.  This module is the human-facing inverse: point it at
one run directory (or a parent holding several) and it prints the
provenance header, the registry's metrics as aligned tables, and a
per-stage span summary, without re-running anything.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any

from repro.experiments.tables import format_table
from repro.obs.manifest import RunManifest

__all__ = ["main", "render_run_dir"]

MANIFEST_FILE = "manifest.json"
METRICS_FILE = "metrics.json"
SPANS_FILE = "spans.jsonl"


def _fmt(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, 6)
    return value


def render_manifest(manifest: RunManifest) -> str:
    """The provenance header for one run."""
    lines = [f"== run: {manifest.name} =="]
    rows = [
        ["preset", manifest.preset or "-"],
        ["seed", "-" if manifest.seed is None else manifest.seed],
        ["wall_seconds", _fmt(manifest.wall_seconds)],
        ["git_rev", manifest.git_rev[:12] or "unknown"],
        ["python", manifest.python or "-"],
        ["argv", " ".join(manifest.argv) or "-"],
    ]
    lines.append(format_table(["field", "value"], rows))
    return "\n".join(lines)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """The registry snapshot as one aligned table of series."""
    rows: list[list[Any]] = []
    for entry in snapshot.get("metrics", []):
        label_names = entry.get("label_names", [])
        for series in entry.get("series", []):
            labels = ",".join(
                f"{n}={v}"
                for n, v in zip(label_names, series.get("labels", []), strict=True)
            )
            if entry["kind"] == "histogram":
                count = series.get("count", 0)
                mean = series.get("total", 0.0) / count if count else 0.0
                value = f"count={count} mean={_fmt(mean)} max={_fmt(series.get('max', 0.0))}"
            else:
                value = str(_fmt(series.get("value", 0.0)))
            rows.append([entry["name"], entry["kind"], labels or "-", value])
    if not rows:
        return "(no metrics recorded)"
    return format_table(["metric", "kind", "labels", "value"], rows)


def render_spans(path: str) -> str:
    """A per-stage summary of one ``spans.jsonl`` file."""
    totals: dict[str, dict[str, float]] = {}
    traces: set[str] = set()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            span = json.loads(line)
            traces.add(span["trace_id"])
            entry = totals.setdefault(span["name"], {"count": 0, "total": 0.0})
            entry["count"] += 1
            entry["total"] += span.get("duration", 0.0)
    if not totals:
        return "(no spans recorded)"
    rows = [
        [name, int(totals[name]["count"]), _fmt(totals[name]["total"])]
        for name in sorted(totals)
    ]
    header = f"{sum(int(totals[n]['count']) for n in totals)} spans in {len(traces)} traces"
    return header + "\n" + format_table(["span", "count", "total_duration"], rows)


def render_run_dir(path: str) -> str:
    """Render every artifact present in one run directory."""
    sections: list[str] = []
    manifest_path = os.path.join(path, MANIFEST_FILE)
    metrics: dict[str, Any] | None = None
    if os.path.exists(manifest_path):
        manifest = RunManifest.load(manifest_path)
        sections.append(render_manifest(manifest))
        if manifest.metrics:
            metrics = manifest.metrics
    else:
        sections.append(f"== run: {os.path.basename(path) or path} ==")
    metrics_path = os.path.join(path, METRICS_FILE)
    if metrics is None and os.path.exists(metrics_path):
        with open(metrics_path, encoding="utf-8") as handle:
            metrics = json.load(handle)
    if metrics is not None:
        sections.append(render_metrics(metrics))
    spans_path = os.path.join(path, SPANS_FILE)
    if os.path.exists(spans_path):
        sections.append(render_spans(spans_path))
    return "\n\n".join(sections)


def _run_dirs(root: str) -> list[str]:
    """``root`` itself if it is a run directory, else its run subdirectories."""
    if os.path.exists(os.path.join(root, MANIFEST_FILE)) or os.path.exists(
        os.path.join(root, SPANS_FILE)
    ):
        return [root]
    found = []
    for name in sorted(os.listdir(root)):
        child = os.path.join(root, name)
        if os.path.isdir(child) and (
            os.path.exists(os.path.join(child, MANIFEST_FILE))
            or os.path.exists(os.path.join(child, SPANS_FILE))
        ):
            found.append(child)
    return found


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs report``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render repro.obs run artifacts as text tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render manifests/metrics/spans from a run dir")
    report.add_argument("path", help="a run directory, or a parent of run directories")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.path):
        parser.error(f"not a directory: {args.path}")
    runs = _run_dirs(args.path)
    if not runs:
        parser.error(f"no run artifacts (manifest.json / spans.jsonl) under {args.path}")
    print("\n\n".join(render_run_dir(run) for run in runs))
    return 0
