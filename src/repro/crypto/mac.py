"""Message authentication codes and anonymous-ID derivation.

The paper uses two keyed one-way functions:

* ``H_k(.)`` -- the MAC a node computes over the entire message it received
  plus its own ID: ``MAC_i = H_{k_i}(M_{i-1} | i)`` (Section 4.1).
* ``H'_k(.)`` -- "another secure one-way function" that derives a per-message
  *anonymous ID*: ``i' = H'_{k_i}(M | i)`` (Section 4.2), so a forwarding
  mole cannot tell which nodes have marked a packet.

Both are instantiated here as HMAC-SHA256 with domain separation, truncated
to short field lengths appropriate for sensor packets.  Truncation trades a
small collision probability for byte overhead; the traceback engine handles
anonymous-ID collisions by verifying MACs against every candidate key.

A :class:`NullMacProvider` is also provided for large statistical sweeps
(Figures 5-7 involve millions of packets): it preserves field lengths and
control flow but skips the hash computation.  It must only be used in
honest-path experiments where no mark is ever tampered with -- its MACs are
trivially forgeable by design.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Protocol, runtime_checkable

__all__ = [
    "MacProvider",
    "HmacProvider",
    "NullMacProvider",
    "constant_time_equal",
    "DEFAULT_MAC_LEN",
    "DEFAULT_ANON_ID_LEN",
]

#: Default MAC field length in bytes.  4 bytes keeps per-mark overhead small
#: (the paper targets Mica2-class packets) while making blind forgery of a
#: specific MAC a 1-in-2^32 event per attempt.
DEFAULT_MAC_LEN = 4

#: Default anonymous-ID field length in bytes.
DEFAULT_ANON_ID_LEN = 4

_MAC_DOMAIN = b"pnm-mac\x00"
_ANON_DOMAIN = b"pnm-anon\x00"


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking timing information."""
    return hmac.compare_digest(a, b)


@runtime_checkable
class MacProvider(Protocol):
    """Interface for the keyed one-way functions used by marking schemes."""

    #: Length in bytes of values returned by :meth:`mac`.
    mac_len: int
    #: Length in bytes of values returned by :meth:`anon_id`.
    anon_id_len: int

    def mac(self, key: bytes, data: bytes) -> bytes:
        """Compute ``H_k(data)`` truncated to :attr:`mac_len` bytes."""
        ...

    def anon_id(self, key: bytes, data: bytes) -> bytes:
        """Compute ``H'_k(data)`` truncated to :attr:`anon_id_len` bytes."""
        ...


class HmacProvider:
    """Real cryptographic provider: truncated HMAC-SHA256.

    ``mac`` and ``anon_id`` use distinct domain-separation prefixes so they
    behave as two independent PRFs even under the same key, matching the
    paper's use of two different one-way functions ``H`` and ``H'``.
    """

    def __init__(
        self,
        mac_len: int = DEFAULT_MAC_LEN,
        anon_id_len: int = DEFAULT_ANON_ID_LEN,
    ) -> None:
        if not 1 <= mac_len <= 32:
            raise ValueError(f"mac_len must be in [1, 32], got {mac_len}")
        if not 1 <= anon_id_len <= 32:
            raise ValueError(f"anon_id_len must be in [1, 32], got {anon_id_len}")
        self.mac_len = mac_len
        self.anon_id_len = anon_id_len

    def mac(self, key: bytes, data: bytes) -> bytes:
        """Compute ``H_k(data)``: domain-separated truncated HMAC-SHA256."""
        digest = hmac.new(key, _MAC_DOMAIN + data, hashlib.sha256).digest()
        return digest[: self.mac_len]

    def anon_id(self, key: bytes, data: bytes) -> bytes:
        """Compute ``H'_k(data)``: the anonymous-ID PRF."""
        digest = hmac.new(key, _ANON_DOMAIN + data, hashlib.sha256).digest()
        return digest[: self.anon_id_len]

    def __repr__(self) -> str:
        return f"HmacProvider(mac_len={self.mac_len}, anon_id_len={self.anon_id_len})"


class NullMacProvider:
    """Zero-cost stand-in provider for honest-path statistical sweeps.

    MACs are a cheap non-cryptographic digest of ``(key, len(data))``; the
    anonymous ID is a cheap digest of ``(key, data length, first bytes)``.
    Field lengths match the real provider so packet overhead accounting is
    identical.  Verification still succeeds exactly when the verifier
    recomputes over the same key and data length, which is sufficient for
    honest runs, but offers **no tamper resistance** -- never use it in
    adversarial experiments.
    """

    def __init__(
        self,
        mac_len: int = DEFAULT_MAC_LEN,
        anon_id_len: int = DEFAULT_ANON_ID_LEN,
    ) -> None:
        self.mac_len = mac_len
        self.anon_id_len = anon_id_len

    def _cheap_digest(self, key: bytes, data: bytes, out_len: int) -> bytes:
        # A tiny FNV-style mix over the key and coarse data features.  Fast,
        # deterministic, collision-prone under adversarial inputs (by design).
        acc = 0xCBF29CE484222325
        for b in key[:8]:
            acc = ((acc ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        acc = ((acc ^ len(data)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        for b in data[:4]:
            acc = ((acc ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        raw = acc.to_bytes(8, "big")
        reps = -(-out_len // 8)  # ceil division
        return (raw * reps)[:out_len]

    def mac(self, key: bytes, data: bytes) -> bytes:
        """A zero-cost stand-in for ``H_k`` (honest runs only)."""
        return self._cheap_digest(key, data, self.mac_len)

    def anon_id(self, key: bytes, data: bytes) -> bytes:
        """A zero-cost stand-in for ``H'_k`` (honest runs only)."""
        return self._cheap_digest(key, data[::max(1, len(data) // 4)], self.anon_id_len)

    def __repr__(self) -> str:
        return f"NullMacProvider(mac_len={self.mac_len}, anon_id_len={self.anon_id_len})"
