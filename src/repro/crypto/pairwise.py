"""Pairwise neighbor keys (the Section 7 precision extension).

"We can improve the traceback precision of PNM to a pair of neighboring
nodes with additional neighbor authentication schemes, e.g., using
pairwise keys."  This module supplies that substrate: every pair of radio
neighbors shares a key derived at deployment, so a node knows -- with
cryptographic certainty -- *which neighbor* handed it each packet.  A mole
cannot impersonate an arbitrary node to its downstream neighbor, because
the pairwise key for that (impersonated, downstream) pair was never
established with it.

Caveat modelled faithfully: two *colluding* moles that happen to share an
honest neighbor can still lend each other that neighbor's pairwise keys;
traceback precision then degrades back to the coalition, which is already
compromised territory.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.net.topology import Topology

__all__ = ["derive_pairwise_key", "PairwiseKeyTable"]


def derive_pairwise_key(master_secret: bytes, u: int, v: int) -> bytes:
    """The key shared by neighbor pair ``{u, v}`` (order-independent).

    Raises:
        ValueError: for a self-pair or negative IDs.
    """
    if u == v:
        raise ValueError(f"a node shares no pairwise key with itself ({u})")
    if u < 0 or v < 0:
        raise ValueError(f"node IDs must be non-negative, got {u}, {v}")
    lo, hi = min(u, v), max(u, v)
    info = b"pnm-pairwise" + lo.to_bytes(8, "big") + hi.to_bytes(8, "big")
    return hmac.new(master_secret, info, hashlib.sha256).digest()


class PairwiseKeyTable:
    """One node's table of pairwise keys with its radio neighbors.

    Built at deployment from the topology (modelling a neighbor-discovery
    plus key-establishment phase such as LEAP).
    """

    def __init__(
        self, master_secret: bytes, topology: Topology, node_id: int
    ) -> None:
        self.node_id = node_id
        self._keys = {
            nbr: derive_pairwise_key(master_secret, node_id, nbr)
            for nbr in topology.neighbors(node_id)
        }

    def key_with(self, neighbor: int) -> bytes:
        """The key shared with ``neighbor``.

        Raises:
            KeyError: if the node is not a radio neighbor (no key was ever
                established -- exactly why impersonation fails).
        """
        try:
            return self._keys[neighbor]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} shares no pairwise key with {neighbor}; "
                f"they are not radio neighbors"
            ) from None

    def neighbors(self) -> set[int]:
        """Neighbor IDs a pairwise key was established with."""
        return set(self._keys)

    def authenticate_sender(self, claimed: int, proof: bytes, challenge: bytes) -> bool:
        """Verify a link-layer sender-identity proof.

        The sender proves knowledge of the pairwise key by MACing the
        receiver's challenge; only the true neighbor (or someone holding
        its key, i.e. a compromised coalition) can produce it.
        """
        key = self._keys.get(claimed)
        if key is None:
            return False
        expected = hmac.new(key, b"neighbor-auth" + challenge, hashlib.sha256).digest()
        return hmac.compare_digest(expected[: len(proof)], proof)

    @staticmethod
    def prove_identity(pairwise_key: bytes, challenge: bytes, length: int = 8) -> bytes:
        """The sender side of :meth:`authenticate_sender`."""
        digest = hmac.new(
            pairwise_key, b"neighbor-auth" + challenge, hashlib.sha256
        ).digest()
        return digest[:length]
