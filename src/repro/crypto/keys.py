"""Key material management.

Every sensor node has a unique ID and shares a unique secret key with the
sink (Section 2.1 of the paper).  Keys are pre-loaded before deployment; the
sink maintains a lookup table over all node IDs and keys.

In this reproduction the per-node keys are derived deterministically from a
deployment *master secret* with an HMAC-based KDF, which models a pre-loading
step and keeps experiment runs reproducible from a single seed.  A compromised
node ("mole") exposes only its own derived key -- the derivation is one-way,
so possession of ``k_i`` reveals nothing about ``k_j``.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Iterable, Iterator, Mapping

__all__ = ["derive_node_key", "KeyStore"]

#: Length of every node key in bytes (SHA-256 output size).
KEY_LEN = 32


def derive_node_key(master_secret: bytes, node_id: int) -> bytes:
    """Derive the unique key a node shares with the sink.

    The derivation is ``HMAC-SHA256(master_secret, "pnm-node-key" | id)``,
    a standard one-way KDF construction: compromising one node's key does
    not help an adversary recover any other node's key.

    Args:
        master_secret: deployment-wide secret held only by the sink
            (and the pre-loading facility).
        node_id: the node's unique non-negative identifier.

    Returns:
        A 32-byte key.

    Raises:
        ValueError: if ``node_id`` is negative.
    """
    if node_id < 0:
        raise ValueError(f"node_id must be non-negative, got {node_id}")
    info = b"pnm-node-key" + node_id.to_bytes(8, "big")
    return hmac.new(master_secret, info, hashlib.sha256).digest()


class KeyStore(Mapping[int, bytes]):
    """The sink's lookup table of node IDs to shared secret keys.

    The store behaves as an immutable mapping ``node_id -> key``.  It is the
    ground truth the sink uses both to verify MACs and to brute-force
    anonymous IDs (Section 4.2: the sink "can build a table to map all IDs
    i to i'").

    Two construction paths are supported:

    * :meth:`from_master_secret` -- derive keys for a contiguous ID range,
      modelling pre-deployment loading.
    * direct construction from an explicit ``{id: key}`` mapping, for tests
      and for modelling heterogeneous deployments.
    """

    def __init__(self, keys: Mapping[int, bytes]) -> None:
        for node_id, key in keys.items():
            if node_id < 0:
                raise ValueError(f"node_id must be non-negative, got {node_id}")
            if not key:
                raise ValueError(f"empty key for node {node_id}")
        self._keys: dict[int, bytes] = dict(keys)

    @classmethod
    def from_master_secret(
        cls, master_secret: bytes, node_ids: Iterable[int]
    ) -> "KeyStore":
        """Build a store by deriving a key for every ID in ``node_ids``."""
        return cls({nid: derive_node_key(master_secret, nid) for nid in node_ids})

    def key_of(self, node_id: int) -> bytes:
        """Return the key shared with ``node_id``.

        Raises:
            KeyError: if the node is unknown to the sink.
        """
        return self._keys[node_id]

    def node_ids(self) -> list[int]:
        """All known node IDs, sorted ascending."""
        return sorted(self._keys)

    # Mapping interface -----------------------------------------------------

    def __getitem__(self, node_id: int) -> bytes:
        return self._keys[node_id]

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return f"KeyStore({len(self._keys)} nodes)"
