"""Cryptographic substrate for PNM.

The paper assumes only efficient symmetric cryptography: each sensor node
shares a unique secret key with the sink, and marks are protected with a
secure keyed hash function ``H_k(.)``.  This package provides:

* :mod:`repro.crypto.keys` -- per-node key material, derivation from a
  deployment master secret, and the sink's key lookup table.
* :mod:`repro.crypto.mac` -- message authentication codes (truncated
  HMAC-SHA256) and anonymous-ID derivation behind a provider interface, so
  simulations can swap in a zero-cost provider for large statistical sweeps.
"""

from repro.crypto.keys import KeyStore, derive_node_key
from repro.crypto.pairwise import PairwiseKeyTable, derive_pairwise_key
from repro.crypto.mac import (
    HmacProvider,
    MacProvider,
    NullMacProvider,
    constant_time_equal,
)

__all__ = [
    "KeyStore",
    "derive_node_key",
    "derive_pairwise_key",
    "PairwiseKeyTable",
    "MacProvider",
    "HmacProvider",
    "NullMacProvider",
    "constant_time_equal",
]
