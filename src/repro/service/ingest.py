"""The sink ingest service: batched, cached, observable packet intake.

Wraps a :class:`~repro.traceback.sink.TracebackSink` with the pipeline a
production deployment needs::

    submit() ──▶ IngestQueue ──▶ VerificationPool ──▶ sink.ingest()
                 (backpressure)   (cache-accelerated,  (arrival order,
                                   optionally parallel) single thread)

Verification is the expensive, stateless half of packet processing and
runs out of line through a :class:`~repro.service.pool.VerificationPool`
whose verifier shares the sink's scheme/keys but resolves through a
:class:`~repro.service.cache.ResolverCache`.  Merging results into the
precedence graph is cheap and stateful and always happens serially in
arrival order, so the service's verdicts are identical to feeding the
same stream through ``sink.receive`` one packet at a time.
"""

from __future__ import annotations

import time

from repro.isolation.revocation import RevocationList, RevocationRecord
from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.obs.spans import Span, report_key
from repro.packets.packet import MarkedPacket
from repro.service.cache import CachingResolver, ResolverCache
from repro.service.pool import VerificationPool
from repro.service.queue import DropPolicy, IngestQueue
from repro.service.stats import LatencyHistogram, ServiceStats
from repro.traceback.sink import TracebackSink, TracebackVerdict
from repro.traceback.verify import PacketVerification, PacketVerifier

__all__ = ["SinkIngestService"]


class SinkIngestService:
    """High-throughput ingest front end for a traceback sink.

    Args:
        sink: the sink to feed.  Its scheme, key table, provider and
            resolver are reused; the sink itself is only ever touched from
            :meth:`process_batch`'s merge step, in arrival order.
        capacity: ingest queue bound (see :class:`IngestQueue`).
        drop_policy: what a full queue sheds (see :class:`DropPolicy`).
        workers: verification pool threads; ``0`` (default) is serial.
        chunk_size: packets per pool work item.
        enable_cache: memoize resolution tables and keep the marker
            hot-set (see :class:`ResolverCache`).  The hot-set engages
            only when the sink's verifier has its exhaustive fallback (the
            default), which is what keeps cached verdicts identical to
            serial ones.
        table_capacity / hot_capacity: cache bounds.
        revocations: when given, the service subscribes to it and
            invalidates cached state for every newly revoked node.
        obs: observability provider; ``None`` inherits the sink's, so the
            whole pipeline reports into one registry/tracer.  Adds intake
            counters, a queue-depth gauge, per-packet ``queue`` spans
            (opened at submit, closed when the batch takes the packet),
            and a registry mirror of the verify-latency histogram.
    """

    def __init__(
        self,
        sink: TracebackSink,
        capacity: int = 1024,
        drop_policy: DropPolicy = DropPolicy.DROP_NEWEST,
        workers: int = 0,
        chunk_size: int = 32,
        enable_cache: bool = True,
        table_capacity: int = 256,
        hot_capacity: int = 256,
        revocations: RevocationList | None = None,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        self.sink = sink
        self.obs = sink.obs if obs is None else resolve_provider(obs)
        self._open_queue_spans: dict[bytes, Span] = {}
        base = sink.verifier
        self.cache: ResolverCache | None = (
            ResolverCache(
                base.scheme,
                base.keystore,
                base.provider,
                table_capacity=table_capacity,
                hot_capacity=hot_capacity,
            )
            if enable_cache
            else None
        )
        # The hot-set narrows the search space, which is only sound under
        # the exhaustive-fallback safety net; without it, keep the sink's
        # resolver untouched and use the cache for table memoization only.
        use_hot_set = self.cache is not None and base.exhaustive_fallback
        resolver = (
            CachingResolver(base.resolver, self.cache)
            if use_hot_set
            else base.resolver
        )
        self.verifier = PacketVerifier(
            base.scheme,
            base.keystore,
            base.provider,
            resolver=resolver,
            exhaustive_fallback=base.exhaustive_fallback,
            table_factory=(
                self.cache.resolution_table if self.cache is not None else None
            ),
            obs=self.obs,
        )
        self.queue: IngestQueue[tuple[MarkedPacket, int]] = IngestQueue(
            capacity=capacity, policy=drop_policy
        )
        self.pool = VerificationPool(
            self.verifier, workers=workers, chunk_size=chunk_size
        )
        self.verify_latency = LatencyHistogram()
        self.processed = 0
        self.batches = 0
        self._closed = False
        if revocations is not None:
            revocations.subscribe(self._on_revoked)

    # Intake ------------------------------------------------------------------

    def submit(self, packet: MarkedPacket, delivering_node: int) -> bool:
        """Offer one suspicious packet to the pipeline.

        Returns:
            True if the packet was queued; False if backpressure shed it.

        Raises:
            RuntimeError: if the service has been closed.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed SinkIngestService")
        accepted = self.queue.offer((packet, delivering_node))
        self.obs.inc("ingest_submitted_total")
        if not accepted:
            self.obs.inc("ingest_dropped_total")
        self.obs.set_gauge("ingest_queue_depth", self.queue.depth)
        tracer = self.obs.tracer
        if tracer is not None and accepted:
            key = report_key(packet.report)
            self._open_queue_spans[key] = tracer.chain(
                key, "queue", depth=self.queue.depth
            )
        return accepted

    def submit_batch(
        self,
        packets: list[MarkedPacket] | tuple[MarkedPacket, ...],
        delivering_node: int,
    ) -> bool:
        """Offer a whole batch atomically: every packet queues, or none do.

        The transactional form of :meth:`submit` for senders that retry
        rejected batches wholesale (the wire server's BACKPRESSURE reply
        triggers exactly that).  Per-packet submission would leave the
        accepted prefix queued when the tail is shed, so the sender's
        resend would ingest those packets twice; here a False return
        guarantees the queue took nothing (see
        :meth:`IngestQueue.offer_all`), making the retry safe.

        Returns:
            True if every packet was queued; False if backpressure shed
            the whole batch.

        Raises:
            RuntimeError: if the service has been closed.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed SinkIngestService")
        accepted = self.queue.offer_all(
            [(packet, delivering_node) for packet in packets]
        )
        self.obs.inc("ingest_submitted_total", len(packets))
        if not accepted:
            self.obs.inc("ingest_dropped_total", len(packets))
        self.obs.set_gauge("ingest_queue_depth", self.queue.depth)
        tracer = self.obs.tracer
        if tracer is not None and accepted:
            depth = self.queue.depth
            for packet in packets:
                key = report_key(packet.report)
                self._open_queue_spans[key] = tracer.chain(
                    key, "queue", depth=depth
                )
        return accepted

    # Processing --------------------------------------------------------------

    def process_batch(self, max_packets: int | None = None) -> int:
        """Drain up to ``max_packets`` queued packets through verification.

        With pool workers, verification fans out in chunks and the results
        merge into the sink serially in arrival order afterwards; the
        cache's hot-set learns newly verified markers between batches,
        never during one (the pool's thread-safety contract).  Serially
        (``workers`` 0/1) each packet verifies and merges in turn, so the
        hot-set warms after the very first packet of a stream.

        Returns:
            The number of packets processed.
        """
        items = self.queue.take(max_packets)
        if not items:
            return 0
        total = len(items)
        self.obs.set_gauge("ingest_queue_depth", self.queue.depth)
        if self.obs.tracer is not None:
            for packet, _ in items:
                self._close_queue_span(packet)
        start = time.perf_counter()
        if self.pool.is_parallel:
            if (
                self.cache is not None
                and len(items) > 1
                and self.cache.hot_ids() is None
            ):
                # Cold hot-set: verify the first packet serially so the
                # rest of the batch fans out with a warm search space.
                packet, delivering_node = items.pop(0)
                self._merge(self.verifier.verify(packet), delivering_node)
            verifications = self.pool.verify_batch(
                [packet for packet, _ in items]
            )
            for (_, delivering_node), verification in zip(
                items, verifications, strict=True
            ):
                self._merge(verification, delivering_node)
        else:
            for packet, delivering_node in items:
                self._merge(self.verifier.verify(packet), delivering_node)
        elapsed = time.perf_counter() - start
        self.verify_latency.observe(elapsed / total, times=total)
        self.obs.observe("ingest_verify_seconds", elapsed / total, times=total)
        self.obs.inc("ingest_processed_total", total)
        self.processed += total
        self.batches += 1
        return total

    def _close_queue_span(self, packet: MarkedPacket, dropped: bool = False) -> None:
        """Finish the ``queue`` span opened when ``packet`` was submitted."""
        tracer = self.obs.tracer
        if tracer is None:
            return
        span = self._open_queue_spans.pop(report_key(packet.report), None)
        if span is not None:
            if dropped:
                span.attrs["dropped"] = True
            tracer.finish(span)

    def _merge(
        self, verification: PacketVerification, delivering_node: int
    ) -> None:
        """Fold one verification into the sink and teach the hot-set."""
        self.sink.ingest(verification, delivering_node)
        if self.cache is not None and verification.chain_ids:
            self.cache.touch(verification.chain_ids)

    def flush(self) -> int:
        """Process until the queue is empty; returns packets processed."""
        total = 0
        while True:
            processed = self.process_batch()
            if processed == 0:
                return total
            total += processed

    def verdict(self) -> TracebackVerdict:
        """Flush, then return the sink's aggregate verdict."""
        self.flush()
        return self.sink.verdict()

    # Lifecycle ---------------------------------------------------------------

    def close(self, drain: bool = True) -> int:
        """Shut the pipeline down.

        Args:
            drain: process everything still queued first (default); when
                False, queued packets are discarded and counted as taken.

        Returns:
            Packets processed during the final drain.
        """
        if self._closed:
            return 0
        drained = self.flush() if drain else 0
        if not drain:
            for packet, _ in self.queue.take():
                self._close_queue_span(packet, dropped=True)
        tracer = self.obs.tracer
        if tracer is not None:
            # Spans for packets shed by DROP_OLDEST (or never drained)
            # would otherwise stay open and unrecorded.
            for key in sorted(self._open_queue_spans):
                span = self._open_queue_spans[key]
                span.attrs["dropped"] = True
                tracer.finish(span)
            self._open_queue_spans.clear()
        self.queue.close()
        self.pool.shutdown()
        self._closed = True
        return drained

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SinkIngestService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close(drain=exc_type is None)

    def invalidate_node(self, node_id: int) -> None:
        """Purge cached resolver state derived from ``node_id``.

        Two callers: key revocation (:mod:`repro.isolation`, via the
        subscribed revocation log) and node death (the fault injector,
        :mod:`repro.faults` -- a crashed node's packets stop mid-stream
        and its memoized tables and hot-set slot must not linger).
        No-op when caching is disabled.
        """
        if self.cache is not None:
            self.cache.invalidate_node(node_id)

    def invalidate_all(self) -> None:
        """Purge every memoized table and the whole marker hot-set.

        The rebalance-scale form of :meth:`invalidate_node`: when a
        cluster shard's key range changes (a peer died or joined), the
        routes it will see shift wholesale and per-node purges would have
        to enumerate the world.  Verification correctness never depends
        on the cache, so the only cost is re-warming.  No-op when caching
        is disabled.
        """
        if self.cache is not None:
            self.cache.clear()

    # Observability -----------------------------------------------------------

    def _on_revoked(self, record: RevocationRecord) -> None:
        self.invalidate_node(record.node_id)

    def stats(self) -> ServiceStats:
        """A consistent observability snapshot of the whole pipeline."""
        queue_stats = self.queue.stats()
        return ServiceStats(
            submitted=queue_stats["offered"],
            accepted=queue_stats["accepted"],
            dropped=queue_stats["dropped_newest"] + queue_stats["dropped_oldest"],
            processed=self.processed,
            batches=self.batches,
            workers=self.pool.workers,
            queue=queue_stats,
            cache=self.cache.stats() if self.cache is not None else None,
            verify_latency=self.verify_latency.as_dict(),
        )

    def stats_json(self, indent: int | None = None) -> str:
        """The :meth:`stats` snapshot rendered as JSON."""
        return self.stats().to_json(indent=indent)

    def publish_stats(self) -> None:
        """Mirror the pipeline's snapshot counters into the obs registry.

        Run-end companion to the live counters the pipeline already
        maintains: queue and cache totals become gauges named
        ``ingest_queue_*`` / ``resolver_cache_*``.
        """
        queue_stats = self.queue.stats()
        for name in sorted(queue_stats):
            value = queue_stats[name]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.obs.set_gauge(f"ingest_queue_{name}", value)
        if self.cache is not None:
            self.cache.publish(self.obs)

    def __repr__(self) -> str:
        return (
            f"SinkIngestService(queue={self.queue.depth}/{self.queue.capacity}, "
            f"processed={self.processed}, workers={self.pool.workers}, "
            f"cache={'on' if self.cache is not None else 'off'})"
        )
