"""Sink ingest service: the production front end of the traceback sink.

The paper's feasibility argument (Section 4.2) is throughput arithmetic:
millions of hashes per second against tens of suspicious packets per
second.  This package turns that arithmetic into an actual service in
front of :class:`~repro.traceback.sink.TracebackSink`:

* :class:`IngestQueue` -- bounded intake with an explicit drop policy and
  exact backpressure counters;
* :class:`VerificationPool` -- chunked batch verification, optionally
  across worker threads, with a deterministic serial fallback;
* :class:`ResolverCache` / :class:`CachingResolver` -- memoized resolution
  tables plus a hot-set of recent markers, collapsing the exhaustive
  ``O(N)``-hash search to near topology-bounded cost on steady traffic;
* :class:`ServiceStats` -- counters, latency histograms, cache hit rates
  and queue depth, exportable as JSON;
* :class:`SinkIngestService` -- the pipeline tying them together, with
  verdicts identical to serial ``sink.receive`` processing.

See ``docs/service.md`` for the architecture and contracts.
"""

from repro.service.cache import CachingResolver, ResolverCache
from repro.service.ingest import SinkIngestService
from repro.service.pool import VerificationPool
from repro.service.queue import DropPolicy, IngestQueue
from repro.service.stats import LatencyHistogram, ServiceStats

__all__ = [
    "SinkIngestService",
    "IngestQueue",
    "DropPolicy",
    "VerificationPool",
    "ResolverCache",
    "CachingResolver",
    "ServiceStats",
    "LatencyHistogram",
]
