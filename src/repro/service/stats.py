"""Observability surface of the ingest service.

Every component of the pipeline keeps its own counters; the service
assembles them into a single :class:`ServiceStats` snapshot that renders
to JSON for dashboards and the throughput bench.  Latencies go into a
fixed-bucket logarithmic histogram -- constant memory no matter how many
packets flow through, which is the point of running as a service.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["LatencyHistogram", "ServiceStats"]

#: Default histogram range: 1 microsecond to ~16 seconds in powers of two.
_MIN_BUCKET = 1e-6
_NUM_BUCKETS = 24


class LatencyHistogram:
    """A log-bucketed latency histogram (seconds).

    Buckets are powers of two starting at ``min_bucket``; observations
    above the last bound land in an overflow bucket.  Thread-safe.
    """

    def __init__(
        self, min_bucket: float = _MIN_BUCKET, num_buckets: int = _NUM_BUCKETS
    ):
        if min_bucket <= 0:
            raise ValueError(f"min_bucket must be positive, got {min_bucket}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self._bounds = [min_bucket * (2.0**i) for i in range(num_buckets)]
        # One extra bucket catches overflow past the largest bound.
        self._counts = [0] * (num_buckets + 1)  # guarded-by: _lock
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.min = float("inf")  # guarded-by: _lock
        self.max = 0.0  # guarded-by: _lock

    def observe(self, seconds: float, times: int = 1) -> None:
        """Record ``times`` observations of ``seconds`` each."""
        if times < 1:
            return
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if seconds <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += times
            self.count += times
            self.total += seconds * times
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                return self._bounds[i] if i < len(self._bounds) else self.max
        return self.max

    def as_dict(self) -> dict[str, Any]:
        """Summary plus the non-empty buckets (``le`` upper bounds)."""
        with self._lock:
            counts = list(self._counts)
            count = self.count
        return {
            "count": count,
            "mean_s": self.mean,
            "min_s": self.min if count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.5),
            "p90_s": self.quantile(0.9),
            "p99_s": self.quantile(0.99),
            "buckets": [
                {"le_s": self._bounds[i] if i < len(self._bounds) else None,
                 "count": c}
                for i, c in enumerate(counts)
                if c
            ],
        }


@dataclass(frozen=True)
class ServiceStats:
    """One observability snapshot of the whole ingest pipeline.

    Attributes:
        submitted: packets offered to the service.
        accepted: packets that entered the queue.
        dropped: packets shed by backpressure (any policy).
        processed: packets verified and merged into the sink.
        batches: number of verification batches executed.
        workers: verification pool size (0 = serial).
        queue: the ingest queue's counters.
        cache: the resolver cache's counters (``None`` when disabled).
        verify_latency: per-packet verification latency histogram summary.
    """

    submitted: int
    accepted: int
    dropped: int
    processed: int
    batches: int
    workers: int
    queue: dict[str, Any]
    cache: dict[str, Any] | None
    verify_latency: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The snapshot as a JSON-ready dict."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "dropped": self.dropped,
            "processed": self.processed,
            "batches": self.batches,
            "workers": self.workers,
            "queue": self.queue,
            "cache": self.cache,
            "verify_latency": self.verify_latency,
        }

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent)
