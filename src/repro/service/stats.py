"""Observability surface of the ingest service.

Every component of the pipeline keeps its own counters; the service
assembles them into a single :class:`ServiceStats` snapshot that renders
to JSON for dashboards and the throughput bench.  Latencies go into a
fixed-bucket logarithmic histogram -- constant memory no matter how many
packets flow through, which is the point of running as a service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.instruments import HistogramSeries

__all__ = ["LatencyHistogram", "ServiceStats"]

#: Default histogram range: 1 microsecond to ~16 seconds in powers of two.
_MIN_BUCKET = 1e-6
_NUM_BUCKETS = 24


class LatencyHistogram(HistogramSeries):
    """A log-bucketed latency histogram (seconds).

    The seconds-flavored face of :class:`repro.obs.HistogramSeries`: same
    power-of-two buckets and O(1) bucket assignment, but the JSON summary
    keeps this module's historical ``_s``-suffixed keys, so dashboards and
    tests reading ``mean_s``/``p99_s`` are unaffected by the move.
    """

    def __init__(
        self, min_bucket: float = _MIN_BUCKET, num_buckets: int = _NUM_BUCKETS
    ):
        super().__init__(min_bucket=min_bucket, num_buckets=num_buckets)

    def observe(self, seconds: float, times: int = 1) -> None:
        """Record ``times`` observations of ``seconds`` each."""
        super().observe(seconds, times=times)

    def as_dict(self) -> dict[str, Any]:
        """Summary plus the non-empty buckets (``le_s`` upper bounds)."""
        with self._lock:
            counts = list(self._counts)
            count = self.count
        return {
            "count": count,
            "mean_s": self.mean,
            "min_s": self.min if count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.5),
            "p90_s": self.quantile(0.9),
            "p99_s": self.quantile(0.99),
            "buckets": [
                {"le_s": self._bounds[i] if i < len(self._bounds) else None,
                 "count": c}
                for i, c in enumerate(counts)
                if c
            ],
        }


@dataclass(frozen=True)
class ServiceStats:
    """One observability snapshot of the whole ingest pipeline.

    Attributes:
        submitted: packets offered to the service.
        accepted: packets that entered the queue.
        dropped: packets shed by backpressure (any policy).
        processed: packets verified and merged into the sink.
        batches: number of verification batches executed.
        workers: verification pool size (0 = serial).
        queue: the ingest queue's counters.
        cache: the resolver cache's counters (``None`` when disabled).
        verify_latency: per-packet verification latency histogram summary.
    """

    submitted: int
    accepted: int
    dropped: int
    processed: int
    batches: int
    workers: int
    queue: dict[str, Any]
    cache: dict[str, Any] | None
    verify_latency: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The snapshot as a JSON-ready dict."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "dropped": self.dropped,
            "processed": self.processed,
            "batches": self.batches,
            "workers": self.workers,
            "queue": self.queue,
            "cache": self.cache,
            "verify_latency": self.verify_latency,
        }

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent)
