"""Parallel packet verification with a deterministic serial fallback.

Verification of distinct packets is independent -- it reads only the
scheme, key table and provider -- so a batch can fan out across workers.
The crypto is pure-Python ``hmac``/``hashlib`` over short buffers, which
holds the GIL, so thread workers mostly help when the MAC provider (or a
future C/accelerator provider) releases it; ``workers=0`` therefore runs
serial-inline and is the default.  Results always come back in submission
order, so downstream merging into the precedence graph is deterministic
regardless of worker scheduling.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.obs.profiling import NoopObsProvider, ObsProvider, resolve_provider
from repro.packets.packet import MarkedPacket
from repro.traceback.verify import PacketVerification, PacketVerifier

__all__ = ["VerificationPool"]


class VerificationPool:
    """Chunked batch verification over an optional thread pool.

    Args:
        verifier: the verifier applied to every packet.  With workers it
            must be safe to call concurrently -- true for the stock
            resolvers and for :class:`repro.service.CachingResolver` as
            long as hot-set updates happen between batches (the ingest
            service's contract).
        workers: worker threads; ``0`` or ``1`` verifies serially inline.
        chunk_size: packets per submitted work item -- large enough to
            amortize future/queue overhead, small enough to load-balance.
        obs: observability provider; ``None`` inherits the verifier's.
            Counts batches and fanned-out chunks.
    """

    def __init__(
        self,
        verifier: PacketVerifier,
        workers: int = 0,
        chunk_size: int = 32,
        obs: ObsProvider | NoopObsProvider | None = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.verifier = verifier
        self.workers = workers
        self.chunk_size = chunk_size
        self.obs = verifier.obs if obs is None else resolve_provider(obs)
        self._executor: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-verify"
            )
            if workers > 1
            else None
        )

    @property
    def is_parallel(self) -> bool:
        return self._executor is not None

    def verify_batch(
        self, packets: Sequence[MarkedPacket]
    ) -> list[PacketVerification]:
        """Verify ``packets``, returning results in submission order."""
        items = list(packets)
        self.obs.inc("pool_batches_total")
        if self._executor is None or len(items) <= self.chunk_size:
            return self.verifier.verify_batch(items)
        chunks = [
            items[i : i + self.chunk_size]
            for i in range(0, len(items), self.chunk_size)
        ]
        self.obs.inc("pool_chunks_total", len(chunks))
        futures = [
            self._executor.submit(self.verifier.verify_batch, chunk)
            for chunk in chunks
        ]
        results: list[PacketVerification] = []
        for future in futures:  # submission order == arrival order
            results.extend(future.result())
        return results

    def shutdown(self) -> None:
        """Stop the workers; the pool must not be used afterwards."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def stats(self) -> dict[str, Any]:
        """The pool's configuration as a JSON-ready dict."""
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "parallel": self.is_parallel,
        }

    def __repr__(self) -> str:
        mode = f"workers={self.workers}" if self.is_parallel else "serial"
        return f"VerificationPool({mode}, chunk_size={self.chunk_size})"
