"""Resolver caching: memoized resolution tables plus a marker hot-set.

Two observations make the exhaustive anonymous-ID search (Section 4.2)
cheap at service scale:

1. A resolution table depends only on the report bytes ``M`` (anonymous
   IDs are ``H'_{k_i}(M | i)``), so duplicate deliveries of the same
   report -- retransmissions, multi-path -- can share one table.
   :meth:`ResolverCache.resolution_table` memoizes tables in an LRU keyed
   by the report digest.
2. Steady-state traffic keeps traversing the same routes, so the nodes
   that marked recent packets will mark the next ones too.  The cache
   maintains that *hot-set* of recently verified markers;
   :class:`CachingResolver` offers it as the search space before the full
   key table, degrading :class:`~repro.traceback.resolver.ExhaustiveResolver`
   cost from ``O(N)`` hashes per packet to roughly
   ``O(|route|)`` -- near :class:`~repro.traceback.resolver.TopologyBoundedResolver`
   cost without knowing the topology.  The verifier's exhaustive fallback
   guarantees a hot-set miss never changes the outcome, exactly as for
   topology-bounded search.

Both structures invalidate on key revocation: once
:meth:`ResolverCache.invalidate_node` runs (wired to
:meth:`repro.isolation.RevocationList.subscribe` by the service), no cached
state derived from that node's key survives.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any

from repro.crypto.keys import KeyStore
from repro.crypto.mac import MacProvider
from repro.marking.base import MarkingScheme
from repro.packets.packet import MarkedPacket

__all__ = ["ResolverCache", "CachingResolver"]


class ResolverCache:
    """LRU-bounded memoization for the sink's anonymous-ID resolution.

    Thread-safety: all public methods may be called concurrently; table
    construction happens outside the lock, so two workers racing on the
    same new report may both build the (identical) table -- wasted work,
    never wrong results.

    Args:
        scheme: the deployed marking scheme.
        keystore: the sink's key table.
        provider: MAC provider matching the deployment.
        table_capacity: distinct reports whose tables are retained.
        hot_capacity: recently seen marker IDs retained in the hot-set.
    """

    def __init__(
        self,
        scheme: MarkingScheme,
        keystore: KeyStore,
        provider: MacProvider,
        table_capacity: int = 256,
        hot_capacity: int = 256,
    ):
        if table_capacity < 1:
            raise ValueError(f"table_capacity must be >= 1, got {table_capacity}")
        if hot_capacity < 1:
            raise ValueError(f"hot_capacity must be >= 1, got {hot_capacity}")
        self.scheme = scheme
        self.keystore = keystore
        self.provider = provider
        self.table_capacity = table_capacity
        self.hot_capacity = hot_capacity
        self._tables: OrderedDict[bytes, object | None] = OrderedDict()  # guarded-by: _lock
        self._hot: OrderedDict[int, None] = OrderedDict()  # guarded-by: _lock
        self._hot_snapshot: list[int] | None = None  # guarded-by: _lock
        self._lock = threading.Lock()
        # Counters (read without the lock for display only).
        self.table_hits = 0  # guarded-by: _lock
        self.table_misses = 0  # guarded-by: _lock
        self.table_evictions = 0  # guarded-by: _lock
        self.hot_searches = 0  # guarded-by: _lock
        self.hot_misses = 0  # guarded-by: _lock
        self.invalidations = 0  # guarded-by: _lock

    # Resolution-table memo ---------------------------------------------------

    def resolution_table(self, packet: MarkedPacket) -> object | None:
        """The scheme's resolution table for ``packet``, memoized by report.

        Safe as a :class:`~repro.traceback.verify.PacketVerifier`
        ``table_factory`` because every scheme's table depends only on the
        report bytes and the key table.
        """
        key = hashlib.sha256(packet.report_wire).digest()
        with self._lock:
            if key in self._tables:
                self._tables.move_to_end(key)
                self.table_hits += 1
                return self._tables[key]
            self.table_misses += 1
        table = self.scheme.build_resolution_table(
            packet, self.keystore, self.provider
        )
        with self._lock:
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self.table_capacity:
                self._tables.popitem(last=False)
                self.table_evictions += 1
        return table

    # Marker hot-set ----------------------------------------------------------

    def hot_ids(self) -> list[int] | None:
        """A sorted snapshot of the hot-set, or ``None`` when empty.

        The snapshot is cached between membership changes -- callers hit
        this once per mark, so rebuilding it lazily keeps the hot path at
        dictionary-read cost.  Callers must not mutate the returned list.
        """
        with self._lock:
            if not self._hot:
                return None
            if self._hot_snapshot is None:
                self._hot_snapshot = sorted(self._hot)
            return self._hot_snapshot

    def touch(self, node_ids: list[int]) -> None:
        """Mark ``node_ids`` as recently verified markers (LRU refresh)."""
        with self._lock:
            members_before = len(self._hot)
            for node_id in node_ids:
                self._hot[node_id] = None
                self._hot.move_to_end(node_id)
            while len(self._hot) > self.hot_capacity:
                self._hot.popitem(last=False)
                members_before = -1  # evicted: membership changed
            if len(self._hot) != members_before:
                self._hot_snapshot = None

    def record_hot_search(self) -> None:
        """Count one mark search answered from the hot-set."""
        with self._lock:
            self.hot_searches += 1

    def record_hot_miss(self) -> None:
        """Count one hot-set search that needed the exhaustive fallback."""
        with self._lock:
            self.hot_misses += 1

    # Invalidation ------------------------------------------------------------

    def invalidate_node(self, node_id: int) -> None:
        """Drop all cached state derived from ``node_id``'s key.

        Called on key revocation (:mod:`repro.isolation`).  The node
        leaves the hot-set, and every memoized table is purged -- tables
        embed the node's anonymous IDs and must not resolve to a revoked
        key on the next lookup.
        """
        with self._lock:
            self._hot.pop(node_id, None)
            self._hot_snapshot = None
            self._tables.clear()
            self.invalidations += 1

    def clear(self) -> None:
        """Empty both the table memo and the hot-set (counters survive)."""
        with self._lock:
            self._tables.clear()
            self._hot.clear()
            self._hot_snapshot = None

    def stats(self) -> dict[str, Any]:
        """The cache's counters as a JSON-ready dict."""
        with self._lock:
            tables = len(self._tables)
            hot = len(self._hot)
        lookups = self.table_hits + self.table_misses
        return {
            "table_capacity": self.table_capacity,
            "tables_cached": tables,
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "table_evictions": self.table_evictions,
            "table_hit_rate": self.table_hits / lookups if lookups else 0.0,
            "hot_capacity": self.hot_capacity,
            "hot_size": hot,
            "hot_searches": self.hot_searches,
            "hot_misses": self.hot_misses,
            "hot_hit_rate": (
                1.0 - self.hot_misses / self.hot_searches
                if self.hot_searches
                else 0.0
            ),
            "invalidations": self.invalidations,
        }

    def publish(self, obs: Any) -> None:
        """Mirror the cache counters into an obs provider's registry.

        Gauges, not counters: a publish reflects current totals and must
        overwrite what the previous publish wrote.  Called at snapshot
        time (not per lookup) so the memoization hot path stays untouched.
        """
        stats = self.stats()
        for name in sorted(stats):
            value = stats[name]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                obs.set_gauge(f"resolver_cache_{name}", value)

    def __repr__(self) -> str:
        return (
            f"ResolverCache(tables={len(self._tables)}, hot={len(self._hot)})"
        )


class CachingResolver:
    """Resolver adapter that tries the cache's hot-set before everything.

    Wraps an inner resolver: bounded inner searches pass through
    untouched; when the inner resolver would search exhaustively (returns
    ``None``) and the hot-set is non-empty, the hot-set is offered
    instead.  Requires the verifier's ``exhaustive_fallback`` so a cold
    hot-set can never change verification results -- the same contract
    topology-bounded search already relies on.

    ``notify_miss`` feedback is attributed to the hot-set (the common case
    with an exhaustive inner resolver) and forwarded to adaptive inner
    resolvers.
    """

    def __init__(self, inner: object, cache: ResolverCache):
        self.inner = inner
        self.cache = cache

    def search_ids(
        self, packet: MarkedPacket, prev_verified: int | None
    ) -> list[int] | None:
        """The inner search space, with the hot-set replacing 'everything'."""
        search = self.inner.search_ids(packet, prev_verified)
        if search is not None:
            return search
        hot = self.cache.hot_ids()
        if hot is None:
            return None
        self.cache.record_hot_search()
        return hot

    def notify_miss(self) -> None:
        """Verifier feedback: the offered search space missed a mark."""
        self.cache.record_hot_miss()
        notify = getattr(self.inner, "notify_miss", None)
        if notify is not None:
            notify()

    def __repr__(self) -> str:
        return f"CachingResolver(inner={self.inner!r})"
