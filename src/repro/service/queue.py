"""Bounded ingest queue with explicit backpressure accounting.

A production sink cannot buffer unboundedly: when suspicious traffic
arrives faster than verification drains it, something must give, and the
operator must be able to see exactly how much gave.  The queue therefore
has a hard capacity, a drop policy chosen at construction, and exact
counters for every shed packet.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Any, Generic, TypeVar

__all__ = ["DropPolicy", "IngestQueue"]

T = TypeVar("T")


class DropPolicy(enum.Enum):
    """What a full queue does with the next offered item.

    ``DROP_NEWEST`` rejects the incoming item (tail drop): the sink keeps
    the oldest evidence, which preserves arrival-order semantics for what
    it has already accepted.  ``DROP_OLDEST`` evicts the head to admit the
    newcomer: the sink tracks the freshest traffic, useful when moles are
    expected to move and stale packets lose value.
    """

    DROP_NEWEST = "drop-newest"
    DROP_OLDEST = "drop-oldest"


class IngestQueue(Generic[T]):
    """A thread-safe bounded FIFO with drop-policy backpressure.

    Args:
        capacity: maximum queued items; offers beyond it invoke ``policy``.
        policy: see :class:`DropPolicy`.
    """

    def __init__(
        self, capacity: int = 1024, policy: DropPolicy = DropPolicy.DROP_NEWEST
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self._items: deque[T] = deque()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        # Exact backpressure accounting.
        self.offered = 0  # guarded-by: _lock
        self.accepted = 0  # guarded-by: _lock
        self.dropped_newest = 0  # guarded-by: _lock
        self.dropped_oldest = 0  # guarded-by: _lock
        self.taken = 0  # guarded-by: _lock
        self.high_water = 0  # guarded-by: _lock

    def offer(self, item: T) -> bool:
        """Enqueue ``item``, applying the drop policy when full.

        Returns:
            True if ``item`` entered the queue (under ``DROP_OLDEST`` this
            may have evicted the head), False if it was shed.

        Raises:
            RuntimeError: if the queue has been closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot offer to a closed IngestQueue")
            self.offered += 1
            if len(self._items) >= self.capacity:
                if self.policy is DropPolicy.DROP_NEWEST:
                    self.dropped_newest += 1
                    return False
                self._items.popleft()
                self.dropped_oldest += 1
            self._items.append(item)
            self.accepted += 1
            self.high_water = max(self.high_water, len(self._items))
            return True

    def offer_all(self, items: list[T]) -> bool:
        """Atomically enqueue every item of ``items``, or none of them.

        The batch form of :meth:`offer` for senders that retry whole
        batches: under ``DROP_NEWEST`` the batch is admitted only when
        the queue has room for all of it -- a False return guarantees
        nothing entered the queue, so a resend cannot double-count the
        accepted prefix.  Under ``DROP_OLDEST`` admission never fails;
        the head is evicted as needed, exactly as per-item offers would.

        Returns:
            True if every item entered the queue, False if the whole
            batch was shed (``DROP_NEWEST`` only).

        Raises:
            RuntimeError: if the queue has been closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot offer to a closed IngestQueue")
            self.offered += len(items)
            if self.policy is DropPolicy.DROP_NEWEST:
                if len(self._items) + len(items) > self.capacity:
                    self.dropped_newest += len(items)
                    return False
                self._items.extend(items)
            else:
                for item in items:
                    if len(self._items) >= self.capacity:
                        self._items.popleft()
                        self.dropped_oldest += 1
                    self._items.append(item)
            self.accepted += len(items)
            self.high_water = max(self.high_water, len(self._items))
            return True

    def take(self, max_items: int | None = None) -> list[T]:
        """Dequeue up to ``max_items`` items (all queued when ``None``)."""
        if max_items is not None and max_items < 0:
            raise ValueError(f"max_items must be >= 0, got {max_items}")
        with self._lock:
            count = len(self._items)
            if max_items is not None:
                count = min(count, max_items)
            batch = [self._items.popleft() for _ in range(count)]
            self.taken += len(batch)
            return batch

    @property
    def depth(self) -> int:
        """Items currently queued."""
        with self._lock:
            return len(self._items)

    @property
    def dropped(self) -> int:
        """Total items shed by backpressure, either policy."""
        return self.dropped_newest + self.dropped_oldest

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Refuse further offers; queued items can still be taken."""
        with self._lock:
            self._closed = True

    def stats(self) -> dict[str, Any]:
        """The queue's counters as a JSON-ready dict."""
        with self._lock:
            depth = len(self._items)
        return {
            "capacity": self.capacity,
            "policy": self.policy.value,
            "depth": depth,
            "high_water": self.high_water,
            "offered": self.offered,
            "accepted": self.accepted,
            "dropped_newest": self.dropped_newest,
            "dropped_oldest": self.dropped_oldest,
            "taken": self.taken,
            "closed": self._closed,
        }

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        return (
            f"IngestQueue(depth={self.depth}/{self.capacity}, "
            f"policy={self.policy.value}, dropped={self.dropped})"
        )
