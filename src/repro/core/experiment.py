"""Running scenarios and scoring their outcomes.

A run injects a budget of bogus packets and asks the sink for its verdict.
The score distinguishes the three outcomes that matter for the security
matrix:

* **caught** -- the suspect neighborhood contains at least one true mole
  (the paper's success criterion: one-hop precision).
* **framed** -- the sink identified a suspect neighborhood containing *no*
  mole: the attack successfully redirected punishment onto innocents.
* **unidentified** -- the verdict never singled out a neighborhood within
  the packet budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.build import BuiltScenario, build_scenario
from repro.core.scenario import Scenario

__all__ = ["ExperimentResult", "run_scenario"]


@dataclass(frozen=True)
class ExperimentResult:
    """Scored outcome of one scenario run.

    Attributes:
        scenario: the configuration that ran.
        mole_ids: ground-truth compromised nodes.
        packets_sent: packets the source injected.
        packets_delivered: packets that survived to the sink.
        identified: whether the final verdict names a suspect neighborhood.
        suspect_center: the neighborhood's center node (when identified).
        suspect_members: the full suspect set (empty when unidentified).
        caught: identified and a mole is in the suspect set.
        framed: identified and no mole is in the suspect set.
        loop_detected: identity-swapping loop observed.
        single_packet_caught: whether the *last packet alone* implicated a
            mole (meaningful for deterministic nested marking's
            single-packet traceback; None if no packet arrived).
        observed_nodes: how many distinct markers the sink verified.
    """

    scenario: Scenario
    mole_ids: frozenset[int]
    packets_sent: int
    packets_delivered: int
    identified: bool
    suspect_center: int | None
    suspect_members: frozenset[int]
    caught: bool
    framed: bool
    loop_detected: bool
    single_packet_caught: bool | None
    observed_nodes: int

    @property
    def outcome(self) -> str:
        """One of ``caught``, ``framed``, ``suppressed``, ``unidentified``.

        ``suppressed`` means no attack packet reached the sink at all: the
        mole's only way to hide was to drop everything, which defeats the
        injection attack itself (the paper's footnote 2 case).
        """
        if self.packets_delivered == 0:
            return "suppressed"
        if self.caught:
            return "caught"
        if self.framed:
            return "framed"
        return "unidentified"


def run_scenario(
    sc: Scenario,
    num_packets: int = 300,
    built: BuiltScenario | None = None,
) -> ExperimentResult:
    """Build (unless given), run and score a scenario.

    Args:
        sc: the configuration.
        num_packets: injection budget.
        built: reuse an existing build (e.g. to continue a run).
    """
    if num_packets < 1:
        raise ValueError(f"num_packets must be >= 1, got {num_packets}")
    b = built if built is not None else build_scenario(sc)
    b.pipeline.push_many(num_packets)

    verdict = b.sink.verdict()
    suspect = verdict.suspect
    members = frozenset(suspect.members) if suspect is not None else frozenset()
    caught = bool(members & b.mole_ids)
    framed = bool(members) and not caught

    single = b.sink.last_packet_suspect()
    single_caught = (
        bool(single.members & b.mole_ids) if single is not None else None
    )

    return ExperimentResult(
        scenario=sc,
        mole_ids=b.mole_ids,
        packets_sent=b.pipeline.metrics.packets_injected,
        packets_delivered=b.pipeline.metrics.packets_delivered,
        identified=verdict.identified,
        suspect_center=suspect.center if suspect is not None else None,
        suspect_members=members,
        caught=caught,
        framed=framed,
        loop_detected=verdict.loop_detected,
        single_packet_caught=single_caught,
        observed_nodes=b.sink.precedence.observed_count(),
    )
