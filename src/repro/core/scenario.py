"""Scenario declarations.

A scenario captures one cell of the paper's evaluation space: a linear
forwarding path of ``n`` nodes (the paper's own experimental deployment), a
marking scheme, a source mole at the far end, and optionally one colluding
forwarding mole running a taxonomy attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Scenario", "ATTACK_NAMES"]

#: Attack registry names accepted by :attr:`Scenario.attack` (see
#: :mod:`repro.core.build` for their construction).
ATTACK_NAMES = (
    "none",
    "honest-mole",
    "no-mark",
    "insert-garbage",
    "insert-frame",
    "remove-upstream",
    "remove-targeted",
    "remove-all",
    "remove-remark",
    "reorder",
    "alter",
    "selective-drop",
    "identity-swap",
    "unprotected-alter",
)


@dataclass(frozen=True)
class Scenario:
    """One attack/defense configuration on a linear path.

    Attributes:
        n_forwarders: path length ``n`` (forwarders ``V_1 .. V_n``).
        scheme: marking scheme registry name (``none``, ``ppm``, ``ams``,
            ``nested``, ``naive-pnm``, ``pnm``, ``partial-nested``).
        mark_prob: per-node marking probability; ``None`` derives it from
            ``target_marks`` as ``min(1, target_marks / n)`` (the paper
            fixes 3 marks per packet on average).  Deterministic schemes
            ignore it.
        target_marks: average marks per packet when ``mark_prob`` is None.
        attack: colluding forwarding-mole attack (one of
            :data:`ATTACK_NAMES`); ``"none"`` means the only mole is the
            source.
        attack_params: attack-specific knobs (e.g. ``{"num_fake": 3}``).
        mole_position: 1-based path position ``x`` of the forwarding mole
            ``V_x``; ``None`` puts it mid-path.
        seed: master seed; every RNG in the run derives from it.
        crypto: ``"real"`` (HMAC-SHA256) or ``"fast"`` (zero-cost provider
            -- honest statistical runs only, never adversarial ones).
        id_len: plain-ID field bytes.
        anon_id_len: anonymous-ID field bytes (PNM).
        mac_len: MAC field bytes.
    """

    n_forwarders: int
    scheme: str = "pnm"
    mark_prob: float | None = None
    target_marks: float = 3.0
    attack: str = "none"
    attack_params: dict[str, Any] = field(default_factory=dict)
    mole_position: int | None = None
    seed: int = 0
    crypto: str = "real"
    id_len: int = 2
    anon_id_len: int = 4
    mac_len: int = 4

    def __post_init__(self) -> None:
        if self.n_forwarders < 1:
            raise ValueError(
                f"n_forwarders must be >= 1, got {self.n_forwarders}"
            )
        if self.attack not in ATTACK_NAMES:
            raise ValueError(
                f"unknown attack {self.attack!r}; choose from {ATTACK_NAMES}"
            )
        if self.crypto not in ("real", "fast"):
            raise ValueError(f"crypto must be 'real' or 'fast', got {self.crypto!r}")
        if self.mark_prob is not None and not 0.0 < self.mark_prob <= 1.0:
            raise ValueError(f"mark_prob must be in (0, 1], got {self.mark_prob}")
        if self.mole_position is not None and not (
            1 <= self.mole_position <= self.n_forwarders
        ):
            raise ValueError(
                f"mole_position must be in [1, {self.n_forwarders}], "
                f"got {self.mole_position}"
            )
        if self.crypto == "fast" and self.attack != "none":
            raise ValueError(
                "the fast (null-MAC) provider offers no tamper resistance; "
                "adversarial scenarios require crypto='real'"
            )

    @property
    def resolved_mark_prob(self) -> float:
        """The marking probability actually deployed."""
        if self.mark_prob is not None:
            return self.mark_prob
        return min(1.0, self.target_marks / self.n_forwarders)

    @property
    def resolved_mole_position(self) -> int:
        """The forwarding mole's 1-based path position."""
        if self.mole_position is not None:
            return self.mole_position
        return max(1, self.n_forwarders // 2)
