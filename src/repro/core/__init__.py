"""High-level experiment API.

:class:`Scenario` declares a complete attack/defense configuration -- path
length, marking scheme, colluding attack, crypto realism, seed -- and
:func:`build_scenario` materializes it into a runnable
:class:`~repro.sim.pipeline.PathPipeline` with a traceback sink.
:func:`run_scenario` executes it and scores the outcome (mole caught /
innocent framed / unidentified).

This is the API the examples, the security-matrix experiment and most
integration tests use.
"""

from repro.core.build import BuiltScenario, build_scenario
from repro.core.experiment import ExperimentResult, run_scenario
from repro.core.scenario import ATTACK_NAMES, Scenario

__all__ = [
    "Scenario",
    "ATTACK_NAMES",
    "BuiltScenario",
    "build_scenario",
    "ExperimentResult",
    "run_scenario",
]
