"""Materializing scenarios into runnable pipelines.

Builds the full object graph for a :class:`~repro.core.scenario.Scenario`:
linear-path topology, per-node keys and RNGs, the marking scheme, honest
forwarders, the colluding moles with their attack, the traceback sink, and
the path pipeline tying them together.

Node IDs on the built path equal their 1-based path position: forwarder
``V_i`` has ID ``i`` (``V_1`` next to the source, ``V_n`` next to the
sink); the source mole has ID ``n + 1``; the sink is ``0``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.adversary.attacks import (
    Attack,
    HonestBehaviorAttack,
    IdentitySwappingAttack,
    MarkAlteringAttack,
    MarkInsertionAttack,
    MarkRemovalAttack,
    MarkReorderingAttack,
    NoMarkAttack,
    SelectiveDroppingAttack,
    TargetedMarkRemovalAttack,
    UnprotectedBitAlteringAttack,
)
from repro.adversary.coalition import Coalition
from repro.adversary.moles import ForwardingMole, MoleReportSource
from repro.core.scenario import Scenario
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider, MacProvider, NullMacProvider
from repro.marking import scheme_by_name
from repro.marking.base import MarkingScheme, NodeContext
from repro.net.topology import Topology, linear_path_topology
from repro.routing.tree import build_routing_tree
from repro.sim.behaviors import ForwardingBehavior, HonestForwarder
from repro.sim.pipeline import PathPipeline
from repro.sim.sources import BogusReportSource
from repro.traceback.sink import TracebackSink

__all__ = ["BuiltScenario", "build_scenario"]


@dataclass
class BuiltScenario:
    """Everything a scenario run needs, fully wired.

    Attributes:
        scenario: the declaration this was built from.
        topology: the linear-path deployment.
        source_id: the injecting source mole's node ID.
        path: forwarder IDs in path order (``V_1 .. V_n``).
        mole_ids: all compromised nodes (source plus any forwarding mole).
        scheme: the deployed marking scheme instance.
        provider: the MAC provider in use.
        keystore: the sink's key table.
        pipeline: the runnable path pipeline.
        sink: the traceback sink (also reachable via ``pipeline.sink``).
    """

    scenario: Scenario
    topology: Topology
    source_id: int
    path: list[int]
    mole_ids: frozenset[int]
    scheme: MarkingScheme
    provider: MacProvider
    keystore: KeyStore
    pipeline: PathPipeline
    sink: TracebackSink


def _make_scheme(sc: Scenario) -> MarkingScheme:
    prob = sc.resolved_mark_prob
    kwargs: dict[str, object]
    if sc.scheme == "none":
        kwargs = {"id_len": sc.id_len}
    elif sc.scheme == "ppm":
        kwargs = {"mark_prob": prob, "id_len": sc.id_len}
    elif sc.scheme == "ams":
        kwargs = {"mark_prob": prob, "id_len": sc.id_len, "mac_len": sc.mac_len}
    elif sc.scheme in ("nested", "partial-nested"):
        kwargs = {"id_len": sc.id_len, "mac_len": sc.mac_len}
    elif sc.scheme == "naive-pnm":
        kwargs = {"mark_prob": prob, "id_len": sc.id_len, "mac_len": sc.mac_len}
    elif sc.scheme == "pnm":
        kwargs = {
            "mark_prob": prob,
            "anon_id_len": sc.anon_id_len,
            "mac_len": sc.mac_len,
        }
    elif sc.scheme == "algebraic":
        # Deterministic accumulator scheme: mark_prob is fixed at 1.0 and
        # the 5-byte accumulator replaces the ID-length knobs.
        kwargs = {"mac_len": sc.mac_len}
    else:
        raise ValueError(f"unknown scheme {sc.scheme!r}")
    return scheme_by_name(sc.scheme, **kwargs)


def _make_provider(sc: Scenario) -> MacProvider:
    if sc.crypto == "real":
        return HmacProvider(mac_len=sc.mac_len, anon_id_len=sc.anon_id_len)
    return NullMacProvider(mac_len=sc.mac_len, anon_id_len=sc.anon_id_len)


def _node_rng(seed: int, node_id: int) -> random.Random:
    return random.Random(f"{seed}:node:{node_id}")


def _make_attacks(
    sc: Scenario,
    path: list[int],
    source_id: int,
    mole_id: int,
) -> tuple[Attack | None, Attack | None]:
    """Build (forwarding-mole attack, source-side attack) for the scenario."""
    params = dict(sc.attack_params)
    name = sc.attack
    if name == "none":
        return None, None
    if name == "honest-mole":
        return HonestBehaviorAttack(), None
    if name == "no-mark":
        return NoMarkAttack(), None
    if name == "insert-garbage":
        return MarkInsertionAttack(num_fake=params.get("num_fake", 2)), None
    if name == "insert-frame":
        victims = params.get("victims") or [path[-1]]
        return (
            MarkInsertionAttack(
                num_fake=params.get("num_fake", len(victims)),
                claim_ids=victims,
                # Splice the fakes in front of the honest marks so the
                # victim appears most upstream: the strongest framing play
                # against unauthenticated marking.
                position="prepend",
            ),
            None,
        )
    if name == "remove-upstream":
        return MarkRemovalAttack(num_remove=params.get("num_remove", 1)), None
    if name == "remove-targeted":
        remove_ids = params.get("remove_ids") or [path[0]]
        return TargetedMarkRemovalAttack(remove_ids=remove_ids), None
    if name == "remove-all":
        return MarkRemovalAttack(num_remove=None), None
    if name == "remove-remark":
        return MarkRemovalAttack(num_remove=None, also_mark=True), None
    if name == "reorder":
        return MarkReorderingAttack(mode=params.get("mode", "reverse")), None
    if name == "alter":
        return (
            MarkAlteringAttack(
                target=params.get("target", "first"),
                field=params.get("field", "mac"),
            ),
            None,
        )
    if name == "selective-drop":
        frame_position = params.get("frame_position", 2)
        if not 2 <= frame_position <= len(path):
            raise ValueError(
                f"frame_position must be in [2, {len(path)}], got {frame_position}"
            )
        # Drop every packet carrying a mark from a node upstream of the
        # frame target V_frame_position, so the trace stops at the target.
        upstream = path[: frame_position - 1]
        return SelectiveDroppingAttack(drop_if_marked_by=upstream), None
    if name == "identity-swap":
        swap_prob = params.get("swap_prob", 0.5)
        mark_prob = params.get("mark_prob")
        return (
            IdentitySwappingAttack(
                partner_id=source_id, swap_prob=swap_prob, mark_prob=mark_prob
            ),
            IdentitySwappingAttack(
                partner_id=mole_id, swap_prob=swap_prob, mark_prob=mark_prob
            ),
        )
    if name == "unprotected-alter":
        return (
            UnprotectedBitAlteringAttack(
                victim_index=params.get("victim_index", 0),
                also_mark=params.get("also_mark", True),
            ),
            None,
        )
    raise ValueError(f"unknown attack {name!r}")


def build_scenario(sc: Scenario) -> BuiltScenario:
    """Materialize ``sc`` into a runnable pipeline (see module docstring)."""
    topology, source_id = linear_path_topology(sc.n_forwarders)
    routing = build_routing_tree(topology)
    path = routing.forwarders_between(source_id)

    provider = _make_provider(sc)
    scheme = _make_scheme(sc)
    master_secret = b"pnm-deployment-" + sc.seed.to_bytes(8, "big", signed=True)
    keystore = KeyStore.from_master_secret(master_secret, topology.sensor_nodes())

    mole_position = sc.resolved_mole_position
    mole_id = path[mole_position - 1]
    forwarding_attack, source_attack = _make_attacks(sc, path, source_id, mole_id)

    mole_ids = {source_id}
    coalition_keys = {source_id: keystore[source_id]}
    if forwarding_attack is not None:
        mole_ids.add(mole_id)
        coalition_keys[mole_id] = keystore[mole_id]
    coalition = Coalition(coalition_keys)

    def ctx_for(node_id: int) -> NodeContext:
        return NodeContext(
            node_id=node_id,
            key=keystore[node_id],
            provider=provider,
            rng=_node_rng(sc.seed, node_id),
        )

    forwarders: list[ForwardingBehavior] = []
    for node_id in path:
        if forwarding_attack is not None and node_id == mole_id:
            forwarders.append(
                ForwardingMole(
                    ctx=ctx_for(node_id),
                    scheme=scheme,
                    attack=forwarding_attack,
                    coalition=coalition,
                )
            )
        else:
            forwarders.append(HonestForwarder(ctx=ctx_for(node_id), scheme=scheme))

    source = BogusReportSource(
        node_id=source_id,
        claimed_location=topology.position(source_id),
        rng=_node_rng(sc.seed, source_id),
    )
    if source_attack is not None:
        source_shell = ForwardingMole(
            ctx=ctx_for(source_id),
            scheme=scheme,
            attack=source_attack,
            coalition=coalition,
        )
        source = MoleReportSource(inner=source, mole=source_shell)

    sink = TracebackSink(
        scheme=scheme,
        keystore=keystore,
        provider=provider,
        topology=topology,
    )
    pipeline = PathPipeline(source=source, forwarders=forwarders, sink=sink)
    return BuiltScenario(
        scenario=sc,
        topology=topology,
        source_id=source_id,
        path=path,
        mole_ids=frozenset(mole_ids),
        scheme=scheme,
        provider=provider,
        keystore=keystore,
        pipeline=pipeline,
        sink=sink,
    )
