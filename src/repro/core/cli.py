"""``pnm-scenario``: run a single attack/defense scenario from the shell.

Examples::

    pnm-scenario --scheme pnm --attack selective-drop -n 20
    pnm-scenario --scheme ams --attack remove-targeted -n 12 --packets 400
    pnm-scenario --scheme nested --attack identity-swap --mole-position 4 -v
"""

from __future__ import annotations

import argparse
import sys

from repro.core.experiment import run_scenario
from repro.core.scenario import ATTACK_NAMES, Scenario
from repro.marking import SCHEME_CLASSES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pnm-scenario",
        description="Run one colluding-mole scenario and score the traceback.",
    )
    parser.add_argument(
        "-n",
        "--forwarders",
        type=int,
        default=20,
        help="path length n (forwarders between source mole and sink)",
    )
    parser.add_argument(
        "--scheme",
        default="pnm",
        choices=sorted(SCHEME_CLASSES),
        help="deployed marking scheme",
    )
    parser.add_argument(
        "--attack",
        default="none",
        choices=list(ATTACK_NAMES),
        help="the colluding forwarding mole's strategy",
    )
    parser.add_argument(
        "--mole-position",
        type=int,
        default=None,
        help="1-based path position of the forwarding mole (default: mid-path)",
    )
    parser.add_argument(
        "--mark-prob",
        type=float,
        default=None,
        help="marking probability p (default: 3/n, the paper's setting)",
    )
    parser.add_argument("--packets", type=int, default=300, help="injection budget")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print the route analysis details",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        scenario = Scenario(
            n_forwarders=args.forwarders,
            scheme=args.scheme,
            attack=args.attack,
            mole_position=args.mole_position,
            mark_prob=args.mark_prob,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2

    from repro.core.build import build_scenario

    built = build_scenario(scenario)
    result = run_scenario(scenario, num_packets=args.packets, built=built)

    print(
        f"scenario: {args.scheme} vs {args.attack} on a "
        f"{args.forwarders}-forwarder chain "
        f"(p={scenario.resolved_mark_prob:.3f}, seed={args.seed})"
    )
    print(f"moles: source={built.source_id}" + (
        f", forwarder=V{scenario.resolved_mole_position}"
        if args.attack != "none"
        else " (no forwarding mole)"
    ))
    print(
        f"traffic: {result.packets_sent} injected, "
        f"{result.packets_delivered} delivered"
    )
    print(f"outcome: {result.outcome.upper()}")
    if result.identified:
        print(
            f"suspect neighborhood: center {result.suspect_center}, "
            f"members {sorted(result.suspect_members)}"
        )
        guilty = sorted(result.suspect_members & result.mole_ids)
        if guilty:
            print(f"moles implicated: {guilty}")
        else:
            print("!! all suspects are innocent: the attack framed them")
    if result.loop_detected:
        print("identity-swapping loop detected during reconstruction")
    if args.verbose:
        analysis = built.sink.route_analysis()
        print(f"observed markers: {sorted(analysis.observed)}")
        print(f"source candidates: {sorted(analysis.source_candidates)}")
        print(f"tampered packets: {built.sink.tampered_packets}")
    return 0 if result.outcome in ("caught", "suppressed") else 1


if __name__ == "__main__":
    sys.exit(main())
