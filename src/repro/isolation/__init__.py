"""Mole isolation: the fight-back step after traceback.

Traceback alone "does not eliminate the root causes" (Section 7): once a
suspect neighborhood is identified, the sink either dispatches a task
force to physically remove the mole or notifies neighbors not to forward
its traffic.  The paper leaves the mechanism as future work; this package
provides a minimal but functional version so the examples can close the
loop: a revocation list plus a quarantine policy mapping suspect
neighborhoods onto nodes to cut off.
"""

from repro.isolation.quarantine import QuarantineManager, QuarantinePolicy
from repro.isolation.revocation import RevocationList

__all__ = ["RevocationList", "QuarantineManager", "QuarantinePolicy"]
