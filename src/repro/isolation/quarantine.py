"""Quarantine policy: from suspect neighborhood to isolated nodes.

PNM localizes a mole to a closed one-hop neighborhood, not to a single
node (a mole can claim different identities to different neighbors,
Section 7).  A quarantine policy decides how aggressively to act on that:

* ``CENTER_ONLY`` -- quarantine just the stopping node.  Cheapest, but the
  actual mole may be a neighbor and keep injecting.
* ``FULL_NEIGHBORHOOD`` -- quarantine the whole suspect set.  Guaranteed
  to contain a mole (Theorem 1), at the cost of also muting its innocent
  neighbors until physical inspection clears them.

The tradeoff is exactly the paper's traceback-precision discussion; the
isolation example measures both policies' collateral damage.
"""

from __future__ import annotations

import enum

from repro.isolation.revocation import RevocationList
from repro.traceback.localize import SuspectNeighborhood

__all__ = ["QuarantinePolicy", "QuarantineManager"]


class QuarantinePolicy(enum.Enum):
    """How much of a suspect neighborhood to isolate."""

    CENTER_ONLY = "center-only"
    FULL_NEIGHBORHOOD = "full-neighborhood"


class QuarantineManager:
    """Applies suspect neighborhoods to a revocation list.

    Args:
        policy: isolation aggressiveness.
        revocations: the sink's revocation list (created if omitted).
        protect: node IDs that must never be quarantined (the sink itself,
            known-good gateway nodes).
    """

    def __init__(
        self,
        policy: QuarantinePolicy = QuarantinePolicy.FULL_NEIGHBORHOOD,
        revocations: RevocationList | None = None,
        protect: set[int] | None = None,
    ):
        self.policy = policy
        self.revocations = revocations if revocations is not None else RevocationList()
        self.protect = set(protect) if protect is not None else set()

    def apply(
        self,
        suspect: SuspectNeighborhood,
        at: float = 0.0,
        evidence: str = "",
    ) -> set[int]:
        """Quarantine according to policy.

        Returns:
            The node IDs newly isolated by this call.
        """
        if self.policy is QuarantinePolicy.CENTER_ONLY:
            targets = {suspect.center}
        else:
            targets = set(suspect.members)
        targets -= self.protect
        newly = {t for t in targets if not self.revocations.is_revoked(t)}
        reason = evidence or (
            f"suspect neighborhood centered on node {suspect.center}"
            + (" (via loop analysis)" if suspect.via_loop else "")
        )
        for node_id in sorted(newly):
            self.revocations.revoke(node_id, reason=reason, revoked_at=at)
        return newly

    def __repr__(self) -> str:
        return (
            f"QuarantineManager(policy={self.policy.value}, "
            f"revoked={len(self.revocations)})"
        )
