"""Revocation list: nodes the sink no longer trusts.

Revocation is sink-side bookkeeping: a revoked node's key is dead (its
MACs no longer verify anything useful) and its reports are ignored.  The
list records *why* each node was revoked, because suspect neighborhoods
contain innocent bystanders -- operators need the evidence trail when they
physically inspect nodes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["RevocationList", "RevocationRecord"]


@dataclass(frozen=True)
class RevocationRecord:
    """Why and when a node was revoked.

    Attributes:
        node_id: the revoked node.
        reason: free-form evidence summary (e.g. "center of suspect
            neighborhood after 62-packet PNM trace").
        revoked_at: simulation time or packet count at revocation.
    """

    node_id: int
    reason: str
    revoked_at: float


class RevocationList:
    """An append-only record of revoked nodes.

    Other sink-side components can react to revocations as they happen via
    :meth:`subscribe` -- e.g. the ingest service's resolver cache drops any
    state derived from a node's key the moment that node is revoked.
    """

    def __init__(self) -> None:
        self._records: dict[int, RevocationRecord] = {}
        self._listeners: list[Callable[[RevocationRecord], None]] = []

    def subscribe(self, listener: Callable[[RevocationRecord], None]) -> None:
        """Register a callback invoked once per *newly* revoked node.

        Listeners fire synchronously inside :meth:`revoke`, after the
        record is stored; re-revocations do not re-fire.  A listener that
        raises does not prevent the remaining listeners from firing.
        """
        self._listeners.append(listener)

    def revoke(self, node_id: int, reason: str, revoked_at: float = 0.0) -> None:
        """Add a node; re-revoking keeps the earliest record.

        Every subscribed listener is notified even if an earlier one
        raises; the first exception is re-raised once all have fired.
        Skipping notifications would desynchronize sink-side state (e.g. a
        resolver cache still trusting a revoked node's key).
        """
        if node_id not in self._records:
            record = RevocationRecord(
                node_id=node_id, reason=reason, revoked_at=revoked_at
            )
            self._records[node_id] = record
            first_error: Exception | None = None
            for listener in self._listeners:
                try:
                    listener(record)
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error

    def is_revoked(self, node_id: int) -> bool:
        """Whether the node has been revoked."""
        return node_id in self._records

    def record(self, node_id: int) -> RevocationRecord:
        """The revocation evidence for a node.

        Raises:
            KeyError: if the node is not revoked.
        """
        return self._records[node_id]

    @property
    def revoked_ids(self) -> frozenset[int]:
        return frozenset(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._records

    def __repr__(self) -> str:
        return f"RevocationList({sorted(self._records)})"
