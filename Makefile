# Convenience targets for the PNM reproduction.

.PHONY: install test lint bench bench-check experiments experiments-full faults algebraic watchdog obs serve-smoke cluster-smoke telemetry-smoke examples clean

install:
	pip install -e .

test:
	pytest tests/

# Protocol-invariant linter (see docs/lint.md).
lint:
	python -m repro.lint src/repro

bench:
	pytest benchmarks/ --benchmark-only

# Gate the recorded benchmark ratios against benchmarks/baseline.json
# (>20% drift fails).  Needs the BENCH_*.json files a bench run leaves.
bench-check:
	python benchmarks/check_regressions.py

# Regenerate every paper figure + extension at the default (quick) preset.
experiments:
	python -m repro.experiments.cli all --preset quick

# The paper's exact run sizes (5000 runs for Figs. 5/7, 100 for Fig. 6).
experiments-full:
	python -m repro.experiments.cli all --preset full

# Traceback under churn: crashes, repairs, false accusations (docs/faults.md).
faults:
	python -m repro.experiments.cli faults-sweep --preset quick

# Algebraic accumulator vs PNM head-to-head under churn: convergence,
# byte overhead, false accusations (docs/algebraic.md).
algebraic:
	python -m repro.experiments.cli algebraic-sweep --preset quick

# Watchdog overhearing + sink-side fusion: detection latency vs. PNM-only,
# lying-watchdog and collusion scenarios (docs/watchdog.md).
watchdog:
	python -m repro.experiments.cli watchdog-sweep --preset quick

# Observed runs: manifests + metrics + spans, then the text report
# (docs/observability.md).
obs:
	python -m repro.experiments.cli faults-sweep --preset ci --obs-dir obs-artifacts
	python -m repro.experiments.cli service-sweep --preset ci --obs-dir obs-artifacts
	python -m repro.obs report obs-artifacts

# Loopback wire-protocol check: server + client + verdict parity
# against an in-process sink (docs/wire.md).
serve-smoke:
	python -m repro.wire smoke

# Sharded cluster check: 2 shards + coordinator merge, verdict and
# report byte-identical to a single sink (docs/cluster.md).
cluster-smoke:
	python -m repro.cluster smoke

# Telemetry federation check: 2-shard cluster with per-shard registries;
# the federated snapshot must cover every shard and the verdict must be
# byte-identical to a telemetry-disabled run (docs/observability.md).
telemetry-smoke:
	python -m repro.cluster telemetry-smoke

examples:
	python examples/quickstart.py
	python examples/colluding_coverup.py
	python examples/identity_swap_loop.py
	python examples/multi_source_hunt.py
	python examples/traceback_shootout.py
	python examples/field_monitoring.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
