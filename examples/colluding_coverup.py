#!/usr/bin/env python3
"""Colluding cover-up: why Internet-style marking fails and PNM does not.

Reproduces the paper's Section 3/4.2 narrative on one path: a source mole
S injects bogus reports while its accomplice X, six hops downstream,
manipulates marks to hide both of them -- or better, to frame an innocent
node.  Three defenses are compared under X's two best attacks:

* extended AMS (authenticated but non-nested marks),
* naive probabilistic nested marking (nested but plain-text IDs),
* PNM (nested + anonymous IDs).
"""

import random

from repro import Scenario, build_scenario, run_scenario
from repro.adversary.attacks import MarkAlteringAttack
from repro.adversary.moles import ForwardingMole
from repro.adversary.watchdog import AccusationSuppressor
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.links import LinkModel
from repro.net.overhear import OverhearModel
from repro.net.topology import linear_path_topology
from repro.routing.repair import RepairingRoutingTable
from repro.sim.behaviors import HonestForwarder
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkSimulation
from repro.sim.sources import HonestReportSource
from repro.traceback.sink import TracebackSink
from repro.watchdog import DetectionProbe, WatchdogLayer

PATH_LENGTH = 12
MOLE_POSITION = 6
PACKETS = 400
# Sparse-marking operating point for the watchdog comparison (the regime
# where sink-side statistics converge slowest; see the watchdog-sweep
# experiment for the averages this single seeded run is representative of).
WD_TARGET_MARKS = 1.5
WD_SEED = 1


def describe(result, built) -> str:
    if result.outcome == "caught":
        return (
            f"CAUGHT   suspect {sorted(result.suspect_members)} "
            f"contains a mole ({sorted(result.mole_ids & result.suspect_members)})"
        )
    if result.outcome == "framed":
        return (
            f"FRAMED   suspect {sorted(result.suspect_members)} -- "
            f"all innocent; moles {sorted(result.mole_ids)} walk free"
        )
    return result.outcome.upper()


def watchdog_latency(colluding_relay: bool) -> tuple[int | None, int | None]:
    """PNM-only vs. fused detection latency (in delivered packets).

    Runs the alter attack on the same chain with the overhearing
    watchdog enabled.  With ``colluding_relay`` the mole's downstream
    neighbor suppresses accusations naming it -- the Section 4.2
    collusion, extended to the watchdog's control plane.
    """
    topology, source_id = linear_path_topology(PATH_LENGTH)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(b"coverup-wd", topology.sensor_nodes())
    scheme = PNMMarking(mark_prob=WD_TARGET_MARKS / PATH_LENGTH)

    def ctx(node_id: int) -> NodeContext:
        return NodeContext(
            node_id=node_id,
            key=keystore[node_id],
            provider=provider,
            rng=random.Random(f"coverup-wd:{WD_SEED}:{node_id}"),
        )

    behaviors = {
        nid: HonestForwarder(ctx(nid), scheme) for nid in topology.sensor_nodes()
    }
    behaviors[MOLE_POSITION] = ForwardingMole(
        ctx(MOLE_POSITION), scheme, MarkAlteringAttack(target="first", field="mac")
    )
    layer = WatchdogLayer(
        OverhearModel(topology),
        rng=random.Random(f"coverup-wd:layer:{WD_SEED}"),
        suppressors=(
            (
                AccusationSuppressor(
                    node=MOLE_POSITION + 1, protects=frozenset({MOLE_POSITION})
                ),
            )
            if colluding_relay
            else ()
        ),
    )
    sink = TracebackSink(scheme, keystore, provider, topology)
    probe = DetectionProbe(sink, layer.sink_log, moles={MOLE_POSITION})
    sim = NetworkSimulation(
        topology=topology,
        routing=RepairingRoutingTable(topology),
        behaviors=behaviors,
        sink=probe,
        link=LinkModel(base_delay=0.001),
        rng=random.Random(f"coverup-wd:link:{WD_SEED}"),
        metrics=MetricsCollector(),
        watchdog=layer,
    )
    source = HonestReportSource(
        source_id, topology.position(source_id), random.Random(f"coverup-wd:src:{WD_SEED}")
    )
    sim.add_periodic_source(source, interval=0.05, count=PACKETS)
    sim.run()
    return probe.pnm_stable_detection(), probe.fused_detection()


def main() -> None:
    print(f"chain: S -> V1 .. V{PATH_LENGTH} -> sink;  "
          f"colluders: S (source) and X = V{MOLE_POSITION}")
    print()
    for attack, blurb in (
        ("remove-targeted", "X strips V1's marks so the trace stops at V2"),
        ("selective-drop", "X drops exactly the packets carrying V1's mark"),
        ("alter", "X corrupts the most upstream mark in every packet"),
    ):
        print(f"--- attack: {attack} ({blurb}) ---")
        for scheme in ("ams", "naive-pnm", "pnm"):
            sc = Scenario(
                n_forwarders=PATH_LENGTH,
                scheme=scheme,
                attack=attack,
                mole_position=MOLE_POSITION,
                seed=7,
            )
            built = build_scenario(sc)
            result = run_scenario(sc, num_packets=PACKETS, built=built)
            dropped = built.pipeline.metrics.packets_dropped
            print(f"  {scheme:10s} {describe(result, built)}"
                  + (f"  [{dropped} packets dropped en route]" if dropped else ""))
        print()
    print("takeaway: non-nested marks are individually manipulable; "
          "plain-text IDs leak which packets to drop; PNM survives both.")
    print()
    print("--- overhearing watchdog: how much sooner is X caught? ---")
    for colluding, label in (
        (False, "honest relays"),
        (True, f"V{MOLE_POSITION + 1} suppresses accusations naming X"),
    ):
        pnm, fused = watchdog_latency(colluding_relay=colluding)
        fmt = lambda d: f"packet {d}" if d is not None else "never"
        print(f"  {label:45s} PNM-only: {fmt(pnm):>11s}   "
              f"fused: {fmt(fused):>11s}")
    print("takeaway: overheard accusations convict the manipulator tens of "
          "packets before\nthe sink's own statistics converge; colluding "
          "suppression only degrades fused\ndetection back to the PNM-only "
          "baseline, never below it.")


if __name__ == "__main__":
    main()
