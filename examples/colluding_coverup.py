#!/usr/bin/env python3
"""Colluding cover-up: why Internet-style marking fails and PNM does not.

Reproduces the paper's Section 3/4.2 narrative on one path: a source mole
S injects bogus reports while its accomplice X, six hops downstream,
manipulates marks to hide both of them -- or better, to frame an innocent
node.  Three defenses are compared under X's two best attacks:

* extended AMS (authenticated but non-nested marks),
* naive probabilistic nested marking (nested but plain-text IDs),
* PNM (nested + anonymous IDs).
"""

from repro import Scenario, build_scenario, run_scenario

PATH_LENGTH = 12
MOLE_POSITION = 6
PACKETS = 400


def describe(result, built) -> str:
    if result.outcome == "caught":
        return (
            f"CAUGHT   suspect {sorted(result.suspect_members)} "
            f"contains a mole ({sorted(result.mole_ids & result.suspect_members)})"
        )
    if result.outcome == "framed":
        return (
            f"FRAMED   suspect {sorted(result.suspect_members)} -- "
            f"all innocent; moles {sorted(result.mole_ids)} walk free"
        )
    return result.outcome.upper()


def main() -> None:
    print(f"chain: S -> V1 .. V{PATH_LENGTH} -> sink;  "
          f"colluders: S (source) and X = V{MOLE_POSITION}")
    print()
    for attack, blurb in (
        ("remove-targeted", "X strips V1's marks so the trace stops at V2"),
        ("selective-drop", "X drops exactly the packets carrying V1's mark"),
        ("alter", "X corrupts the most upstream mark in every packet"),
    ):
        print(f"--- attack: {attack} ({blurb}) ---")
        for scheme in ("ams", "naive-pnm", "pnm"):
            sc = Scenario(
                n_forwarders=PATH_LENGTH,
                scheme=scheme,
                attack=attack,
                mole_position=MOLE_POSITION,
                seed=7,
            )
            built = build_scenario(sc)
            result = run_scenario(sc, num_packets=PACKETS, built=built)
            dropped = built.pipeline.metrics.packets_dropped
            print(f"  {scheme:10s} {describe(result, built)}"
                  + (f"  [{dropped} packets dropped en route]" if dropped else ""))
        print()
    print("takeaway: non-nested marks are individually manipulable; "
          "plain-text IDs leak which packets to drop; PNM survives both.")


if __name__ == "__main__":
    main()
