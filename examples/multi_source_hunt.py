#!/usr/bin/env python3
"""Hunting several moles at once, then pinning one to a pair of nodes.

Two extensions beyond the paper's core scheme, both flagged in its
Sections 7/9 as follow-on work:

1. **Multiple source moles** -- three captured nodes in different corners
   of a grid flood bogus reports concurrently.  The precedence graph grows
   one source component per mole; the multi-source sink confirms each by
   chain-head support and emits one suspect neighborhood per source.
2. **Pair precision via neighbor authentication** -- with pairwise keys
   deployed, marks embed the authenticated previous hop, so a single
   packet narrows a suspect from a whole neighborhood to TWO nodes: the
   stopping marker and the previous hop it attests to.
"""

import random

from repro.core.build import _node_rng
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.topology import grid_topology, linear_path_topology
from repro.routing.tree import build_routing_tree
from repro.sim.behaviors import HonestForwarder
from repro.sim.sources import BogusReportSource
from repro.traceback.multisource import MultiSourceTracebackSink
from repro.traceback.precision import PairAwareNestedMarking, refine_to_pair
from repro.traceback.verify import PacketVerifier

SEED = 77


def hunt_multiple_sources() -> None:
    print("=== part 1: three source moles on a 6x6 grid ===")
    topo = grid_topology(6, 6, sink_at="corner")
    routing = build_routing_tree(topo)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(b"hunt", topo.sensor_nodes())
    scheme = PNMMarking(mark_prob=0.35)
    sink = MultiSourceTracebackSink(
        scheme, keystore, provider, topo, min_support=3
    )
    behaviors = {
        nid: HonestForwarder(
            NodeContext(nid, keystore[nid], provider, _node_rng(SEED, nid)),
            scheme,
        )
        for nid in topo.sensor_nodes()
    }

    moles = (35, 30, 5)  # far corner, left edge, right edge
    print(f"source moles: {moles} "
          f"({', '.join(str(routing.hop_count(m)) for m in moles)} hops out)")
    for i, mole in enumerate(moles):
        source = BogusReportSource(
            mole, topo.position(mole), random.Random(f"hunt:{i}")
        )
        path = routing.forwarders_between(mole)
        for _ in range(120):
            packet = source.next_packet(timestamp=0)
            for nid in path:
                packet = behaviors[nid].forward(packet)
            sink.receive(packet, path[-1] if path else mole)

    verdict = sink.multi_verdict()
    print(f"confirmed source components: {verdict.num_sources}")
    for suspect in verdict.suspects:
        caught = sorted(suspect.members & set(moles))
        print(f"  suspect neighborhood around node {suspect.center}: "
              f"{sorted(suspect.members)} -> moles inside: {caught}")
    implicated = set().union(*(s.members for s in verdict.suspects))
    print(f"all three moles implicated: {set(moles) <= implicated}\n")


def pin_to_a_pair() -> None:
    print("=== part 2: pair precision with neighbor authentication ===")
    n = 10
    topo, source_id = linear_path_topology(n)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(b"pair", topo.sensor_nodes())
    scheme = PairAwareNestedMarking()

    packet = BogusReportSource(
        source_id, topo.position(source_id), random.Random(1)
    ).next_packet(timestamp=5)
    prev = source_id
    for nid in range(1, n + 1):
        ctx = NodeContext(
            node_id=nid,
            key=keystore[nid],
            provider=provider,
            rng=_node_rng(SEED, nid),
            prev_hop=prev,  # authenticated via pairwise keys
        )
        packet = scheme.on_forward(ctx, packet)
        prev = nid

    verification = PacketVerifier(scheme, keystore, provider).verify(packet)
    pair = refine_to_pair(verification, scheme)
    neighborhood = topo.closed_neighborhood(verification.chain_ids[0])
    print(f"single packet, {n}-hop path:")
    print(f"  plain PNM suspect neighborhood: {sorted(neighborhood)} "
          f"({len(neighborhood)} nodes)")
    print(f"  pair-precision suspect: {sorted(pair.members)} (2 nodes)")
    print(f"  source mole {source_id} in pair: {source_id in pair.members}")


def main() -> None:
    hunt_multiple_sources()
    pin_to_a_pair()


if __name__ == "__main__":
    main()
