#!/usr/bin/env python3
"""Quickstart: catch a mole 20 hops from the sink in ~50 packets.

The headline scenario of the paper: a compromised node ("mole") 20 hops
away injects bogus sensing reports; forwarding nodes run Probabilistic
Nested Marking with an average of 3 marks per packet; the sink verifies
marks, reconstructs the route, and pins the source mole's one-hop
neighborhood -- typically within about 50 packets, long before the
injection does meaningful damage.
"""

from repro import Scenario, build_scenario


def main() -> None:
    scenario = Scenario(
        n_forwarders=20,  # the mole is 21 hops from the sink (20 forwarders)
        scheme="pnm",  # the paper's full scheme
        attack="none",  # no colluding forwarder; the source mole acts alone
        seed=42,
    )
    built = build_scenario(scenario)
    print(f"deployment: chain of {scenario.n_forwarders} forwarders")
    print(f"source mole: node {built.source_id} (far end of the chain)")
    print(f"marking probability p = {scenario.resolved_mark_prob:.3f} "
          f"(~{scenario.target_marks:.0f} marks per packet)")
    print()

    # Inject until the sink's verdict stabilizes on one suspect.
    packets, center = built.pipeline.run_until_identified(
        max_packets=400, stable_window=25
    )
    if packets is None:
        raise SystemExit("traceback did not converge within 400 packets")

    verdict = built.sink.verdict()
    assert verdict.suspect is not None
    print(f"identified after {packets} packets "
          f"(including the {25}-packet stability window)")
    print(f"suspect neighborhood: center node {verdict.suspect.center}, "
          f"members {sorted(verdict.suspect.members)}")
    caught = bool(verdict.suspect.members & built.mole_ids)
    print(f"true moles {sorted(built.mole_ids)} in suspect set: {caught}")
    print()
    print("per-packet overhead:",
          f"{built.scheme.fmt.mark_len} bytes/mark,",
          f"~{scenario.target_marks * built.scheme.fmt.mark_len:.0f} "
          f"mark bytes per packet on average")


if __name__ == "__main__":
    main()
