#!/usr/bin/env python3
"""Field monitoring: a full deployment under attack, end to end.

A 100-node random field reports events to a corner sink over a collection
tree (discrete-event simulation with Mica2-rate links).  One captured node
deep in the field floods bogus reports.  The defense runs in layers, as
the paper positions it:

1. **En-route filtering (SEF, passive)** -- forwarders probabilistically
   drop forged reports that lack enough valid key-pool endorsements.
   Filtering thins the attack but cannot stop the mole from injecting.
2. **PNM traceback (active)** -- the sink verifies nested anonymous marks
   on the surviving bogus reports and localizes the mole.
3. **Quarantine** -- neighbors stop forwarding the suspect neighborhood's
   traffic, cutting the attack off at its first hop.

The run reports packets and radio energy wasted before vs after the
catch.
"""

import random

from repro.core.build import _node_rng
from repro.crypto.keys import KeyStore
from repro.crypto.mac import HmacProvider
from repro.filtering.sef import KeyPool, SefFilterForwarder, endorse, extract_endorsements
from repro.isolation.quarantine import QuarantineManager, QuarantinePolicy
from repro.marking.base import NodeContext
from repro.marking.pnm import PNMMarking
from repro.net.links import LinkModel
from repro.net.topology import random_topology
from repro.routing.tree import build_routing_tree
from repro.sim.behaviors import HonestForwarder
from repro.sim.network import NetworkSimulation
from repro.sim.sources import BogusReportSource, HonestReportSource
from repro.traceback.sink import TracebackSink

SEED = 1234
NUM_NODES = 100
SEF_THRESHOLD = 3


def build_network():
    topology = random_topology(
        num_nodes=NUM_NODES, width=10, height=10, radio_range=2.2, seed=SEED
    )
    routing = build_routing_tree(topology)
    provider = HmacProvider()
    keystore = KeyStore.from_master_secret(b"field-demo", topology.sensor_nodes())
    # Pick the routable sensor farthest (in hops) from the sink as the mole.
    depths = topology.hop_distances()
    mole_id = max(topology.sensor_nodes(), key=lambda nid: (depths[nid], nid))
    return topology, routing, provider, keystore, mole_id


def main() -> None:
    topology, routing, provider, keystore, mole_id = build_network()
    scheme = PNMMarking(mark_prob=0.35)
    pool = KeyPool(b"field-demo-sef", pool_size=100, partitions=10, keys_per_node=5)
    rng = random.Random(SEED)

    # Honest witnesses endorse real events; the mole only holds its own few
    # pool keys, so its reports carry forged endorsements that an honest
    # forwarder holding one of the claimed keys will expose.
    node_pool_keys = {
        nid: pool.assign_node_keys(nid, random.Random(f"{SEED}:{nid}"))
        for nid in topology.sensor_nodes()
    }
    witness_keys = []
    for nid in sorted(node_pool_keys):
        for idx, key in sorted(node_pool_keys[nid].items()):
            if all(pool.partition_of(idx) != pool.partition_of(i) for i, _ in witness_keys):
                witness_keys.append((idx, key))
        if len(witness_keys) >= SEF_THRESHOLD:
            witness_keys = witness_keys[:SEF_THRESHOLD]
            break

    sink = TracebackSink(scheme, keystore, provider, topology)
    behaviors = {}
    for nid in topology.sensor_nodes():
        ctx = NodeContext(
            node_id=nid, key=keystore[nid], provider=provider,
            rng=_node_rng(SEED, nid),
        )
        honest = HonestForwarder(ctx, scheme)
        behaviors[nid] = SefFilterForwarder(
            inner=honest,
            node_keys=node_pool_keys[nid],
            provider=provider,
            threshold=SEF_THRESHOLD,
            pool=pool,
        )

    def is_suspicious(packet) -> bool:
        # Section 7, "Background Traffic": the sink decides which delivered
        # packets feed the traceback.  Unlike forwarders (who hold ~5 pool
        # keys each), the sink holds the whole pool and can verify every
        # endorsement -- any forged one marks the report as attack traffic.
        try:
            bare, endos = extract_endorsements(packet.report)
        except ValueError:
            return True
        if len(endos) < SEF_THRESHOLD:
            return True
        base = bare.encode()
        return any(
            provider.mac(pool.key(e.key_index), b"sef-endorse" + base) != e.mac
            for e in endos
        )

    sim = NetworkSimulation(
        topology=topology,
        routing=routing,
        behaviors=behaviors,
        sink=sink,
        link=LinkModel(base_delay=0.004, loss_prob=0.01),
        rng=rng,
        suspicious=is_suspicious,
    )

    # Legitimate traffic: five sensors report endorsed events periodically.
    class EndorsedSource:
        def __init__(self, inner):
            self.inner = inner
            self.node_id = inner.node_id

        def next_packet(self, timestamp):
            packet = self.inner.next_packet(timestamp)
            endorsed = endorse(packet.report, witness_keys, provider)
            return packet.with_marks(()).__class__(
                report=endorsed, origin=packet.origin
            )

    depths = topology.hop_distances()
    reporters = [n for n in topology.sensor_nodes() if n != mole_id][:5]
    for nid in reporters:
        sim.add_periodic_source(
            EndorsedSource(HonestReportSource(
                nid, topology.position(nid), _node_rng(SEED, 5000 + nid))),
            interval=1.0, count=40, start=0.1, jitter=0.2,
        )

    # The mole floods bogus reports with forged endorsements: it claims
    # SEF_THRESHOLD keys but only actually holds its own partition's keys,
    # so at least some claimed MACs are fabricated.
    class ForgedSource:
        """One genuine endorsement (the mole's own pool key) plus randomly
        chosen forged indices, re-rolled per packet -- a report only slips
        through when no forwarder on the path happens to hold a claimed
        index, so SEF thins the flood probabilistically rather than all
        or nothing."""

        def __init__(self, inner, rng):
            self.inner = inner
            self.node_id = inner.node_id
            self.rng = rng
            self.own = sorted(node_pool_keys[mole_id].items())[:1]
            self.own_partition = pool.partition_of(self.own[0][0])

        def next_packet(self, timestamp):
            packet = self.inner.next_packet(timestamp)
            partitions = [
                q for q in range(pool.partitions) if q != self.own_partition
            ]
            self.rng.shuffle(partitions)
            fake = [
                (
                    q * pool.partition_size
                    + self.rng.randrange(pool.partition_size),
                    b"\x00" * 32,
                )
                for q in partitions[: SEF_THRESHOLD - 1]
            ]
            forged = endorse(packet.report, self.own + fake, provider)
            return packet.__class__(report=forged, origin=packet.origin)

    # A flood: 25 reports/s.  SEF will thin it en route (each honest hop
    # holding a claimed-but-forged key index drops the report), but a flood
    # is exactly the regime where filtering alone cannot win -- enough
    # survivors reach the sink to fuel the traceback.
    sim.add_periodic_source(
        ForgedSource(
            BogusReportSource(
                mole_id, topology.position(mole_id), _node_rng(SEED, 9999)
            ),
            rng=_node_rng(SEED, 8888),
        ),
        interval=0.04, count=1500, start=0.5,
    )

    print(f"deployment: {NUM_NODES} sensors, sink at corner; "
          f"mole = node {mole_id} ({depths[mole_id]} hops out)")
    print(f"defense: SEF(threshold={SEF_THRESHOLD}) + "
          f"PNM(p={scheme.mark_prob}) + quarantine\n")

    # Phase 1: let the attack run, watch filtering + traceback.
    sim.run(until=40.0)
    sef_drops = sum(b.forged_dropped for b in behaviors.values())
    print("phase 1 (attack in progress, t=40s):")
    print(f"  injected: {sim.metrics.packets_injected}, "
          f"delivered: {sim.metrics.packets_delivered}, "
          f"SEF-dropped en route: {sef_drops}")
    print(f"  energy spent so far: {sim.metrics.energy_spent():.3f} J")

    verdict = sink.verdict()
    if verdict.suspect is None:
        raise SystemExit("traceback failed to localize the mole")
    caught = mole_id in verdict.suspect.members
    print(f"  traceback verdict after {verdict.packets_used} suspicious "
          f"packets: center {verdict.suspect.center}, "
          f"members {sorted(verdict.suspect.members)} -> mole inside: {caught}\n")

    # Phase 2: quarantine the suspect neighborhood and keep running.
    manager = QuarantineManager(
        policy=QuarantinePolicy.FULL_NEIGHBORHOOD, protect={topology.sink}
    )
    isolated = manager.apply(verdict.suspect, at=sim.sim.now,
                             evidence=f"PNM trace, {verdict.packets_used} packets")
    sim.quarantine(isolated)
    print(f"phase 2: quarantined {sorted(isolated)} "
          f"({len(isolated) - 1} innocent bystanders pending inspection)")

    delivered_before = sim.metrics.packets_delivered
    energy_before = sim.metrics.energy_spent()
    sim.run()  # drain the remaining scheduled traffic
    print(f"  after quarantine: {sim.metrics.packets_delivered - delivered_before} "
          f"more packets delivered (mole's flood now dies at hop 1)")
    print(f"  additional energy: "
          f"{sim.metrics.energy_spent() - energy_before:.3f} J")
    print(f"  revocation log: "
          f"{manager.revocations.record(mole_id).reason!r}")


if __name__ == "__main__":
    main()
