#!/usr/bin/env python3
"""Shootout: marking vs logging vs notification traceback (Section 8).

Runs the paper's related-work comparison live.  The deployment is a
12-hop chain with one off-path node (node 100, hanging off V9): a source
mole S floods bogus reports while its accomplice X = V6 subverts whichever
traceback mechanism is deployed:

* against **PNM marking**, X selectively drops packets implicating V1 --
  useless, the IDs are anonymous;
* against **SPIE-style logging**, X simply denies having forwarded
  anything when the sink's trace queries arrive;
* against **iTrace-style notification**, X forges notifications claiming
  the packets entered the network through innocent node 100.

The point is the last two columns: what each approach costs, and who ends
up blamed.
"""

from repro.experiments.approaches import run
from repro.experiments.presets import QUICK


def main() -> None:
    result = run(QUICK, packets=200)
    print(result.render())
    print()
    rows = result.as_dicts()
    print("reading the table:")
    for row in rows:
        label = f"{row['approach']} ({row['variant']})"
        if row["outcome"] == "framed":
            verdict = (
                f"DEFEATED: the sink blames node {row['traced_to']}, which is "
                f"innocent -- the moles walk free"
            )
        elif row["approach"] == "logging":
            verdict = (
                f"partially works: the trace dies at node {row['traced_to']} "
                f"(one hop from X), but the SOURCE mole is never reached, and "
                f"each trace costs {row['control_messages']} query/reply "
                f"messages plus {row['per_node_storage_bytes']} bytes of RAM "
                f"per node"
            )
        elif row["approach"] == "notification":
            verdict = (
                f"works once authenticated, but spends "
                f"{row['control_messages']} extra messages the radio must "
                f"carry"
            )
        else:
            verdict = (
                f"works: traced to node {row['traced_to']} with zero control "
                f"messages and zero per-node state -- only "
                f"{row['mark_bytes_per_packet']:.0f} in-band mark bytes per "
                f"packet"
            )
        print(f"  {label}:\n    {verdict}")


if __name__ == "__main__":
    main()
