#!/usr/bin/env python3
"""Identity swapping: the loop attack and how the sink untangles it.

Attack 7 of the taxonomy (Figure 2 of the paper): source mole S and
forwarding mole X hold each other's keys, so each can leave *valid* marks
under either identity.  Across packets the sink then observes S upstream
of X and X upstream of S -- contradictory orders that form a loop in the
reconstructed route.  The sink detects the loop (a strongly connected
component), finds the line of honest nodes leading to itself, and places
the suspect neighborhood where the loop attaches to the line; Theorem 4
proves a mole must sit within one hop of that point when routes are
stable (a legitimate node has exactly one next hop).
"""

from repro import Scenario, build_scenario

PATH_LENGTH = 10
MOLE_POSITION = 4  # X = V4: nodes S, V1..V3 will appear inside the loop


def main() -> None:
    scenario = Scenario(
        n_forwarders=PATH_LENGTH,
        scheme="pnm",
        attack="identity-swap",
        attack_params={"swap_prob": 0.5},
        mole_position=MOLE_POSITION,
        seed=11,
    )
    built = build_scenario(scenario)
    print(f"chain: S(id {built.source_id}) -> V1 .. V{PATH_LENGTH} -> sink; "
          f"X = V{MOLE_POSITION}")
    print("S and X each mark ~half their packets under the OTHER's identity\n")

    built.pipeline.push_many(500)
    analysis = built.sink.route_analysis()

    print(f"observed markers: {sorted(analysis.observed)}")
    print(f"loop detected: {analysis.has_loop}")
    for loop in analysis.loops:
        print(f"  loop members (SCC): {sorted(loop)}")
        print("  -> S and X appear both upstream and downstream of each "
              "other; honest nodes between them are dragged into the SCC")
    print(f"loop attaches to the line at node: {analysis.loop_attachment}")
    print()

    verdict = built.sink.verdict()
    assert verdict.suspect is not None
    print(f"suspect neighborhood: center {verdict.suspect.center}, "
          f"members {sorted(verdict.suspect.members)} (via_loop="
          f"{verdict.suspect.via_loop})")
    caught = verdict.suspect.members & built.mole_ids
    print(f"moles implicated: {sorted(caught)} "
          f"(true moles: {sorted(built.mole_ids)})")


if __name__ == "__main__":
    main()
