"""Revocation and quarantine."""

import pytest

from repro.isolation.quarantine import QuarantineManager, QuarantinePolicy
from repro.isolation.revocation import RevocationList
from repro.traceback.localize import SuspectNeighborhood


class TestRevocationList:
    def test_revoke_and_query(self):
        rl = RevocationList()
        rl.revoke(5, reason="test evidence", revoked_at=1.5)
        assert rl.is_revoked(5)
        assert 5 in rl
        assert not rl.is_revoked(6)
        assert rl.record(5).reason == "test evidence"
        assert rl.record(5).revoked_at == 1.5

    def test_first_record_wins(self):
        rl = RevocationList()
        rl.revoke(5, reason="first", revoked_at=1.0)
        rl.revoke(5, reason="second", revoked_at=2.0)
        assert rl.record(5).reason == "first"

    def test_revoked_ids(self):
        rl = RevocationList()
        rl.revoke(2, "a")
        rl.revoke(7, "b")
        assert rl.revoked_ids == {2, 7}
        assert len(rl) == 2

    def test_unknown_record_raises(self):
        with pytest.raises(KeyError):
            RevocationList().record(9)

    def test_raising_listener_does_not_block_others(self):
        rl = RevocationList()
        seen: list[int] = []

        def bad(record):
            raise RuntimeError("listener boom")

        rl.subscribe(bad)
        rl.subscribe(lambda record: seen.append(record.node_id))
        with pytest.raises(RuntimeError, match="listener boom"):
            rl.revoke(5, reason="evidence")
        # The record landed and the later listener still fired.
        assert rl.is_revoked(5)
        assert seen == [5]

    def test_first_listener_error_wins(self):
        rl = RevocationList()
        rl.subscribe(lambda record: (_ for _ in ()).throw(RuntimeError("first")))
        rl.subscribe(lambda record: (_ for _ in ()).throw(ValueError("second")))
        with pytest.raises(RuntimeError, match="first"):
            rl.revoke(3, reason="evidence")


class TestQuarantineManager:
    def suspect(self):
        return SuspectNeighborhood(center=5, members=frozenset({4, 5, 6}))

    def test_full_neighborhood(self):
        qm = QuarantineManager(policy=QuarantinePolicy.FULL_NEIGHBORHOOD)
        newly = qm.apply(self.suspect(), at=3.0)
        assert newly == {4, 5, 6}
        assert qm.revocations.is_revoked(4)

    def test_center_only(self):
        qm = QuarantineManager(policy=QuarantinePolicy.CENTER_ONLY)
        assert qm.apply(self.suspect()) == {5}
        assert not qm.revocations.is_revoked(4)

    def test_protected_nodes_spared(self):
        qm = QuarantineManager(protect={4})
        assert qm.apply(self.suspect()) == {5, 6}

    def test_idempotent(self):
        qm = QuarantineManager()
        first = qm.apply(self.suspect())
        second = qm.apply(self.suspect())
        assert first == {4, 5, 6}
        assert second == set()

    def test_evidence_recorded(self):
        qm = QuarantineManager()
        qm.apply(self.suspect(), at=9.0, evidence="PNM trace, 62 packets")
        assert qm.revocations.record(5).reason == "PNM trace, 62 packets"

    def test_default_evidence_mentions_center_and_loop(self):
        qm = QuarantineManager()
        loopy = SuspectNeighborhood(
            center=5, members=frozenset({5}), via_loop=True
        )
        qm.apply(loopy)
        assert "loop" in qm.revocations.record(5).reason
